// Design-choice ablations beyond the paper's own figures (DESIGN.md §4):
//  1. Greedy Algorithm 3 vs the exact optimum of Problem 11 on small random
//     graphs — the empirical counterpart of the O(log N) approximation
//     discussion (Appendix C/D).
//  2. Redundant-cluster consolidation (Appendix K future work): how much
//     does the curation queue shrink, and does quality survive?
//  3. Temporal detection (Appendix J future work): are snapshot families
//     separable from code-system siblings?
#include <iostream>

#include "bench_util.h"
#include "common/random.h"
#include "synth/exact_partition.h"
#include "synth/redundancy.h"
#include "synth/temporal.h"

int main() {
  using namespace ms;

  // --- 1. Greedy vs exact on random graphs.
  PrintBanner(std::cout, "greedy Algorithm 3 vs exact optimum (Problem 11)");
  TextTable gvx({"vertices", "graphs", "avg ratio", "worst ratio",
                 "optimal found"});
  Rng rng(2017);
  for (size_t n : {6, 8, 10, 12}) {
    double ratio_sum = 0, worst = 1.0;
    size_t optimal = 0;
    const size_t trials = 40;
    for (size_t t = 0; t < trials; ++t) {
      CompatibilityGraph g(n);
      for (size_t e = 0; e < n * 2; ++e) {
        uint32_t u = static_cast<uint32_t>(rng.Uniform(n));
        uint32_t v = static_cast<uint32_t>(rng.Uniform(n));
        if (u == v) continue;
        g.AddEdge(u, v, rng.UniformDouble(),
                  rng.Bernoulli(0.25) ? -rng.UniformDouble() : 0.0);
      }
      g.Finalize();
      PartitionerOptions opts;
      opts.theta_edge = 0.0;
      auto exact = ExactPartition(g, opts);
      auto greedy = GreedyPartition(g, opts);
      const double go = PartitionObjective(g, greedy, opts);
      const double ratio = exact.objective > 0 ? go / exact.objective : 1.0;
      ratio_sum += ratio;
      worst = std::min(worst, ratio);
      if (ratio > 1.0 - 1e-9) ++optimal;
    }
    gvx.AddRow({std::to_string(n), std::to_string(trials),
                bench::F(ratio_sum / trials), bench::F(worst),
                std::to_string(optimal) + "/" + std::to_string(trials)});
  }
  gvx.Print(std::cout);

  // --- 2 & 3 run on the real pipeline output.
  GeneratedWorld world = bench::StandardWebWorld();
  bench::PrintWorldSummary(world);
  SynthesisOptions opts;
  opts.min_domains = 1;  // keep fragments so consolidation has work to do
  opts.min_pairs = 2;
  SynthesisPipeline pipeline(opts);
  SynthesisResult result = pipeline.Run(world.corpus);

  auto avg_f = [&](const std::vector<SynthesizedMapping>& ms) {
    auto per_case = bench::ScoreCases(bench::Relations(ms), world);
    double f = 0;
    for (const auto& s : per_case) f += s.fscore;
    return f / static_cast<double>(per_case.size());
  };

  PrintBanner(std::cout, "redundant-cluster consolidation (Appendix K)");
  const double f_before = avg_f(result.mappings);
  const size_t n_before = result.mappings.size();
  auto stats = ConsolidateRedundantMappings(&result.mappings,
                                            world.corpus.pool());
  const double f_after = avg_f(result.mappings);
  TextTable red({"", "clusters", "avg F"});
  red.AddRow({"before", std::to_string(n_before), bench::F(f_before)});
  red.AddRow({"after", std::to_string(stats.clusters_out),
              bench::F(f_after)});
  red.Print(std::cout);
  std::cout << stats.merges << " consolidations; curation queue shrank "
            << bench::F(100.0 * (1.0 - static_cast<double>(stats.clusters_out) /
                                           static_cast<double>(n_before)),
                        1)
            << "%\n";

  PrintBanner(std::cout, "temporal detection (Appendix J)");
  // Detection runs on the *curated* queue (popular clusters only): raw
  // synthesis fragments trivially chain into spurious snapshot groups.
  std::vector<SynthesizedMapping> curated;
  for (const auto& m : result.mappings) {
    if (m.num_domains >= 2 && m.size() >= 8) curated.push_back(m);
  }
  result.mappings = std::move(curated);
  auto temporal = DetectTemporalMappings(result.mappings,
                                         world.corpus.pool());
  std::cout << "snapshot groups found: " << temporal.groups.size()
            << ", clusters flagged temporal: " << temporal.flagged << "/"
            << result.mappings.size() << "\n";
  // Resolve each flagged cluster to its best benchmark case to see what
  // the detector actually catches. The known confounder — and the reason
  // the paper leaves this as future work — is that static sibling
  // code-system families (ISO/ISO2/IOC/FIFA over the same countries) are
  // structurally identical to temporal snapshot groups: same lefts,
  // conflicting rights, several clusters.
  size_t flagged_temporal_kind = 0, flagged_static_kind = 0,
         flagged_unmatched = 0;
  auto rels = bench::Relations(result.mappings);
  for (size_t i = 0; i < result.mappings.size(); ++i) {
    if (!temporal.is_temporal[i]) continue;
    int best_case = -1;
    double best_f = 0.2;  // ignore noise fragments
    for (size_t ci = 0; ci < world.cases.size(); ++ci) {
      PrfScore s = ScoreRelation(rels[i], world.cases[ci].ground_truth);
      if (s.fscore > best_f) {
        best_f = s.fscore;
        best_case = static_cast<int>(ci);
      }
    }
    if (best_case < 0) {
      ++flagged_unmatched;
    } else if (world.cases[best_case].kind == RelationKind::kTemporal) {
      ++flagged_temporal_kind;
    } else {
      ++flagged_static_kind;
    }
  }
  std::cout << "flagged clusters resolving to: temporal relations "
            << flagged_temporal_kind << ", static sibling code systems "
            << flagged_static_kind << " (the known confounder), fragments "
            << flagged_unmatched << "\n"
            << "(the corpus holds one single-season temporal relation, so "
               "true positives are structurally impossible here; the "
               "detector's value is surfacing *candidate* families for "
               "curator review — Appendix J future work)\n";
  return 0;
}
