// Appendix I reproduction: table expansion from trusted sources. Expected
// shape: overall effect limited; large relations with trusted feeds and
// long-tail instances (airports) improve substantially.
#include <iostream>

#include "bench_util.h"
#include "synth/expansion.h"

int main() {
  using namespace ms;
  GeneratorOptions gen;
  gen.seed = 42;
  gen.trusted_tail_factor = 1.0;
  GeneratedWorld world = GenerateWebWorld(gen);
  bench::PrintWorldSummary(world);
  std::cout << "trusted feeds: " << world.trusted.size() << "\n";

  SynthesisPipeline pipeline{SynthesisOptions{}};
  SynthesisResult r = pipeline.Run(world.corpus);

  auto before = bench::ScoreCases(bench::Relations(r.mappings), world);

  // Expand every mapping against the trusted feeds.
  size_t merged_sources = 0, pairs_added = 0;
  for (auto& m : r.mappings) {
    auto stats = ExpandMapping(&m, world.trusted, world.corpus.pool());
    merged_sources += stats.sources_merged;
    pairs_added += stats.pairs_added;
  }
  auto after = bench::ScoreCases(bench::Relations(r.mappings), world);

  std::cout << "expansion merged " << merged_sources << " trusted sources, "
            << "adding " << pairs_added << " pairs\n";

  double fb = 0, fa = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    fb += before[i].fscore;
    fa += after[i].fscore;
  }
  PrintBanner(std::cout, "Appendix I: f-score before/after expansion");
  TextTable t({"case", "before", "after", "delta"});
  size_t improved = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    const double d = after[i].fscore - before[i].fscore;
    if (d > 1e-9) {
      ++improved;
      t.AddRow({world.cases[i].name, bench::F(before[i].fscore, 3),
                bench::F(after[i].fscore, 3), "+" + bench::F(d, 3)});
    }
  }
  t.Print(std::cout);
  std::cout << "\ncases improved: " << improved << "/" << before.size()
            << "; avg f " << bench::F(fb / before.size())
            << " -> " << bench::F(fa / after.size())
            << " (overall effect limited, big gains on long-tail feeds"
               " — matches Appendix I)\n";
  return 0;
}
