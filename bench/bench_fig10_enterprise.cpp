// Figure 10 + Figure 11 reproduction: the Enterprise corpus. Synthesis vs
// the single-table EntTable baseline on ~30 best-effort enterprise cases,
// plus printed example mappings (Figure 11). Expected shape: Synthesis
// substantially higher recall at comparable precision.
#include <iostream>

#include "bench_util.h"
#include "eval/suite.h"

int main() {
  using namespace ms;
  GeneratorOptions gen;
  gen.seed = 42;
  GeneratedWorld world = GenerateEnterpriseWorld(gen);
  bench::PrintWorldSummary(world);

  SuiteOptions opts;
  opts.enterprise = true;
  opts.run_knowledge_bases = false;  // KBs do not exist for intranet data
  opts.run_wise_integrator = false;
  opts.run_correlation = false;
  opts.run_union = false;
  SuiteResult suite = RunMethodSuite(world, opts);

  PrintBanner(std::cout, "Figure 10: Synthesis vs EntTable on Enterprise");
  TextTable table({"method", "AvgFscore", "AvgPrecision", "AvgRecall"});
  for (const auto& e : suite.entries) {
    if (e.output.method_name != "Synthesis" &&
        e.output.method_name != "EntTable") {
      continue;
    }
    const auto& a = e.evaluation.aggregate;
    table.AddRow({e.output.method_name, bench::F(a.avg_fscore),
                  bench::F(a.avg_precision), bench::F(a.avg_recall)});
  }
  table.Print(std::cout);

  // --- Figure 11: example synthesized enterprise mappings.
  PrintBanner(std::cout, "Figure 11: example enterprise mappings");
  SynthesisPipeline pipeline{SynthesisOptions{}};
  SynthesisResult r = pipeline.Run(world.corpus);
  const StringPool& pool = world.corpus.pool();
  size_t shown = 0;
  for (const auto& m : r.mappings) {
    if (++shown > 6) break;
    std::cout << "(" << m.left_label << " -> " << m.right_label << "): ";
    size_t k = 0;
    for (const auto& p : m.merged.pairs()) {
      if (++k > 2) break;
      std::cout << "(" << pool.Get(p.left) << ", " << pool.Get(p.right)
                << ") ";
    }
    std::cout << "... [" << m.size() << " pairs, " << m.num_domains
              << " shares]\n";
  }
  return 0;
}
