// Figure 14 reproduction: per-case F-score of every method across the web
// benchmark, cases sorted by Synthesis F-score (descending) exactly as the
// paper plots them. Expected shape: Synthesis dominates the left region;
// Freebase wins a few tail cases where web presence is thin.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_util.h"
#include "eval/suite.h"

int main() {
  using namespace ms;
  GeneratedWorld world = bench::StandardWebWorld();
  bench::PrintWorldSummary(world);

  SuiteResult suite = RunMethodSuite(world, {});

  // Sort case indices by Synthesis f (descending).
  const auto& synthesis = suite.entries.front().evaluation;
  std::vector<size_t> order(world.cases.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return synthesis.per_case[a].fscore > synthesis.per_case[b].fscore;
  });

  PrintBanner(std::cout, "Figure 14: per-case f-score (sorted by Synthesis)");
  std::vector<std::string> header = {"case", "name"};
  for (const auto& e : suite.entries) header.push_back(e.output.method_name);
  TextTable table(header);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const size_t ci = order[rank];
    std::vector<std::string> row = {std::to_string(rank + 1),
                                    world.cases[ci].name};
    for (const auto& e : suite.entries) {
      row.push_back(bench::F(e.evaluation.per_case[ci].fscore, 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Summary: in how many cases does Synthesis win / tie?
  size_t wins = 0, ties = 0;
  for (size_t ci = 0; ci < world.cases.size(); ++ci) {
    double best_other = 0;
    for (size_t m = 1; m < suite.entries.size(); ++m) {
      best_other = std::max(best_other,
                            suite.entries[m].evaluation.per_case[ci].fscore);
    }
    const double f = synthesis.per_case[ci].fscore;
    if (f > best_other + 1e-9) {
      ++wins;
    } else if (f > best_other - 1e-9) {
      ++ties;
    }
  }
  std::cout << "\nSynthesis strictly best on " << wins << "/"
            << world.cases.size() << " cases, tied on " << ties << "\n";
  return 0;
}
