// Figure 15 + Section 5.6 reproduction: the effect of conflict resolution.
// Reports per-case F with and without Algorithm 4, the precision/recall
// deltas (paper: precision 0.903 -> 0.965, recall 0.885 -> 0.878), the
// number of improved cases (48/80 in the paper), and the comparison with
// majority voting.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_util.h"

int main() {
  using namespace ms;
  GeneratedWorld world = bench::StandardWebWorld();
  bench::PrintWorldSummary(world);

  auto run = [&](bool resolve, bool majority) {
    SynthesisOptions o;
    o.resolve_conflicts = resolve;
    o.use_majority_voting = majority;
    SynthesisPipeline pipeline(o);
    return bench::ScoreCases(
        bench::Relations(pipeline.Run(world.corpus).mappings), world);
  };

  auto with_cr = run(true, false);
  auto without_cr = run(false, false);
  auto majority = run(false, true);

  auto avg = [](const std::vector<PrfScore>& v, auto field) {
    double s = 0;
    for (const auto& x : v) s += x.*field;
    return s / static_cast<double>(v.size());
  };

  PrintBanner(std::cout, "Section 5.6: conflict resolution effect");
  TextTable table({"variant", "AvgFscore", "AvgPrecision", "AvgRecall"});
  table.AddRow({"Synthesis (Algorithm 4)",
                bench::F(avg(with_cr, &PrfScore::fscore)),
                bench::F(avg(with_cr, &PrfScore::precision)),
                bench::F(avg(with_cr, &PrfScore::recall))});
  table.AddRow({"W/O resolution", bench::F(avg(without_cr, &PrfScore::fscore)),
                bench::F(avg(without_cr, &PrfScore::precision)),
                bench::F(avg(without_cr, &PrfScore::recall))});
  table.AddRow({"Majority voting", bench::F(avg(majority, &PrfScore::fscore)),
                bench::F(avg(majority, &PrfScore::precision)),
                bench::F(avg(majority, &PrfScore::recall))});
  table.Print(std::cout);

  size_t improved = 0, hurt = 0;
  for (size_t i = 0; i < with_cr.size(); ++i) {
    if (with_cr[i].fscore > without_cr[i].fscore + 1e-9) ++improved;
    if (with_cr[i].fscore < without_cr[i].fscore - 1e-9) ++hurt;
  }
  std::cout << "\nconflict resolution improves " << improved << "/"
            << with_cr.size() << " cases, hurts " << hurt << "\n";

  // --- Figure 15: per-case f with vs without, sorted by the with-CR run.
  PrintBanner(std::cout, "Figure 15: per-case f-score with/without resolution");
  std::vector<size_t> order(world.cases.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return with_cr[a].fscore > with_cr[b].fscore;
  });
  TextTable percase({"case", "name", "Synthesis", "W/O Resolution"});
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const size_t ci = order[rank];
    percase.AddRow({std::to_string(rank + 1), world.cases[ci].name,
                    bench::F(with_cr[ci].fscore, 2),
                    bench::F(without_cr[ci].fscore, 2)});
  }
  percase.Print(std::cout);
  return 0;
}
