// Figure 7 reproduction: average F-score / precision / recall of all twelve
// methods on the web benchmark, plus the Table 6 synonym-coverage evidence
// and the Appendix J cluster-usefulness triage.
//
// Expected shape (paper): Synthesis best avg recall & F; WikiTable best
// precision; SynthesisPos clearly below Synthesis; SchemaPosCC < SchemaCC <
// Correlation < Synthesis; KBs precise but low recall.
#include <iostream>

#include "bench_util.h"
#include "eval/suite.h"

int main() {
  using namespace ms;
  GeneratedWorld world = bench::StandardWebWorld();
  bench::PrintWorldSummary(world);

  SuiteOptions opts;
  SuiteResult suite = RunMethodSuite(world, opts);
  std::cout << "candidates: " << suite.num_candidates
            << ", filter rate: "
            << bench::F(100 * suite.extraction_stats.FilterRate(), 1)
            << "% of column pairs, graph edges: " << suite.graph_edges
            << "\n";

  PrintBanner(std::cout, "Figure 7: average f-score / precision / recall");
  TextTable table({"method", "AvgFscore", "AvgPrecision", "AvgRecall",
                   "cases hit"});
  for (const auto& e : suite.entries) {
    const auto& a = e.evaluation.aggregate;
    table.AddRow({e.output.method_name, bench::F(a.avg_fscore),
                  bench::F(a.avg_precision), bench::F(a.avg_recall),
                  std::to_string(a.cases_with_hit) + "/" +
                      std::to_string(a.cases_total)});
  }
  table.Print(std::cout);

  // --- Table 6 evidence: synonym fan-in of the Synthesis country mapping.
  PrintBanner(std::cout, "Table 6: synonym coverage in synthesized mappings");
  const auto& synthesis = suite.entries.front();
  int iso = world.CaseIndex("country_iso3");
  if (iso >= 0 && synthesis.evaluation.best_relation[iso] >= 0) {
    const BinaryTable& rel =
        synthesis.output.relations[synthesis.evaluation.best_relation[iso]];
    std::cout << "synthesized country->ISO3 mapping: " << rel.size()
              << " entries over " << rel.RightValues().size()
              << " distinct codes ("
              << bench::F(static_cast<double>(rel.LeftValues().size()) /
                              static_cast<double>(rel.RightValues().size()),
                          2)
              << " name mentions per code; single tables carry ~1)\n";
    const StringPool& pool = world.corpus.pool();
    ValueId kor = pool.Find("kor");
    size_t korea_synonyms = 0;
    for (const auto& p : rel.pairs()) {
      if (p.right == kor) ++korea_synonyms;
    }
    std::cout << "mentions mapping to code KOR: " << korea_synonyms << "\n";
  }

  // --- Appendix J triage: share of static/temporal clusters among the
  // benchmark-relevant synthesized mappings.
  // Mappings arrive popularity-ranked; the paper triages the top clusters
  // (popularity correlates with usefulness, Section 4.3).
  PrintBanner(std::cout, "Appendix J: usefulness triage of top clusters");
  size_t is_static = 0, temporal = 0, unmatched = 0;
  std::vector<BinaryTable> top(
      synthesis.output.relations.begin(),
      synthesis.output.relations.begin() +
          std::min<size_t>(synthesis.output.relations.size(), 100));
  for (const auto& rel : top) {
    BestRelation best;
    int best_case = -1;
    for (size_t ci = 0; ci < world.cases.size(); ++ci) {
      PrfScore s = ScoreRelation(rel, world.cases[ci].ground_truth);
      if (s.fscore > best.score.fscore) {
        best.score = s;
        best_case = static_cast<int>(ci);
      }
    }
    if (best_case < 0 || best.score.fscore < 0.2) {
      ++unmatched;
    } else if (world.cases[best_case].kind == RelationKind::kTemporal) {
      ++temporal;
    } else {
      ++is_static;
    }
  }
  const double total = static_cast<double>(top.size());
  std::cout << "static meaningful: " << bench::F(100 * is_static / total, 1)
            << "%, temporal: " << bench::F(100 * temporal / total, 1)
            << "%, unmatched/meaningless: "
            << bench::F(100 * unmatched / total, 1) << "%\n";
  return 0;
}
