// Figure 8 reproduction: wall-clock runtime of every method on the same web
// corpus. Expected shape: KB lookups fastest; single-table / union scans
// cheap; Synthesis mid-pack (dominated by pair scoring + partitioning);
// Correlation slowest among the graph methods (iterative pivot rounds).
#include <iostream>

#include "bench_util.h"
#include "eval/suite.h"

int main() {
  using namespace ms;
  GeneratedWorld world = bench::StandardWebWorld();
  bench::PrintWorldSummary(world);

  SuiteResult suite = RunMethodSuite(world, {});

  PrintBanner(std::cout, "Figure 8: runtime per method (seconds)");
  TextTable table({"method", "runtime (s)", "relations produced"});
  for (const auto& e : suite.entries) {
    table.AddRow({e.output.method_name,
                  bench::F(e.output.runtime_seconds, 2),
                  std::to_string(e.output.relations.size())});
  }
  table.Print(std::cout);

  // Step-level breakdown for Synthesis (Section 5.3 discussion: table
  // synthesis dominates).
  SynthesisPipeline pipeline{SynthesisOptions{}};
  SynthesisResult r = pipeline.Run(world.corpus);
  PrintBanner(std::cout, "Synthesis step breakdown (seconds)");
  TextTable steps({"step", "seconds"});
  steps.AddRow({"index build", bench::F(r.stats.index_seconds, 3)});
  steps.AddRow({"candidate extraction", bench::F(r.stats.extract_seconds, 3)});
  steps.AddRow({"blocking", bench::F(r.stats.blocking_seconds, 3)});
  steps.AddRow({"  blocking: map+shuffle",
                bench::F(r.stats.blocking_map_shuffle_seconds, 3)});
  steps.AddRow({"  blocking: shard count",
                bench::F(r.stats.blocking_count_seconds, 3)});
  steps.AddRow({"  blocking: reduce",
                bench::F(r.stats.blocking_reduce_seconds, 3)});
  steps.AddRow({"pair scoring", bench::F(r.stats.scoring_seconds, 3)});
  const auto& sm = r.stats.scoring.matcher;
  steps.AddRow({"  scoring: myers64 kernel calls",
                std::to_string(sm.myers64_calls)});
  steps.AddRow({"  scoring: myers blocked calls",
                std::to_string(sm.myers_blocked_calls)});
  steps.AddRow({"  scoring: scalar fallback calls",
                std::to_string(sm.banded_calls)});
  steps.AddRow({"greedy partitioning", bench::F(r.stats.partition_seconds, 3)});
  steps.AddRow({"conflict resolution", bench::F(r.stats.resolve_seconds, 3)});
  steps.AddRow({"total", bench::F(r.stats.total_seconds, 3)});
  steps.Print(std::cout);
  std::cout << "blocking: " << r.stats.blocking_keys << " keys, "
            << r.stats.blocking_dropped_postings
            << " postings dropped by max_posting; normalize cache: "
            << r.stats.extraction.normalize_cache_hits << " hits / "
            << r.stats.extraction.normalize_cache_misses << " misses\n";
  std::cout << "scoring: " << sm.match_calls << " value-match calls, mask "
            << "cache " << sm.pattern_cache_hits << " hits / "
            << sm.pattern_cache_misses << " builds; blocking-count reuse "
            << "skipped " << r.stats.scoring.overlap_merges_skipped
            << " merges\n";
  return 0;
}
