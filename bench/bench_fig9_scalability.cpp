// Figure 9 reproduction: Synthesis runtime vs input size ({20..100}% of the
// corpus). Expected shape: close to linear growth thanks to edge sparsity
// from blocking (Section 5.3).
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace ms;
  // A larger corpus makes the trend readable.
  GeneratedWorld world = bench::StandardWebWorld(/*popularity_scale=*/1.5);
  bench::PrintWorldSummary(world);

  PrintBanner(std::cout, "Figure 9: runtime vs fraction of input tables");
  TextTable table({"input %", "tables", "candidates", "edges", "runtime (s)",
                   "mappings"});
  for (double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    TableCorpus subset = world.corpus.Subset(frac);
    SynthesisPipeline pipeline{SynthesisOptions{}};
    SynthesisResult r = pipeline.Run(subset);
    table.AddRow({std::to_string(static_cast<int>(frac * 100)),
                  std::to_string(subset.size()),
                  std::to_string(r.stats.candidates),
                  std::to_string(r.stats.graph_edges),
                  bench::F(r.stats.total_seconds, 2),
                  std::to_string(r.stats.mappings)});
  }
  table.Print(std::cout);
  return 0;
}
