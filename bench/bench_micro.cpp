// Google-benchmark micro-benchmarks for the performance-critical kernels:
// banded vs full vs bit-parallel Myers edit distance (short / long /
// mismatched lengths, one-shot and prebuilt-pattern), NPMI lookups,
// blocking, pair scoring, greedy partitioning, conflict resolution, bloom
// probes, and mapping-store lookups.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "apps/mapping_store.h"
#include "common/bloom_filter.h"
#include "common/random.h"
#include "persist/corpus_store.h"
#include "stats/npmi.h"
#include "synth/blocking.h"
#include "synth/compatibility.h"
#include "synth/conflict_resolution.h"
#include "synth/partitioner.h"
#include "table/corpus.h"
#include "text/edit_distance.h"
#include "text/myers.h"

#ifndef MS_PERSIST_SCRATCH_DIR
#define MS_PERSIST_SCRATCH_DIR "."
#endif

namespace ms {
namespace {

std::string RandomString(Rng& rng, size_t len) {
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s += static_cast<char>('a' + rng.Uniform(26));
  }
  return s;
}

void BM_EditDistanceFull(benchmark::State& state) {
  Rng rng(1);
  const size_t len = static_cast<size_t>(state.range(0));
  std::string a = RandomString(rng, len), b = RandomString(rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistanceFull(a, b));
  }
}
BENCHMARK(BM_EditDistanceFull)->Arg(8)->Arg(32)->Arg(128);

void BM_EditDistanceBanded(benchmark::State& state) {
  Rng rng(1);
  const size_t len = static_cast<size_t>(state.range(0));
  std::string a = RandomString(rng, len), b = a;
  b[len / 2] = '!';  // distance 1, well within the band
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistanceBanded(a, b, 3));
  }
}
BENCHMARK(BM_EditDistanceBanded)->Arg(8)->Arg(32)->Arg(128);

void BM_ApproxMatch(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::string> values;
  for (int i = 0; i < 64; ++i) values.push_back(RandomString(rng, 12));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ApproxMatch(values[i % 64], values[(i + 1) % 64]));
    ++i;
  }
}
BENCHMARK(BM_ApproxMatch);

// ------------------------------------------------------- scalar vs Myers
// Same inputs as BM_EditDistanceBanded (short / long / 64-boundary) so the
// scalar-banded vs bit-parallel comparison is direct.

void BM_Myers64OneShot(benchmark::State& state) {
  Rng rng(1);
  const size_t len = static_cast<size_t>(state.range(0));
  std::string a = RandomString(rng, len), b = a;
  b[len / 2] = '!';
  for (auto _ : state) {
    benchmark::DoNotOptimize(Myers64(a, b));
  }
}
BENCHMARK(BM_Myers64OneShot)->Arg(8)->Arg(32)->Arg(64);

void BM_MyersBlockedOneShot(benchmark::State& state) {
  Rng rng(1);
  const size_t len = static_cast<size_t>(state.range(0));
  std::string a = RandomString(rng, len), b = a;
  b[len / 2] = '!';
  for (auto _ : state) {
    benchmark::DoNotOptimize(MyersBlocked(a, b));
  }
}
BENCHMARK(BM_MyersBlockedOneShot)->Arg(128)->Arg(256);

// The batch case pair scoring actually hits: the pattern's bitmask table is
// prebuilt once and amortized over the candidate loop.
void BM_MyersPrebuiltPattern(benchmark::State& state) {
  Rng rng(1);
  const size_t len = static_cast<size_t>(state.range(0));
  std::string a = RandomString(rng, len), b = a;
  b[len / 2] = '!';
  MyersPattern p;
  BuildMyersPattern(a, &p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MyersDistance(p, b));
  }
}
BENCHMARK(BM_MyersPrebuiltPattern)->Arg(8)->Arg(32)->Arg(128);

// Mismatched lengths: the length-gap prefilter rejects before any DP work;
// both gates should collapse to a subtraction.
void BM_ApproxMatchMismatchedLengths(benchmark::State& state) {
  Rng rng(2);
  EditDistanceOptions opts;
  opts.use_bit_parallel = state.range(0) != 0;
  std::string short_s = RandomString(rng, 8);
  std::string long_s = RandomString(rng, 120);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApproxMatch(short_s, long_s, opts));
  }
}
BENCHMARK(BM_ApproxMatchMismatchedLengths)->Arg(0)->Arg(1);

// Gate off = the scalar banded path through the same predicate, for
// tracking the ApproxMatch-level speedup on near-miss pairs (the common
// case in conflict counting: similar lengths, distance just over θ).
void BM_ApproxMatchGate(benchmark::State& state) {
  Rng rng(2);
  EditDistanceOptions opts;
  opts.use_bit_parallel = state.range(1) != 0;
  const size_t len = static_cast<size_t>(state.range(0));
  std::vector<std::string> values;
  for (int i = 0; i < 64; ++i) values.push_back(RandomString(rng, len));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ApproxMatch(values[i % 64], values[(i + 1) % 64], opts));
    ++i;
  }
}
BENCHMARK(BM_ApproxMatchGate)
    ->Args({12, 0})
    ->Args({12, 1})
    ->Args({28, 0})
    ->Args({28, 1})
    ->Args({90, 0})
    ->Args({90, 1});

// The full scoring kernel through the batch matcher (mask cache warm), the
// configuration BuildCompatibilityGraph runs per chunk.
void BM_BatchMatcherScoring(benchmark::State& state) {
  auto pool = std::make_shared<StringPool>();
  Rng rng(11);
  std::vector<ValueId> ids;
  for (int i = 0; i < 256; ++i) {
    ids.push_back(pool->Intern(RandomString(rng, 6 + rng.Uniform(24))));
  }
  EditDistanceOptions opts;
  BatchApproxMatcher matcher(*pool, opts, /*approximate_matching=*/true,
                             nullptr);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matcher.Match(ids[i % 256], ids[(i + 1) % 256]));
    ++i;
  }
}
BENCHMARK(BM_BatchMatcherScoring);

struct ScoringWorld {
  std::shared_ptr<StringPool> pool = std::make_shared<StringPool>();
  std::vector<BinaryTable> candidates;

  explicit ScoringWorld(size_t n_tables, size_t rows = 16) {
    Rng rng(3);
    for (size_t t = 0; t < n_tables; ++t) {
      std::vector<ValuePair> pairs;
      for (size_t r = 0; r < rows; ++r) {
        // ~50 shared keys so blocking has real work.
        pairs.push_back(
            {pool->Intern("key" + std::to_string(rng.Uniform(50))),
             pool->Intern("val" + std::to_string(rng.Uniform(20)))});
      }
      BinaryTable b = BinaryTable::FromPairs(std::move(pairs));
      b.id = static_cast<BinaryTableId>(t);
      candidates.push_back(std::move(b));
    }
  }
};

/// Web-shaped blocking world: value popularity is skewed (a few hot keys
/// with truncation-length posting lists, a long thin tail) and the key
/// space grows with the table count, like a real extracted-candidate set.
/// ScoringWorld above is deliberately dense (nearly all pairs overlap) —
/// that shape is right for scoring benchmarks but degenerate for blocking.
std::vector<BinaryTable> BlockingWorld(size_t n_tables) {
  Rng rng(7);
  auto pool = std::make_shared<StringPool>();
  const uint32_t key_space = static_cast<uint32_t>(n_tables * 2);
  std::vector<BinaryTable> candidates;
  for (size_t t = 0; t < n_tables; ++t) {
    std::vector<ValuePair> pairs;
    for (size_t r = 0; r < 10; ++r) {
      const double p = rng.UniformDouble();
      uint32_t k;
      if (p < 0.1) {
        k = static_cast<uint32_t>(rng.Uniform(8));
      } else if (p < 0.4) {
        k = 8 + static_cast<uint32_t>(rng.Uniform(key_space / 100 + 1));
      } else {
        k = 8 + key_space / 100 + 1 +
            static_cast<uint32_t>(rng.Uniform(key_space));
      }
      pairs.push_back({k, static_cast<ValueId>(rng.Uniform(2000))});
    }
    BinaryTable b = BinaryTable::FromPairs(std::move(pairs));
    b.id = static_cast<BinaryTableId>(t);
    candidates.push_back(std::move(b));
  }
  return candidates;
}

void BM_Blocking(benchmark::State& state) {
  auto candidates = BlockingWorld(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateCandidatePairs(candidates, {}));
  }
}
BENCHMARK(BM_Blocking)->Arg(1024)->Arg(8192)->Arg(32768);

// Subset() guards its documented cost contract: O(kept cells) with the
// string pool shared, never a deep copy of the pool's bytes (see
// table/corpus.h). Ablation sweeps call it once per corpus-fraction point.
void BM_CorpusSubset(benchmark::State& state) {
  TableCorpus corpus;
  Rng rng(11);
  for (size_t t = 0; t < static_cast<size_t>(state.range(0)); ++t) {
    std::vector<std::string> lcol, rcol;
    for (size_t r = 0; r < 12; ++r) {
      lcol.push_back("name " + std::to_string(rng.Uniform(4000)));
      rcol.push_back("code" + std::to_string(rng.Uniform(500)));
    }
    corpus.AddFromStrings("d" + std::to_string(t % 32), TableSource::kWeb,
                          {"name", "code"}, {lcol, rcol});
  }
  for (auto _ : state) {
    TableCorpus half = corpus.Subset(0.5);
    benchmark::DoNotOptimize(half.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.size() / 2));
}
BENCHMARK(BM_CorpusSubset)->Arg(1024)->Arg(8192);

// Seed emit-then-count blocking, kept for speedup tracking against
// BM_Blocking (same worlds, same options).
void BM_BlockingReference(benchmark::State& state) {
  auto candidates = BlockingWorld(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenerateCandidatePairsReference(candidates, {}));
  }
}
BENCHMARK(BM_BlockingReference)->Arg(1024)->Arg(8192)->Arg(32768);

void BM_PairScoring(benchmark::State& state) {
  ScoringWorld world(64);
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = world.candidates[i % 64];
    const auto& b = world.candidates[(i + 7) % 64];
    benchmark::DoNotOptimize(ComputeCompatibility(a, b, *world.pool));
    ++i;
  }
}
BENCHMARK(BM_PairScoring);

void BM_GreedyPartition(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  CompatibilityGraph g(n);
  for (size_t e = 0; e < n * 4; ++e) {
    uint32_t u = static_cast<uint32_t>(rng.Uniform(n));
    uint32_t v = static_cast<uint32_t>(rng.Uniform(n));
    if (u == v) continue;
    g.AddEdge(u, v, rng.UniformDouble(),
              rng.Bernoulli(0.2) ? -rng.UniformDouble() : 0.0);
  }
  g.Finalize();
  PartitionerOptions opts;
  opts.theta_edge = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyPartition(g, opts));
  }
}
BENCHMARK(BM_GreedyPartition)->Arg(128)->Arg(1024);

void BM_ConflictResolution(benchmark::State& state) {
  ScoringWorld world(24, 12);
  std::vector<const BinaryTable*> ptrs;
  for (const auto& c : world.candidates) ptrs.push_back(&c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ResolveConflicts(ptrs));
  }
}
BENCHMARK(BM_ConflictResolution);

void BM_BloomProbe(benchmark::State& state) {
  BloomFilter bf(10000, 0.01);
  Rng rng(5);
  std::vector<std::string> keys;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back("entry" + std::to_string(i));
    bf.Add(keys.back());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.MayContain(keys[i % keys.size()]));
    ++i;
  }
}
BENCHMARK(BM_BloomProbe);

void BM_MappingStoreLookup(benchmark::State& state) {
  auto pool = std::make_shared<StringPool>();
  MappingStore store(pool);
  std::vector<ValuePair> pairs;
  for (int i = 0; i < 5000; ++i) {
    pairs.push_back({pool->Intern("left" + std::to_string(i)),
                     pool->Intern("right" + std::to_string(i))});
  }
  SynthesizedMapping m;
  m.merged = BinaryTable::FromPairs(std::move(pairs));
  store.Add(std::move(m), "bench");
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.LookupRight(0, "left" + std::to_string(i % 5000)));
    ++i;
  }
}
BENCHMARK(BM_MappingStoreLookup);

TableCorpus IndexBenchCorpus(size_t n_tables) {
  Rng rng(8);
  TableCorpus corpus;
  for (size_t t = 0; t < n_tables; ++t) {
    std::vector<std::string> cells;
    const size_t rows = 8 + rng.Uniform(10);
    for (size_t r = 0; r < rows; ++r) {
      cells.push_back("w" + std::to_string(rng.Uniform(n_tables * 4)));
    }
    corpus.AddFromStrings("d", TableSource::kWeb, {"c"}, {cells});
  }
  return corpus;
}

void BM_IndexBuildCsr(benchmark::State& state) {
  TableCorpus corpus = IndexBenchCorpus(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    ColumnInvertedIndex index;
    index.Build(corpus);
    benchmark::DoNotOptimize(index.num_columns());
  }
}
BENCHMARK(BM_IndexBuildCsr)->Arg(1000)->Arg(10000);

// Seed vector<vector> build, for comparison with BM_IndexBuildCsr.
void BM_IndexBuildReference(benchmark::State& state) {
  TableCorpus corpus = IndexBenchCorpus(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    ReferenceInvertedIndex index;
    index.Build(corpus);
    benchmark::DoNotOptimize(index.num_columns());
  }
}
BENCHMARK(BM_IndexBuildReference)->Arg(1000)->Arg(10000);

// Skewed-length posting intersection: exercises the galloping path.
void BM_CoOccurrenceSkewed(benchmark::State& state) {
  TableCorpus corpus;
  Rng rng(9);
  for (int t = 0; t < 4000; ++t) {
    std::vector<std::string> cells = {"hot"};
    if (rng.Bernoulli(0.01)) cells.push_back("rare");
    cells.push_back("w" + std::to_string(rng.Uniform(500)));
    corpus.AddFromStrings("d", TableSource::kWeb, {"c"}, {cells});
  }
  ColumnInvertedIndex index;
  index.Build(corpus);
  ValueId hot = corpus.pool().Find("hot");
  ValueId rare = corpus.pool().Find("rare");
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.CoOccurrence(hot, rare));
  }
}
BENCHMARK(BM_CoOccurrenceSkewed);

// Corpus-store open time: lazy pool indexing (PR 5) defers the string -> id
// hash build, so id-only consumers (serving, snapshot-driven synthesis)
// open without it. The Eager variant forces the build with one Find(), i.e.
// the pre-PR-5 open cost shape.
TableCorpus StoreBenchCorpus(size_t tables) {
  TableCorpus corpus;
  Rng rng(11);
  for (size_t t = 0; t < tables; ++t) {
    std::vector<std::string> left, right;
    for (int r = 0; r < 10; ++r) {
      left.push_back("entity value " + std::to_string(rng.Uniform(20000)));
      right.push_back("c" + std::to_string(rng.Uniform(4000)));
    }
    corpus.AddFromStrings("d", TableSource::kWeb, {"a", "b"}, {left, right});
  }
  return corpus;
}

void BM_CorpusStoreOpenLazy(benchmark::State& state) {
  const std::string path =
      std::string(MS_PERSIST_SCRATCH_DIR) + "/bench_micro_open.mscorp";
  TableCorpus corpus = StoreBenchCorpus(static_cast<size_t>(state.range(0)));
  if (!persist::SaveCorpusStore(corpus, path).ok()) {
    state.SkipWithError("cannot write corpus store scratch file");
    return;
  }
  for (auto _ : state) {
    auto opened = persist::OpenCorpusStore(path);
    benchmark::DoNotOptimize(opened.value().pool().size());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_CorpusStoreOpenLazy)->Arg(2000)->Arg(20000);

void BM_CorpusStoreOpenEagerIndex(benchmark::State& state) {
  const std::string path =
      std::string(MS_PERSIST_SCRATCH_DIR) + "/bench_micro_open_eager.mscorp";
  TableCorpus corpus = StoreBenchCorpus(static_cast<size_t>(state.range(0)));
  if (!persist::SaveCorpusStore(corpus, path).ok()) {
    state.SkipWithError("cannot write corpus store scratch file");
    return;
  }
  for (auto _ : state) {
    auto opened = persist::OpenCorpusStore(path);
    // One string -> id lookup materializes the whole index: the old eager
    // open cost, now paid only by paths that actually intern or Find.
    benchmark::DoNotOptimize(opened.value().pool().Find("nope"));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_CorpusStoreOpenEagerIndex)->Arg(2000)->Arg(20000);

void BM_Npmi(benchmark::State& state) {
  TableCorpus corpus;
  Rng rng(6);
  for (int t = 0; t < 200; ++t) {
    std::vector<std::string> col;
    for (int r = 0; r < 10; ++r) {
      col.push_back("w" + std::to_string(rng.Uniform(100)));
    }
    corpus.AddFromStrings("d", TableSource::kWeb, {"c"}, {col});
  }
  ColumnInvertedIndex index;
  index.Build(corpus);
  size_t i = 0;
  for (auto _ : state) {
    ValueId u = corpus.pool().Find("w" + std::to_string(i % 100));
    ValueId v = corpus.pool().Find("w" + std::to_string((i + 13) % 100));
    benchmark::DoNotOptimize(Npmi(index, u, v));
    ++i;
  }
}
BENCHMARK(BM_Npmi);

}  // namespace
}  // namespace ms

BENCHMARK_MAIN();
