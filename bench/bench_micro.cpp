// Google-benchmark micro-benchmarks for the performance-critical kernels:
// banded vs full edit distance (Algorithm 2's payoff), NPMI lookups,
// blocking, pair scoring, greedy partitioning, conflict resolution, bloom
// probes, and mapping-store lookups.
#include <benchmark/benchmark.h>

#include <memory>

#include "apps/mapping_store.h"
#include "common/bloom_filter.h"
#include "common/random.h"
#include "stats/npmi.h"
#include "synth/blocking.h"
#include "synth/compatibility.h"
#include "synth/conflict_resolution.h"
#include "synth/partitioner.h"
#include "text/edit_distance.h"

namespace ms {
namespace {

std::string RandomString(Rng& rng, size_t len) {
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s += static_cast<char>('a' + rng.Uniform(26));
  }
  return s;
}

void BM_EditDistanceFull(benchmark::State& state) {
  Rng rng(1);
  const size_t len = static_cast<size_t>(state.range(0));
  std::string a = RandomString(rng, len), b = RandomString(rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistanceFull(a, b));
  }
}
BENCHMARK(BM_EditDistanceFull)->Arg(8)->Arg(32)->Arg(128);

void BM_EditDistanceBanded(benchmark::State& state) {
  Rng rng(1);
  const size_t len = static_cast<size_t>(state.range(0));
  std::string a = RandomString(rng, len), b = a;
  b[len / 2] = '!';  // distance 1, well within the band
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistanceBanded(a, b, 3));
  }
}
BENCHMARK(BM_EditDistanceBanded)->Arg(8)->Arg(32)->Arg(128);

void BM_ApproxMatch(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::string> values;
  for (int i = 0; i < 64; ++i) values.push_back(RandomString(rng, 12));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ApproxMatch(values[i % 64], values[(i + 1) % 64]));
    ++i;
  }
}
BENCHMARK(BM_ApproxMatch);

struct ScoringWorld {
  std::shared_ptr<StringPool> pool = std::make_shared<StringPool>();
  std::vector<BinaryTable> candidates;

  explicit ScoringWorld(size_t n_tables, size_t rows = 16) {
    Rng rng(3);
    for (size_t t = 0; t < n_tables; ++t) {
      std::vector<ValuePair> pairs;
      for (size_t r = 0; r < rows; ++r) {
        // ~50 shared keys so blocking has real work.
        pairs.push_back(
            {pool->Intern("key" + std::to_string(rng.Uniform(50))),
             pool->Intern("val" + std::to_string(rng.Uniform(20)))});
      }
      BinaryTable b = BinaryTable::FromPairs(std::move(pairs));
      b.id = static_cast<BinaryTableId>(t);
      candidates.push_back(std::move(b));
    }
  }
};

void BM_Blocking(benchmark::State& state) {
  ScoringWorld world(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateCandidatePairs(world.candidates, {}));
  }
}
BENCHMARK(BM_Blocking)->Arg(64)->Arg(256);

void BM_PairScoring(benchmark::State& state) {
  ScoringWorld world(64);
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = world.candidates[i % 64];
    const auto& b = world.candidates[(i + 7) % 64];
    benchmark::DoNotOptimize(ComputeCompatibility(a, b, *world.pool));
    ++i;
  }
}
BENCHMARK(BM_PairScoring);

void BM_GreedyPartition(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  CompatibilityGraph g(n);
  for (size_t e = 0; e < n * 4; ++e) {
    uint32_t u = static_cast<uint32_t>(rng.Uniform(n));
    uint32_t v = static_cast<uint32_t>(rng.Uniform(n));
    if (u == v) continue;
    g.AddEdge(u, v, rng.UniformDouble(),
              rng.Bernoulli(0.2) ? -rng.UniformDouble() : 0.0);
  }
  g.Finalize();
  PartitionerOptions opts;
  opts.theta_edge = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyPartition(g, opts));
  }
}
BENCHMARK(BM_GreedyPartition)->Arg(128)->Arg(1024);

void BM_ConflictResolution(benchmark::State& state) {
  ScoringWorld world(24, 12);
  std::vector<const BinaryTable*> ptrs;
  for (const auto& c : world.candidates) ptrs.push_back(&c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ResolveConflicts(ptrs));
  }
}
BENCHMARK(BM_ConflictResolution);

void BM_BloomProbe(benchmark::State& state) {
  BloomFilter bf(10000, 0.01);
  Rng rng(5);
  std::vector<std::string> keys;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back("entry" + std::to_string(i));
    bf.Add(keys.back());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.MayContain(keys[i % keys.size()]));
    ++i;
  }
}
BENCHMARK(BM_BloomProbe);

void BM_MappingStoreLookup(benchmark::State& state) {
  auto pool = std::make_shared<StringPool>();
  MappingStore store(pool);
  std::vector<ValuePair> pairs;
  for (int i = 0; i < 5000; ++i) {
    pairs.push_back({pool->Intern("left" + std::to_string(i)),
                     pool->Intern("right" + std::to_string(i))});
  }
  SynthesizedMapping m;
  m.merged = BinaryTable::FromPairs(std::move(pairs));
  store.Add(std::move(m), "bench");
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.LookupRight(0, "left" + std::to_string(i % 5000)));
    ++i;
  }
}
BENCHMARK(BM_MappingStoreLookup);

void BM_Npmi(benchmark::State& state) {
  TableCorpus corpus;
  Rng rng(6);
  for (int t = 0; t < 200; ++t) {
    std::vector<std::string> col;
    for (int r = 0; r < 10; ++r) {
      col.push_back("w" + std::to_string(rng.Uniform(100)));
    }
    corpus.AddFromStrings("d", TableSource::kWeb, {"c"}, {col});
  }
  ColumnInvertedIndex index;
  index.Build(corpus);
  size_t i = 0;
  for (auto _ : state) {
    ValueId u = corpus.pool().Find("w" + std::to_string(i % 100));
    ValueId v = corpus.pool().Find("w" + std::to_string((i + 13) % 100));
    benchmark::DoNotOptimize(Npmi(index, u, v));
    ++i;
  }
}
BENCHMARK(BM_Npmi);

}  // namespace
}  // namespace ms

BENCHMARK_MAIN();
