// Remote serving acceptance benchmark: the net/ wire protocol + epoll
// server in front of a MappingService. Three claims are measured/gated:
//
//   1. Remote request latency and throughput — blocking clients replay a
//      mixed request stream over loopback TCP at 1 and 8 connections;
//      client-side p50/p99 latency and aggregate requests/s are recorded,
//      alongside the server's own histogram-derived quantiles from a Stats
//      request.
//   2. Zero divergence — a sweep of LookupBatch / SuggestCorrections /
//      AutoFill / AutoJoin requests must return responses BYTE-IDENTICAL
//      to a local encode of the in-process MappingService result. One
//      mismatch fails the binary at every scale.
//   3. Malformed-input survival — a burst of mutated/garbage frames is
//      thrown at the server, after which it must still serve and must have
//      counted malformed frames. A crash or wedge fails the binary.
//
// Results go to BENCH_NET.json (or argv[2]):
//
//   ./bench/bench_net [num_tables] [output.json]
//
// The corpus is the same web-shaped workload as bench_serving.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "apps/serving.h"
#include "common/random.h"
#include "common/timer.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "synth/session.h"
#include "table/corpus.h"

namespace ms {
namespace {

constexpr size_t kBatchSize = 32;
constexpr double kPhaseSeconds = 1.0;
constexpr size_t kManyConnections = 8;
constexpr size_t kAcceptanceScale = 8000;
constexpr int kFuzzFrames = 80;

/// Web-shaped vocabulary (same shape as bench_serving/bench_pr2..pr5).
struct Vocab {
  std::vector<std::string> lefts;
  std::vector<std::string> rights;

  Vocab(size_t n_lefts, size_t n_rights, Rng& rng) {
    const char* first[] = {"united", "republic", "southern", "new", "grand",
                           "upper", "saint", "north", "royal", "east"};
    const char* second[] = {"province", "island", "territory", "state",
                            "district", "region", "county", "kingdom",
                            "federation", "commonwealth"};
    for (size_t i = 0; i < n_lefts; ++i) {
      std::string s = std::string(first[rng.Uniform(10)]) + " " +
                      second[rng.Uniform(10)] + " " + std::to_string(i / 7);
      switch (rng.Uniform(8)) {
        case 0:
          s[rng.Uniform(s.size())] = static_cast<char>('a' + rng.Uniform(26));
          break;
        case 1:
          s += static_cast<char>('a' + rng.Uniform(26));
          break;
        default:
          break;
      }
      lefts.push_back(std::move(s));
    }
    for (size_t i = 0; i < n_rights; ++i) {
      rights.push_back("c" + std::to_string(i));
    }
  }
};

void GrowCorpus(TableCorpus* corpus, size_t count, const Vocab& vocab,
                Rng& rng) {
  const uint32_t nl = static_cast<uint32_t>(vocab.lefts.size());
  const uint32_t nr = static_cast<uint32_t>(vocab.rights.size());
  auto skewed = [&](uint32_t space) -> uint32_t {
    const double r = rng.UniformDouble();
    if (r < 0.10) return static_cast<uint32_t>(rng.Uniform(8));
    const uint32_t warm = space / 100 + 1;
    if (r < 0.40) return 8 + static_cast<uint32_t>(rng.Uniform(warm));
    return 8 + warm + static_cast<uint32_t>(rng.Uniform(space - 8 - warm));
  };
  std::vector<std::string> left_col, right_col;
  std::vector<uint32_t> seen;
  for (size_t t = 0; t < count; ++t) {
    left_col.clear();
    right_col.clear();
    seen.clear();
    const size_t rows = 6 + rng.Uniform(8);
    while (left_col.size() < rows) {
      const uint32_t li = skewed(nl);
      if (std::find(seen.begin(), seen.end(), li) != seen.end()) continue;
      seen.push_back(li);
      left_col.push_back(vocab.lefts[li]);
      right_col.push_back(vocab.rights[skewed(nr)]);
    }
    right_col[1] = right_col[0];
    corpus->AddFromStrings(
        "domain" + std::to_string(corpus->size() % 64) + ".example",
        TableSource::kWeb, {"name", "code"}, {left_col, right_col});
  }
}

SynthesisOptions BenchOptions() {
  SynthesisOptions o;
  o.min_domains = 1;
  o.min_pairs = 1;
  o.extraction.coherence_threshold = -1.0;
  return o;
}

/// Pre-generated request batches (hits, misses, typos, duplicates) so the
/// timed loops measure the serving path, not string construction.
struct RequestPool {
  std::vector<std::vector<std::string>> batches;
  std::vector<std::vector<std::string>> columns;
};

RequestPool BuildRequests(const ServingSnapshot& snap, Rng& rng,
                          size_t n_batches) {
  std::vector<std::string> lefts;
  for (const auto& m : snap.result->mappings) {
    for (const auto& p : m.merged.pairs()) {
      lefts.emplace_back(snap.pool->Get(p.left));
    }
    if (lefts.size() > 50000) break;
  }
  RequestPool pool;
  pool.batches.reserve(n_batches);
  pool.columns.reserve(n_batches);
  for (size_t b = 0; b < n_batches; ++b) {
    std::vector<std::string> batch;
    batch.reserve(kBatchSize);
    for (size_t k = 0; k < kBatchSize; ++k) {
      const double roll = rng.UniformDouble();
      if (lefts.empty() || roll < 0.15) {
        batch.push_back("miss value " + std::to_string(rng.Uniform(10000)));
      } else {
        std::string v = lefts[rng.Uniform(lefts.size())];
        if (roll < 0.3 && !v.empty()) v[rng.Uniform(v.size())] = 'z';
        batch.push_back(std::move(v));
      }
    }
    for (size_t k = kBatchSize / 2; k + 1 < kBatchSize; k += 3) {
      batch[k] = batch[k / 2];
    }
    std::vector<std::string> column(batch.begin(), batch.begin() + 12);
    pool.batches.push_back(std::move(batch));
    pool.columns.push_back(std::move(column));
  }
  return pool;
}

struct PhaseResult {
  double seconds = 0;
  uint64_t requests = 0;
  double p50_us = 0;
  double p99_us = 0;
  double requests_per_sec() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0;
  }
};

/// `conns` blocking clients replay the request stream for ~kPhaseSeconds:
/// 80% LookupBatch, 10% SuggestCorrections, 10% Health. Per-request
/// round-trip latencies are sampled for p50/p99.
PhaseResult RunClientPhase(uint16_t port, const RequestPool& pool,
                           size_t num_mappings, size_t conns, bool* failed) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_requests{0};
  std::atomic<int> errors{0};
  std::vector<std::vector<double>> latencies(conns);
  std::vector<std::thread> workers;
  workers.reserve(conns);
  Timer phase_timer;
  for (size_t t = 0; t < conns; ++t) {
    workers.emplace_back([&, t] {
      auto cr = net::MappingClient::Connect("127.0.0.1", port);
      if (!cr.ok()) {
        errors.fetch_add(1);
        return;
      }
      net::MappingClient client = std::move(cr.value());
      Rng rng(0xbeef + t);
      auto& lat = latencies[t];
      lat.reserve(1 << 14);
      uint64_t requests = 0;
      const size_t n = pool.batches.size();
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t i = rng.Uniform(n);
        const double roll = rng.UniformDouble();
        Timer t0;
        bool ok = true;
        if (roll < 0.8) {
          const size_t mi = num_mappings ? rng.Uniform(num_mappings) : 0;
          ok = client.LookupBatch(mi, pool.batches[i]).ok();
        } else if (roll < 0.9) {
          ok = client.SuggestCorrections(pool.columns[i]).ok();
        } else {
          ok = client.Health().ok();
        }
        lat.push_back(t0.ElapsedSeconds() * 1e6);
        if (!ok) {
          errors.fetch_add(1);
          return;
        }
        ++requests;
      }
      total_requests.fetch_add(requests, std::memory_order_relaxed);
    });
  }
  while (phase_timer.ElapsedSeconds() < kPhaseSeconds) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  if (errors.load() != 0) *failed = true;

  PhaseResult r;
  r.seconds = phase_timer.ElapsedSeconds();
  r.requests = total_requests.load();
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    r.p50_us = all[all.size() / 2];
    r.p99_us = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  return r;
}

/// Fire-and-forget raw bytes at the server (fuzz smoke).
void SendRawBytes(uint16_t port, std::string_view bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return;
  timeval tv{};
  tv.tv_usec = 50'000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    (void)!::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    char sink[4096];
    (void)!::recv(fd, sink, sizeof(sink), 0);
  }
  ::close(fd);
}

}  // namespace
}  // namespace ms

int main(int argc, char** argv) {
  using namespace ms;
  const size_t n_tables =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : kAcceptanceScale;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_NET.json";

  Rng vocab_rng(4321);
  std::cout << "building corpus of " << n_tables << " tables...\n"
            << std::flush;
  Vocab vocab(std::max<size_t>(n_tables / 4, 500),
              std::max<size_t>(n_tables / 30, 100), vocab_rng);
  Rng grow_rng = vocab_rng;
  TableCorpus corpus;
  GrowCorpus(&corpus, n_tables, vocab, grow_rng);

  MappingService svc(BenchOptions());
  {
    Timer t;
    const Status st = svc.Synthesize(corpus);
    if (!st.ok()) {
      std::cerr << "FAIL: synthesize: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "synthesized " << svc.num_mappings() << " mappings in "
              << t.ElapsedSeconds() << "s\n"
              << std::flush;
  }
  const auto snap0 = svc.AcquireSnapshot();
  if (snap0 == nullptr || snap0->store->size() == 0) {
    std::cerr << "FAIL: nothing published to serve\n";
    return 1;
  }
  Rng req_rng(777);
  const RequestPool requests = BuildRequests(*snap0, req_rng, 512);

  net::ServerOptions sopts;
  sopts.num_workers = 2;
  net::MappingServer server(svc, sopts);
  {
    const Status st = server.Start();
    if (!st.ok()) {
      std::cerr << "FAIL: server start: " << st.ToString() << "\n";
      return 1;
    }
  }
  std::cout << "serving on 127.0.0.1:" << server.port() << "\n" << std::flush;

  // -------------------------------------------------- client load phases
  bool phase_failed = false;
  std::cout << "client phase: 1 connection...\n" << std::flush;
  const PhaseResult one = RunClientPhase(server.port(), requests,
                                         svc.num_mappings(), 1, &phase_failed);
  std::cout << "client phase: " << kManyConnections << " connections...\n"
            << std::flush;
  const PhaseResult many =
      RunClientPhase(server.port(), requests, svc.num_mappings(),
                     kManyConnections, &phase_failed);
  std::cout << "  1 conn:  " << static_cast<uint64_t>(one.requests_per_sec())
            << " req/s (p50 " << one.p50_us << "us, p99 " << one.p99_us
            << "us)\n  " << kManyConnections << " conns: "
            << static_cast<uint64_t>(many.requests_per_sec()) << " req/s (p50 "
            << many.p50_us << "us, p99 " << many.p99_us << "us)\n";

  // --------------------------------------------------- divergence sweep
  // Remote responses must be byte-identical to a local encode of the
  // in-process result under the response's own header.
  std::cout << "divergence sweep...\n" << std::flush;
  uint64_t divergence = 0;
  {
    auto cr = net::MappingClient::Connect("127.0.0.1", server.port());
    if (!cr.ok()) {
      std::cerr << "FAIL: sweep connect: " << cr.status().ToString() << "\n";
      return 1;
    }
    net::MappingClient client = std::move(cr.value());
    Rng rng(31337);
    for (int k = 0; k < 200; ++k) {
      const auto& batch = requests.batches[rng.Uniform(requests.batches.size())];
      const size_t mi = rng.Uniform(svc.num_mappings());
      const uint8_t dir = static_cast<uint8_t>(rng.Uniform(2));
      auto remote = client.LookupBatch(mi, batch, dir);
      if (!remote.ok()) {
        ++divergence;
        continue;
      }
      net::LookupBatchResponse local;
      local.values = svc.LookupBatch(
          mi, batch,
          dir == 0 ? MappingService::LookupDirection::kLeftToRight
                   : MappingService::LookupDirection::kRightToLeft);
      if (client.last_response_body() !=
          EncodeLookupBatchResponse(client.last_header(), local)) {
        ++divergence;
      }
    }
    for (int k = 0; k < 40; ++k) {
      const auto& column =
          requests.columns[rng.Uniform(requests.columns.size())];
      switch (k % 3) {
        case 0: {
          auto remote = client.SuggestCorrections(column);
          if (!remote.ok() ||
              client.last_response_body() !=
                  EncodeSuggestCorrectionsResponse(
                      client.last_header(), svc.SuggestCorrections(column))) {
            ++divergence;
          }
          break;
        }
        case 1: {
          const std::vector<std::pair<size_t, std::string>> examples = {
              {0, column[0]}};
          auto remote = client.AutoFill(column, examples);
          if (!remote.ok() ||
              client.last_response_body() !=
                  EncodeAutoFillResponse(client.last_header(),
                                         svc.AutoFill(column, examples))) {
            ++divergence;
          }
          break;
        }
        default: {
          auto remote = client.AutoJoin(column, column);
          if (!remote.ok() ||
              client.last_response_body() !=
                  EncodeAutoJoinResponse(client.last_header(),
                                         svc.AutoJoin(column, column))) {
            ++divergence;
          }
          break;
        }
      }
    }
  }
  std::cout << "  divergence: " << divergence << "\n";

  // --------------------------------------------------------- fuzz smoke
  std::cout << "fuzz smoke: " << kFuzzFrames << " hostile frames...\n"
            << std::flush;
  {
    Rng rng(0xF0220F0Fu);
    std::string seed;
    net::LookupBatchRequest req;
    req.values = requests.batches[0];
    AppendFrame(net::MsgType::kLookupBatchReq, 1,
                EncodeLookupBatchRequest(req), &seed);
    for (int i = 0; i < kFuzzFrames; ++i) {
      std::string bytes = seed;
      switch (rng.Uniform(4)) {
        case 0:
          for (uint64_t f = 1 + rng.Uniform(4); f > 0; --f) {
            bytes[rng.Uniform(bytes.size())] ^=
                static_cast<char>(1 << rng.Uniform(8));
          }
          break;
        case 1:
          bytes.resize(rng.Uniform(bytes.size()));
          break;
        case 2:
          bytes.assign(1 + rng.Uniform(96), '\0');
          for (auto& b : bytes) b = static_cast<char>(rng.Uniform(256));
          break;
        default:
          break;
      }
      SendRawBytes(server.port(), bytes);
    }
  }

  // The server must still be fully serviceable.
  uint64_t malformed_frames = 0;
  double server_p50_us = 0;
  double server_p99_us = 0;
  bool post_fuzz_ok = false;
  {
    auto cr = net::MappingClient::Connect("127.0.0.1", server.port());
    if (cr.ok()) {
      net::MappingClient client = std::move(cr.value());
      auto stats = client.Stats();
      if (stats.ok() && client.Health().ok()) {
        post_fuzz_ok = true;
        malformed_frames = stats.value().malformed_frames;
        const auto& lookup = stats.value().per_type[static_cast<size_t>(
                                                        net::MsgType::
                                                            kLookupBatchReq) -
                                                    1];
        server_p50_us = lookup.second.p50_us;
        server_p99_us = lookup.second.p99_us;
      }
    }
  }
  std::cout << "  post-fuzz serviceable: " << (post_fuzz_ok ? "yes" : "NO")
            << ", malformed frames counted: " << malformed_frames << "\n";

  server.Stop();

  // ----------------------------------------------------------------- JSON
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"bench_net (remote serving: wire protocol + epoll "
         "server over loopback TCP)\",\n"
      << "  \"corpus_tables\": " << n_tables << ",\n"
      << "  \"mappings\": " << svc.num_mappings() << ",\n"
      << "  \"batch_size\": " << kBatchSize << ",\n"
      << "  \"phase_seconds\": " << kPhaseSeconds << ",\n"
      << "  \"requests_per_sec_1c\": " << one.requests_per_sec() << ",\n"
      << "  \"p50_us_1c\": " << one.p50_us << ",\n"
      << "  \"p99_us_1c\": " << one.p99_us << ",\n"
      << "  \"connections_scaled\": " << kManyConnections << ",\n"
      << "  \"requests_per_sec_8c\": " << many.requests_per_sec() << ",\n"
      << "  \"p50_us_8c\": " << many.p50_us << ",\n"
      << "  \"p99_us_8c\": " << many.p99_us << ",\n"
      << "  \"server_lookup_p50_us\": " << server_p50_us << ",\n"
      << "  \"server_lookup_p99_us\": " << server_p99_us << ",\n"
      << "  \"fuzz_frames\": " << kFuzzFrames << ",\n"
      << "  \"malformed_frames_counted\": " << malformed_frames << ",\n"
      << "  \"post_fuzz_serviceable\": " << (post_fuzz_ok ? "true" : "false")
      << ",\n"
      << "  \"divergence\": " << divergence << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  // Correctness gates hold at every scale.
  if (phase_failed) {
    std::cerr << "FAIL: a client phase recorded request errors\n";
    return 1;
  }
  if (one.requests == 0 || many.requests == 0) {
    std::cerr << "FAIL: a client phase served no requests\n";
    return 1;
  }
  if (divergence != 0) {
    std::cerr << "FAIL: " << divergence
              << " remote responses diverged from the in-process oracle\n";
    return 1;
  }
  if (!post_fuzz_ok) {
    std::cerr << "FAIL: server not serviceable after the fuzz burst\n";
    return 1;
  }
  if (malformed_frames == 0) {
    std::cerr << "FAIL: fuzz burst produced no counted malformed frames\n";
    return 1;
  }
  return 0;
}
