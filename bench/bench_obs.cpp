// Observability acceptance benchmark: the obs/ metrics + tracing layer must
// be cheap enough to leave on in production. Two claims are measured/gated:
//
//   1. Instrumentation overhead — the same fixed-work mixed-traffic loop as
//      bench_serving's read phase (80% LookupBatch-32, 10% AutoFill, 10%
//      SuggestCorrections) runs with tracing/metrics enabled and with the
//      layer compiled in but idle (SetTracingEnabled(false)). Reps are
//      interleaved and compared min-vs-min; enabled must cost < 2% over
//      idle. The gate self-arms only once the idle phase is long enough for
//      the comparison to be meaningful (tiny smoke runs record but do not
//      enforce).
//   2. Scrape liveness — a MappingServer is stood up on an ephemeral port,
//      remote traffic is driven through it, and a MetricsText scrape must
//      return a non-empty, well-formed exposition containing the synthesis
//      stage, serving, and net series. A missing series fails the binary at
//      every scale.
//
// Results go to BENCH_OBS.json (or argv[2]):
//
//   ./bench/bench_obs [num_tables] [output.json]
//
// The corpus is the same web-shaped workload as bench_serving.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "apps/serving.h"
#include "common/random.h"
#include "common/timer.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/session.h"
#include "table/corpus.h"

namespace ms {
namespace {

constexpr size_t kBatchSize = 32;
constexpr size_t kReps = 7;
constexpr size_t kItersPerRep = 1200;
constexpr double kOverheadGate = 0.02;
/// Below this idle-phase duration the quantization noise of a single rep is
/// comparable to the overhead being measured; record, don't enforce.
constexpr double kEnforceMinSeconds = 0.05;

/// Web-shaped vocabulary (same shape as bench_serving/bench_pr2..pr5).
struct Vocab {
  std::vector<std::string> lefts;
  std::vector<std::string> rights;

  Vocab(size_t n_lefts, size_t n_rights, Rng& rng) {
    const char* first[] = {"united", "republic", "southern", "new", "grand",
                           "upper", "saint", "north", "royal", "east"};
    const char* second[] = {"province", "island", "territory", "state",
                            "district", "region", "county", "kingdom",
                            "federation", "commonwealth"};
    for (size_t i = 0; i < n_lefts; ++i) {
      std::string s = std::string(first[rng.Uniform(10)]) + " " +
                      second[rng.Uniform(10)] + " " + std::to_string(i / 7);
      switch (rng.Uniform(8)) {
        case 0:
          s[rng.Uniform(s.size())] = static_cast<char>('a' + rng.Uniform(26));
          break;
        case 1:
          s += static_cast<char>('a' + rng.Uniform(26));
          break;
        default:
          break;
      }
      lefts.push_back(std::move(s));
    }
    for (size_t i = 0; i < n_rights; ++i) {
      rights.push_back("c" + std::to_string(i));
    }
  }
};

void GrowCorpus(TableCorpus* corpus, size_t count, const Vocab& vocab,
                Rng& rng) {
  const uint32_t nl = static_cast<uint32_t>(vocab.lefts.size());
  const uint32_t nr = static_cast<uint32_t>(vocab.rights.size());
  auto skewed = [&](uint32_t space) -> uint32_t {
    const double r = rng.UniformDouble();
    if (r < 0.10) return static_cast<uint32_t>(rng.Uniform(8));
    const uint32_t warm = space / 100 + 1;
    if (r < 0.40) return 8 + static_cast<uint32_t>(rng.Uniform(warm));
    return 8 + warm + static_cast<uint32_t>(rng.Uniform(space - 8 - warm));
  };
  std::vector<std::string> left_col, right_col;
  std::set<uint32_t> seen;
  for (size_t t = 0; t < count; ++t) {
    left_col.clear();
    right_col.clear();
    seen.clear();
    const size_t rows = 6 + rng.Uniform(8);
    while (left_col.size() < rows) {
      const uint32_t li = skewed(nl);
      if (!seen.insert(li).second) continue;
      left_col.push_back(vocab.lefts[li]);
      right_col.push_back(vocab.rights[skewed(nr)]);
    }
    right_col[1] = right_col[0];
    corpus->AddFromStrings(
        "domain" + std::to_string(corpus->size() % 64) + ".example",
        TableSource::kWeb, {"name", "code"}, {left_col, right_col});
  }
}

SynthesisOptions BenchOptions() {
  SynthesisOptions o;
  o.min_domains = 1;
  o.min_pairs = 1;
  o.extraction.coherence_threshold = -1.0;
  return o;
}

/// Pre-generated request stream, identical in shape to bench_serving's.
struct RequestPool {
  std::vector<std::vector<std::string>> batches;
  std::vector<std::vector<std::string>> columns;
};

RequestPool BuildRequests(const ServingSnapshot& snap, Rng& rng,
                          size_t n_batches) {
  std::vector<std::string> lefts;
  for (const auto& m : snap.result->mappings) {
    for (const auto& p : m.merged.pairs()) {
      lefts.emplace_back(snap.pool->Get(p.left));
    }
    if (lefts.size() > 50000) break;
  }
  RequestPool pool;
  pool.batches.reserve(n_batches);
  pool.columns.reserve(n_batches);
  for (size_t b = 0; b < n_batches; ++b) {
    std::vector<std::string> batch;
    batch.reserve(kBatchSize);
    for (size_t k = 0; k < kBatchSize; ++k) {
      const double roll = rng.UniformDouble();
      if (lefts.empty() || roll < 0.15) {
        batch.push_back("miss value " + std::to_string(rng.Uniform(10000)));
      } else {
        std::string v = lefts[rng.Uniform(lefts.size())];
        if (roll < 0.3 && !v.empty()) v[rng.Uniform(v.size())] = 'z';
        batch.push_back(std::move(v));
      }
    }
    for (size_t k = kBatchSize / 2; k + 1 < kBatchSize; k += 3) {
      batch[k] = batch[k / 2];
    }
    std::vector<std::string> column(batch.begin(), batch.begin() + 12);
    pool.batches.push_back(std::move(batch));
    pool.columns.push_back(std::move(column));
  }
  return pool;
}

/// One fixed-work rep of the mixed phase. The rng seed pins the request
/// sequence, so the enabled and idle modes execute byte-identical work and
/// only the instrumentation differs. Returns elapsed seconds; the lookup
/// tally is accumulated into *sink so the loop cannot be optimized away.
double MixedRep(const MappingService& svc, const RequestPool& pool,
                uint64_t seed, uint64_t* sink) {
  Rng rng(seed);
  const size_t n = pool.batches.size();
  uint64_t lookups = 0;
  Timer t;
  for (size_t it = 0; it < kItersPerRep; ++it) {
    const size_t i = rng.Uniform(n);
    const double roll = rng.UniformDouble();
    if (roll < 0.8) {
      const auto snap = svc.AcquireSnapshot();
      if (snap == nullptr) continue;
      const size_t mi = rng.Uniform(snap->store->size());
      lookups += svc.LookupBatch(mi, pool.batches[i]).size();
    } else if (roll < 0.9) {
      const auto res = svc.AutoFill(pool.columns[i],
                                    {{0, std::string(pool.columns[i][0])}});
      lookups += res.values.size();
    } else {
      (void)svc.SuggestCorrections(pool.columns[i]);
      lookups += pool.columns[i].size();
    }
  }
  const double s = t.ElapsedSeconds();
  *sink += lookups;
  return s;
}

}  // namespace
}  // namespace ms

int main(int argc, char** argv) {
  using namespace ms;
  const size_t n_tables =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8000;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_OBS.json";

  Rng vocab_rng(4321);
  std::cout << "building corpus of " << n_tables << " tables...\n"
            << std::flush;
  Vocab vocab(std::max<size_t>(n_tables / 4, 500),
              std::max<size_t>(n_tables / 30, 100), vocab_rng);
  Rng grow_rng = vocab_rng;
  TableCorpus corpus;
  GrowCorpus(&corpus, n_tables, vocab, grow_rng);

  MappingService svc(BenchOptions());
  {
    Timer t;
    const Status st = svc.Synthesize(corpus);
    if (!st.ok()) {
      std::cerr << "FAIL: synthesize: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "synthesized " << svc.num_mappings() << " mappings in "
              << t.ElapsedSeconds() << "s\n"
              << std::flush;
  }
  const auto snap0 = svc.AcquireSnapshot();
  if (snap0 == nullptr || snap0->store->size() == 0) {
    std::cerr << "FAIL: nothing published to serve\n";
    return 1;
  }
  Rng req_rng(777);
  const RequestPool requests = BuildRequests(*snap0, req_rng, 512);

  // --------------------------------------------- overhead: enabled vs idle
  // Interleaved reps (idle, enabled, idle, enabled, ...) so thermal drift
  // and cache warmth hit both modes equally; min-vs-min discards scheduler
  // noise. One warmup rep per mode is discarded.
  uint64_t sink = 0;
  obs::SetTracingEnabled(false);
  (void)MixedRep(svc, requests, 1, &sink);
  obs::SetTracingEnabled(true);
  (void)MixedRep(svc, requests, 1, &sink);

  double min_idle = 1e300, min_enabled = 1e300;
  std::cout << "overhead phase: " << kReps << " interleaved reps of "
            << kItersPerRep << " mixed ops...\n"
            << std::flush;
  for (size_t rep = 0; rep < kReps; ++rep) {
    // Alternate which mode runs first within the pair so neither gets a
    // systematic cache-warmth or frequency-scaling advantage.
    const bool idle_first = rep % 2 == 0;
    for (int half = 0; half < 2; ++half) {
      const bool idle = (half == 0) == idle_first;
      obs::SetTracingEnabled(!idle);
      const double s = MixedRep(svc, requests, 100 + rep, &sink);
      (idle ? min_idle : min_enabled) = std::min(idle ? min_idle : min_enabled, s);
    }
  }
  obs::SetTracingEnabled(true);
  const double overhead =
      min_idle > 0 ? (min_enabled - min_idle) / min_idle : 0.0;
  const bool gate_enforced = min_idle >= kEnforceMinSeconds;
  std::cout << "  idle    " << min_idle << "s\n  enabled " << min_enabled
            << "s\n  overhead " << overhead * 100 << "% (gate "
            << kOverheadGate * 100 << "%, "
            << (gate_enforced ? "enforced" : "recorded only") << ")\n";

  // ----------------------------------------------------- live scrape smoke
  std::cout << "scrape smoke: server + remote traffic + MetricsText...\n"
            << std::flush;
  std::string scrape;
  bool scrape_ok = false;
  {
    net::MappingServer server(svc, net::ServerOptions{});
    const Status st = server.Start();
    if (!st.ok()) {
      std::cerr << "FAIL: server start: " << st.ToString() << "\n";
      return 1;
    }
    auto client = net::MappingClient::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      std::cerr << "FAIL: connect: " << client.status().message() << "\n";
      return 1;
    }
    for (size_t i = 0; i < 16; ++i) {
      const auto r =
          client.value().LookupBatch(i % snap0->store->size(),
                                     requests.batches[i]);
      if (!r.ok()) {
        std::cerr << "FAIL: remote lookup: " << r.status().message() << "\n";
        return 1;
      }
    }
    auto text = client.value().MetricsText();
    if (!text.ok()) {
      std::cerr << "FAIL: MetricsText: " << text.status().message() << "\n";
      return 1;
    }
    scrape = std::move(text.value());
    const char* required[] = {
        "ms_synth_stage_us_bucket{stage=\"extract\"",
        "ms_serving_request_us_count{op=\"lookup_batch\"}",
        "ms_serving_snapshot_version ",
        "ms_env_retries_total ",
        "ms_net_requests_total{type=\"lookup_batch\"}",
        "ms_net_bytes_out_total ",
    };
    scrape_ok = !scrape.empty() && scrape.back() == '\n';
    for (const char* series : required) {
      if (scrape.find(series) == std::string::npos) {
        std::cerr << "FAIL: scrape is missing series " << series << "\n";
        scrape_ok = false;
      }
    }
    server.Stop();
  }
  std::cout << "  scraped " << scrape.size() << " bytes, "
            << (scrape_ok ? "all required series present" : "MISSING series")
            << "\n";

  // ----------------------------------------------------------------- JSON
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"bench_obs (instrumentation overhead on the mixed "
         "serving phase + live scrape smoke)\",\n"
      << "  \"corpus_tables\": " << n_tables << ",\n"
      << "  \"mappings\": " << svc.num_mappings() << ",\n"
      << "  \"reps\": " << kReps << ",\n"
      << "  \"iters_per_rep\": " << kItersPerRep << ",\n"
      << "  \"batch_size\": " << kBatchSize << ",\n"
      << "  \"min_idle_seconds\": " << min_idle << ",\n"
      << "  \"min_enabled_seconds\": " << min_enabled << ",\n"
      << "  \"overhead_fraction\": " << overhead << ",\n"
      << "  \"overhead_gate\": " << kOverheadGate << ",\n"
      << "  \"gate_enforced\": " << (gate_enforced ? "true" : "false") << ",\n"
      << "  \"scrape_bytes\": " << scrape.size() << ",\n"
      << "  \"scrape_ok\": " << (scrape_ok ? "true" : "false") << ",\n"
      << "  \"work_sink\": " << sink << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  if (!scrape_ok) {
    std::cerr << "FAIL: live scrape missing required series or malformed\n";
    return 1;
  }
  if (gate_enforced && overhead >= kOverheadGate) {
    std::cerr << "FAIL: instrumentation overhead " << overhead * 100
              << "% exceeds the " << kOverheadGate * 100 << "% bar\n";
    return 1;
  }
  return 0;
}
