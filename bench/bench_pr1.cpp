// PR 1 acceptance benchmark: sharded streaming blocking and the CSR
// inverted-index build versus their seed (reference) implementations, at
// >= 100k-candidate scale. Results go to BENCH_PR1.json (or argv[2]) so the
// speedup claim is reproducible:
//
//   ./bench/bench_pr1 [num_candidates] [output.json]
//
// Both workloads verify old-vs-new equivalence before timing is reported.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "stats/inverted_index.h"
#include "synth/blocking.h"
#include "table/binary_table.h"
#include "table/corpus.h"

namespace ms {
namespace {

constexpr int kRepeats = 3;

template <typename Fn>
double BestOf(Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < kRepeats; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

/// Cheap popularity skew (Rng::Zipf is O(n) per draw — far too slow for
/// millions of cells): ~10% of draws hit a handful of hot values, 30% a
/// warm band, the rest a long uniform tail. This mirrors the value-
/// popularity shape of web tables: a few truncation-triggering hot posting
/// lists over a long thin tail.
ValueId SkewedValue(Rng& rng, uint32_t n) {
  const uint32_t warm = n / 100;
  const double r = rng.UniformDouble();
  if (r < 0.10) return static_cast<ValueId>(rng.Uniform(8));
  if (r < 0.40) return static_cast<ValueId>(8 + rng.Uniform(warm));
  return static_cast<ValueId>(8 + warm + rng.Uniform(n - 8 - warm));
}

/// Candidate tables with skewed (left, right) pairs: a few hot values
/// produce long (truncated) posting lists, the tail produces short ones —
/// the same shape web-extracted binary relations have.
std::vector<BinaryTable> BuildCandidates(size_t n) {
  Rng rng(1234);
  std::vector<BinaryTable> cands;
  cands.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    std::vector<ValuePair> pairs;
    const size_t rows = 6 + rng.Uniform(8);
    pairs.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      const auto left = SkewedValue(rng, 40000);
      const auto right = static_cast<ValueId>(rng.Uniform(5000));
      pairs.push_back({left, right});
    }
    BinaryTable b = BinaryTable::FromPairs(std::move(pairs));
    b.id = static_cast<BinaryTableId>(t);
    cands.push_back(std::move(b));
  }
  return cands;
}

/// Web-shaped corpus for the index build: many narrow tables, Zipf-skewed
/// value popularity, large distinct-value space.
TableCorpus BuildCorpus(size_t n_tables) {
  Rng rng(99);
  TableCorpus corpus;
  for (size_t t = 0; t < n_tables; ++t) {
    std::vector<std::string> cells;
    const size_t rows = 10 + rng.Uniform(15);
    cells.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      cells.push_back("v" + std::to_string(SkewedValue(rng, 400000)));
    }
    corpus.AddFromStrings("d", TableSource::kWeb, {"c"}, {cells});
  }
  return corpus;
}

}  // namespace
}  // namespace ms

int main(int argc, char** argv) {
  using namespace ms;
  const size_t n_candidates =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_PR1.json";

  // ------------------------------------------------------------- blocking
  std::cout << "building " << n_candidates << " candidate tables...\n" << std::flush;
  auto candidates = BuildCandidates(n_candidates);

  BlockingOptions bopts;  // defaults: theta_overlap=2, max_posting=256
  std::cout << "blocking: reference (emit-then-count)...\n" << std::flush;
  std::vector<CandidateTablePair> ref_pairs;
  const double ref_blocking =
      BestOf([&] { ref_pairs = GenerateCandidatePairsReference(candidates, bopts); });
  std::cout << "blocking: sharded streaming...\n" << std::flush;
  std::vector<CandidateTablePair> new_pairs;
  BlockingStats bstats;
  const double new_blocking = BestOf([&] {
    bstats = BlockingStats{};
    new_pairs = GenerateCandidatePairs(candidates, bopts, nullptr, &bstats);
  });

  bool blocking_equal = ref_pairs.size() == new_pairs.size();
  for (size_t i = 0; blocking_equal && i < ref_pairs.size(); ++i) {
    blocking_equal = ref_pairs[i].a == new_pairs[i].a &&
                     ref_pairs[i].b == new_pairs[i].b &&
                     ref_pairs[i].shared_pairs == new_pairs[i].shared_pairs &&
                     ref_pairs[i].shared_lefts == new_pairs[i].shared_lefts;
  }
  const double blocking_speedup = ref_blocking / new_blocking;
  std::cout << "  reference " << ref_blocking << "s, sharded " << new_blocking
            << "s  => " << blocking_speedup << "x, " << new_pairs.size()
            << " pairs, equal=" << blocking_equal << ", dropped postings "
            << bstats.dropped_postings << "\n";

  // ---------------------------------------------------------- index build
  const size_t n_tables = n_candidates / 2;
  std::cout << "building corpus of " << n_tables << " tables...\n" << std::flush;
  TableCorpus corpus = BuildCorpus(n_tables);

  std::cout << "index: reference (vector<vector>)...\n" << std::flush;
  ReferenceInvertedIndex ref_index;
  const double ref_build = BestOf([&] {
    ReferenceInvertedIndex idx;
    idx.Build(corpus);
    ref_index = std::move(idx);
  });
  std::cout << "index: CSR two-pass...\n" << std::flush;
  ColumnInvertedIndex csr_index;
  const double csr_build = BestOf([&] {
    ColumnInvertedIndex idx;
    idx.Build(corpus);
    csr_index = std::move(idx);
  });

  bool index_equal = csr_index.num_columns() == ref_index.num_columns();
  for (ValueId u = 0; index_equal && u < corpus.pool().size(); ++u) {
    index_equal = csr_index.ColumnFrequency(u) == ref_index.ColumnFrequency(u);
  }
  Rng probe(7);
  size_t checked_cooc = 0;
  for (int i = 0; index_equal && i < 2000; ++i) {
    const auto u = static_cast<ValueId>(probe.Uniform(corpus.pool().size()));
    const auto v = SkewedValue(
        probe, static_cast<uint32_t>(corpus.pool().size()));
    index_equal = csr_index.CoOccurrence(u, v) == ref_index.CoOccurrence(u, v);
    ++checked_cooc;
  }
  const double index_speedup = ref_build / csr_build;
  std::cout << "  reference " << ref_build << "s, CSR " << csr_build
            << "s  => " << index_speedup << "x over "
            << csr_index.num_columns() << " columns (" << checked_cooc
            << " co-occurrence probes verified), equal=" << index_equal
            << "\n";

  // ----------------------------------------------------------------- JSON
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"pr\": 1,\n"
      << "  \"bench\": \"bench_pr1 (blocking + inverted-index hot path)\",\n"
      << "  \"repeats\": " << kRepeats << ",\n"
      << "  \"blocking\": {\n"
      << "    \"candidates\": " << candidates.size() << ",\n"
      << "    \"candidate_pairs\": " << new_pairs.size() << ",\n"
      << "    \"blocking_keys\": " << bstats.keys << ",\n"
      << "    \"dropped_postings\": " << bstats.dropped_postings << ",\n"
      << "    \"reference_seconds\": " << ref_blocking << ",\n"
      << "    \"sharded_seconds\": " << new_blocking << ",\n"
      << "    \"speedup\": " << blocking_speedup << ",\n"
      << "    \"equivalent\": " << (blocking_equal ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"index_build\": {\n"
      << "    \"tables\": " << corpus.size() << ",\n"
      << "    \"columns\": " << csr_index.num_columns() << ",\n"
      << "    \"distinct_values\": " << corpus.pool().size() << ",\n"
      << "    \"reference_seconds\": " << ref_build << ",\n"
      << "    \"csr_seconds\": " << csr_build << ",\n"
      << "    \"speedup\": " << index_speedup << ",\n"
      << "    \"equivalent\": " << (index_equal ? "true" : "false") << "\n"
      << "  }\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  // Equivalence is a correctness property: enforce it at every scale. The
  // >=2x speedup bar only means anything at acceptance scale — small runs
  // are fixed-cost dominated — so gate it there and let CI run a quick
  // small-scale equivalence check without "|| true".
  if (!blocking_equal || !index_equal) {
    std::cerr << "FAIL: new implementation diverges from reference\n";
    return 1;
  }
  constexpr size_t kAcceptanceScale = 100000;
  if (n_candidates >= kAcceptanceScale &&
      (blocking_speedup < 2.0 || index_speedup < 2.0)) {
    std::cerr << "FAIL: speedup below 2x at acceptance scale\n";
    return 1;
  }
  return 0;
}
