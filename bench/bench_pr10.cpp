// PR 10 acceptance benchmark: incremental corpus churn with the coherence
// filter ACTIVE. A serving fleet does not only grow — tables get retracted
// (takedowns, crawler de-listings) and re-crawled (replacements). This
// bench drives all three mutations through one warm SynthesisSession:
//
//   phase 1  append  the last 10% of the corpus   (AppendTables)
//   phase 2  remove  10% of the surviving tables  (RemoveTables)
//   phase 3  replace 10% with re-crawled variants (ReplaceTables)
//
// and times each against what a fleet pays today: a cold full-pipeline run
// over the same post-mutation corpus. Unlike bench_pr5 (which disables the
// coherence filter to isolate the delta path), every phase here runs with a
// positive coherence threshold, so the corpus-global re-check sweep is part
// of every measured mutation — the margin cache (CoherenceProfile +
// CoherenceVerdictStable) is exactly what keeps that sweep from touching
// the inverted index for stable columns, and the JSON reports how many
// columns it proved stable (margin_skips) vs re-evaluated (margin_rechecks).
//
// Results go to BENCH_PR10.json (or argv[2]):
//
//   ./bench/bench_pr10 [num_tables] [output.json]
//
// Correctness gates run at every scale:
//   1. every phase's mappings must be string-identical to a cold full run
//      over the post-mutation corpus (zero divergence, three times over);
//   2. a removed-then-cold-rebuilt corpus must see the tombstoned tables
//      contribute nothing (checked implicitly by gate 1: the cold oracle
//      runs over the mutated corpus itself).
// Speedup bars are enforced at acceptance scale (100k+ candidates) only:
// append >= 5x cold, remove >= 3x, replace >= 3x.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "synth/session.h"
#include "table/corpus.h"

namespace ms {
namespace {

/// Consecutive tables sharing one vocabulary shard. Real corpora have value
/// locality — a crawler ingests (and de-lists) whole sites whose tables
/// talk about the same entities. Locality is what makes the margin cache
/// meaningful: a mutation only changes value counts inside the shards it
/// touches, so every other shard's columns satisfy the fixed-counts
/// precondition and can be ruled stable from their cached profiles alone.
/// A corpus-wide flat vocabulary (bench_pr5's shape) defeats the cache by
/// construction: every append bumps warm values everywhere.
constexpr size_t kShards = 64;
/// Set in main() to n_tables / kShards so the id space walks the shards
/// once: any contiguous 10% span of ids (the append tail, a takedown span,
/// a re-crawl span) touches ~7 of the 64 shards.
size_t g_shard_block = 256;

/// Web-shaped vocabulary (same generator as bench_pr2..pr5): multi-word
/// entity names with typo'd variants, short codes, a sprinkle of > 64-byte
/// strings for the blocked kernel. Sliced into kShards disjoint shards.
struct Vocab {
  std::vector<std::string> lefts;
  std::vector<std::string> rights;

  Vocab(size_t n_lefts, size_t n_rights, Rng& rng) {
    const char* first[] = {"united", "republic", "southern", "new", "grand",
                           "upper", "saint", "north", "royal", "east"};
    const char* second[] = {"province", "island", "territory", "state",
                            "district", "region", "county", "kingdom",
                            "federation", "commonwealth"};
    for (size_t i = 0; i < n_lefts; ++i) {
      std::string s = std::string(first[rng.Uniform(10)]) + " " +
                      second[rng.Uniform(10)] + " " + std::to_string(i / 7);
      switch (rng.Uniform(8)) {
        case 0:
          s[rng.Uniform(s.size())] = static_cast<char>('a' + rng.Uniform(26));
          break;
        case 1:
          s += static_cast<char>('a' + rng.Uniform(26));
          break;
        case 2:
          s += " of the greater unified historical administrative division";
          break;
        default:
          break;
      }
      lefts.push_back(std::move(s));
    }
    for (size_t i = 0; i < n_rights; ++i) {
      rights.push_back("c" + std::to_string(i));
    }
  }
};

/// Appends `count` tables to `corpus`, continuing `rng`'s stream. Table id
/// selects the vocabulary shard ((id / g_shard_block) % kShards), so
/// blocks of consecutive tables draw values from the same disjoint slice —
/// the locality the margin cache exploits.
void GrowCorpus(TableCorpus* corpus, size_t count, const Vocab& vocab,
                Rng& rng) {
  const uint32_t shard_l =
      static_cast<uint32_t>(vocab.lefts.size() / kShards);
  const uint32_t shard_r =
      static_cast<uint32_t>(vocab.rights.size() / kShards);
  auto skewed = [&](uint32_t space) -> uint32_t {
    const double r = rng.UniformDouble();
    if (r < 0.10) return static_cast<uint32_t>(rng.Uniform(8));
    const uint32_t warm = space / 100 + 1;
    if (r < 0.40) return 8 + static_cast<uint32_t>(rng.Uniform(warm));
    return 8 + warm + static_cast<uint32_t>(rng.Uniform(space - 8 - warm));
  };
  std::vector<std::string> left_col, right_col;
  std::set<uint32_t> seen;
  for (size_t t = 0; t < count; ++t) {
    const size_t id = corpus->size();
    const uint32_t shard =
        static_cast<uint32_t>((id / g_shard_block) % kShards);
    left_col.clear();
    right_col.clear();
    seen.clear();
    const size_t rows = 6 + rng.Uniform(8);
    while (left_col.size() < rows) {
      const uint32_t li = skewed(shard_l);
      if (!seen.insert(li).second) continue;
      left_col.push_back(vocab.lefts[shard * shard_l + li]);
      right_col.push_back(vocab.rights[shard * shard_r + skewed(shard_r)]);
    }
    right_col[1] = right_col[0];
    corpus->AddFromStrings("domain" + std::to_string(id % 64) + ".example",
                           TableSource::kWeb, {"name", "code"},
                           {left_col, right_col});
  }
}

/// Pool-independent, order-independent canonical multiset of mappings.
std::multiset<std::string> Canonical(const SynthesisResult& r,
                                     const StringPool& pool) {
  std::multiset<std::string> out;
  for (const auto& m : r.mappings) {
    std::multiset<std::string> pairs;
    for (const auto& p : m.merged.pairs()) {
      pairs.insert(std::string(pool.Get(p.left)) + ":" +
                   std::string(pool.Get(p.right)));
    }
    std::string key = std::to_string(m.kept_tables.size()) + "|";
    for (const auto& p : pairs) key += p + ",";
    out.insert(std::move(key));
  }
  return out;
}

SynthesisOptions BenchOptions() {
  SynthesisOptions o;
  o.min_domains = 1;
  o.min_pairs = 1;
  // Coherence ON — the point of this bench. Shard-local vocabularies make
  // every name/code column strongly coherent, so scores sit well above
  // this threshold and verdicts are kept everywhere; the corpus-global
  // re-check sweep still runs inside every measured phase, and the margin
  // cache is what keeps it off the inverted index. A threshold inside the
  // score distribution would flip verdicts on every mutation and measure
  // the full-rebuild fallback instead (that regime is locked down by
  // tests/incremental_test.cc).
  o.extraction.coherence_threshold = 0.05;
  return o;
}

struct Family {
  CandidateSet candidates;
  BlockedPairs blocked;
  ScoredGraph scored;
  Partitions partitions;
  SynthesisResult result;
};

bool ColdChain(SynthesisSession* session, const TableCorpus& corpus,
               Family* f) {
  auto c = session->ExtractCandidates(corpus);
  if (!c.ok()) return false;
  f->candidates = std::move(c).value();
  auto b = session->BlockPairs(f->candidates);
  if (!b.ok()) return false;
  f->blocked = std::move(b).value();
  auto g = session->ScorePairs(f->candidates, f->blocked);
  if (!g.ok()) return false;
  f->scored = std::move(g).value();
  auto p = session->Partition(f->scored);
  if (!p.ok()) return false;
  f->partitions = std::move(p).value();
  auto r = session->Resolve(f->candidates, f->scored, f->partitions);
  if (!r.ok()) return false;
  f->result = std::move(r).value();
  return true;
}

void Adopt(Family* f, AppendedArtifacts&& a) {
  f->candidates = std::move(a.candidates);
  f->blocked = std::move(a.blocked);
  f->scored = std::move(a.scored);
  f->partitions = std::move(a.partitions);
  f->result = std::move(a.result);
}

/// Cold full-pipeline run over `corpus` exactly as a fleet would pay for it
/// today. Tombstoned shells contribute zero columns, so this is the oracle
/// for every phase: the mutated corpus IS the surviving corpus.
bool ColdOracle(const TableCorpus& corpus, double* seconds,
                std::multiset<std::string>* canonical) {
  Timer t;
  SynthesisSession session(BenchOptions());
  auto res = session.Run(corpus);
  if (!res.ok()) {
    std::cerr << "FAIL: cold oracle run error: " << res.status().ToString()
              << "\n";
    return false;
  }
  *seconds = t.ElapsedSeconds();
  *canonical = Canonical(res.value(), corpus.pool());
  return true;
}

}  // namespace
}  // namespace ms

int main(int argc, char** argv) {
  using namespace ms;
  const size_t n_tables =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 118000;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_PR10.json";
  const size_t n_delta = n_tables / 10;
  const size_t n_base = n_tables - n_delta;

  g_shard_block = n_tables / kShards > 0 ? n_tables / kShards : 1;

  Rng vocab_rng(4321);
  std::cout << "building vocabulary + corpus of " << n_tables
            << " two-column tables (" << n_base << " base + " << n_delta
            << " appended)...\n"
            << std::flush;
  Vocab vocab(30000, 4000, vocab_rng);

  Rng inc_rng = vocab_rng;
  TableCorpus corpus;
  GrowCorpus(&corpus, n_base, vocab, inc_rng);

  // Warm base chain over the 90% prefix.
  std::cout << "base: staged chain over the " << n_base
            << "-table prefix (coherence ON)...\n"
            << std::flush;
  SynthesisSession session(BenchOptions());
  Family fam;
  if (!ColdChain(&session, corpus, &fam)) {
    std::cerr << "FAIL: base chain error\n";
    return 1;
  }

  // ------------------------------------------------------ phase 1: append
  std::cout << "phase 1: append " << n_delta << " tables...\n" << std::flush;
  GrowCorpus(&corpus, n_delta, vocab, inc_rng);
  AppendStats append_info;
  double append_s;
  {
    Timer t;
    auto grown = session.AppendTables(corpus, n_base, fam.candidates,
                                      fam.blocked, fam.scored, fam.partitions,
                                      fam.result);
    if (!grown.ok()) {
      std::cerr << "FAIL: AppendTables: " << grown.status().ToString() << "\n";
      return 1;
    }
    append_s = t.ElapsedSeconds();
    append_info = grown.value().append;
    Adopt(&fam, std::move(grown).value());
  }
  double cold_append_s;
  std::multiset<std::string> cold_canonical;
  if (!ColdOracle(corpus, &cold_append_s, &cold_canonical)) return 1;
  const size_t append_divergence =
      Canonical(fam.result, corpus.pool()) == cold_canonical ? 0 : 1;
  const double append_speedup = cold_append_s / append_s;
  std::cout << "  append " << append_s << "s vs cold " << cold_append_s
            << "s => " << append_speedup << "x, divergence "
            << append_divergence << ", margin skips "
            << append_info.margin_skips << " / rechecks "
            << append_info.margin_rechecks << ", fast path "
            << (append_info.full_rebuild ? "NO (fallback)" : "yes") << "\n";

  // ------------------------------------------------------ phase 2: remove
  // Retract a contiguous 10% span — takedowns arrive site-clustered, and
  // the span's value locality is what lets the margin cache rule the other
  // shards' columns stable without touching the index.
  std::vector<uint32_t> removed;
  const size_t remove_begin = g_shard_block * 10;
  for (size_t id = remove_begin;
       id < corpus.size() && removed.size() < n_tables / 10; ++id) {
    removed.push_back(static_cast<uint32_t>(id));
  }
  std::cout << "phase 2: remove " << removed.size() << " tables...\n"
            << std::flush;
  AppendStats remove_info;
  double remove_s;
  {
    Timer t;
    auto shrunk =
        session.RemoveTables(&corpus, removed, fam.candidates, fam.blocked,
                             fam.scored, fam.partitions, fam.result);
    if (!shrunk.ok()) {
      std::cerr << "FAIL: RemoveTables: " << shrunk.status().ToString()
                << "\n";
      return 1;
    }
    remove_s = t.ElapsedSeconds();
    remove_info = shrunk.value().append;
    Adopt(&fam, std::move(shrunk).value());
  }
  double cold_remove_s;
  if (!ColdOracle(corpus, &cold_remove_s, &cold_canonical)) return 1;
  const size_t remove_divergence =
      Canonical(fam.result, corpus.pool()) == cold_canonical ? 0 : 1;
  const double remove_speedup = cold_remove_s / remove_s;
  std::cout << "  remove " << remove_s << "s vs cold " << cold_remove_s
            << "s => " << remove_speedup << "x, divergence "
            << remove_divergence << ", margin skips "
            << remove_info.margin_skips << " / rechecks "
            << remove_info.margin_rechecks << "\n";

  // ----------------------------------------------------- phase 3: replace
  // Re-crawl another contiguous 10%: fresh variants replace a disjoint
  // span of surviving tables in one atomic mutation.
  std::vector<uint32_t> replaced;
  const size_t replace_begin = g_shard_block * 30;
  for (size_t id = replace_begin;
       id < corpus.size() && replaced.size() < n_tables / 10; ++id) {
    replaced.push_back(static_cast<uint32_t>(id));
  }
  TableCorpus delta;
  GrowCorpus(&delta, replaced.size(), vocab, inc_rng);
  std::cout << "phase 3: replace " << replaced.size() << " tables...\n"
            << std::flush;
  AppendStats replace_info;
  double replace_s;
  {
    Timer t;
    auto churned = session.ReplaceTables(&corpus, replaced, delta,
                                         fam.candidates, fam.blocked,
                                         fam.scored, fam.partitions,
                                         fam.result);
    if (!churned.ok()) {
      std::cerr << "FAIL: ReplaceTables: " << churned.status().ToString()
                << "\n";
      return 1;
    }
    replace_s = t.ElapsedSeconds();
    replace_info = churned.value().append;
    Adopt(&fam, std::move(churned).value());
  }
  double cold_replace_s;
  if (!ColdOracle(corpus, &cold_replace_s, &cold_canonical)) return 1;
  const size_t replace_divergence =
      Canonical(fam.result, corpus.pool()) == cold_canonical ? 0 : 1;
  const double replace_speedup = cold_replace_s / replace_s;
  std::cout << "  replace " << replace_s << "s vs cold " << cold_replace_s
            << "s => " << replace_speedup << "x, divergence "
            << replace_divergence << ", margin skips "
            << replace_info.margin_skips << " / rechecks "
            << replace_info.margin_rechecks << "\n";

  const size_t candidates = fam.candidates.num_live();

  // ----------------------------------------------------------------- JSON
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"pr\": 10,\n"
      << "  \"bench\": \"bench_pr10 (incremental churn with coherence ON: "
         "10% append / remove / replace vs cold full runs)\",\n"
      << "  \"corpus_tables\": " << n_tables << ",\n"
      << "  \"coherence_threshold\": 0.05,\n"
      << "  \"live_candidates\": " << candidates << ",\n"
      << "  \"append_seconds\": " << append_s << ",\n"
      << "  \"append_cold_seconds\": " << cold_append_s << ",\n"
      << "  \"append_speedup\": " << append_speedup << ",\n"
      << "  \"append_divergence\": " << append_divergence << ",\n"
      << "  \"append_margin_skips\": " << append_info.margin_skips << ",\n"
      << "  \"append_margin_rechecks\": " << append_info.margin_rechecks
      << ",\n"
      << "  \"append_unstable_tables\": " << append_info.unstable_tables
      << ",\n"
      << "  \"append_full_rebuild\": "
      << (append_info.full_rebuild ? "true" : "false") << ",\n"
      << "  \"removed_tables\": " << removed.size() << ",\n"
      << "  \"remove_seconds\": " << remove_s << ",\n"
      << "  \"remove_cold_seconds\": " << cold_remove_s << ",\n"
      << "  \"remove_speedup\": " << remove_speedup << ",\n"
      << "  \"remove_divergence\": " << remove_divergence << ",\n"
      << "  \"remove_margin_skips\": " << remove_info.margin_skips << ",\n"
      << "  \"remove_margin_rechecks\": " << remove_info.margin_rechecks
      << ",\n"
      << "  \"replaced_tables\": " << replaced.size() << ",\n"
      << "  \"replace_seconds\": " << replace_s << ",\n"
      << "  \"replace_cold_seconds\": " << cold_replace_s << ",\n"
      << "  \"replace_speedup\": " << replace_speedup << ",\n"
      << "  \"replace_divergence\": " << replace_divergence << ",\n"
      << "  \"replace_margin_skips\": " << replace_info.margin_skips << ",\n"
      << "  \"replace_margin_rechecks\": " << replace_info.margin_rechecks
      << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  // Zero divergence holds at every scale; the speedup bars only mean
  // anything at acceptance scale (small runs are fixed-cost dominated).
  if (append_divergence + remove_divergence + replace_divergence != 0) {
    std::cerr << "FAIL: a mutation diverged from its cold-rebuild oracle\n";
    return 1;
  }
  constexpr size_t kAcceptanceScale = 100000;
  if (n_tables >= kAcceptanceScale && candidates < kAcceptanceScale) {
    std::cerr << "FAIL: corpus yielded only " << candidates
              << " live candidates at acceptance scale\n";
    return 1;
  }
  if (n_tables >= kAcceptanceScale && append_info.full_rebuild) {
    std::cerr << "FAIL: append fell back to a full rebuild at acceptance "
                 "scale — the delta fast path was not measured\n";
    return 1;
  }
  if (n_tables >= kAcceptanceScale && append_speedup < 5.0) {
    std::cerr << "FAIL: append speedup " << append_speedup
              << "x below the 5x acceptance bar (coherence ON)\n";
    return 1;
  }
  if (n_tables >= kAcceptanceScale && remove_speedup < 3.0) {
    std::cerr << "FAIL: remove speedup " << remove_speedup
              << "x below the 3x acceptance bar\n";
    return 1;
  }
  if (n_tables >= kAcceptanceScale && replace_speedup < 3.0) {
    std::cerr << "FAIL: replace speedup " << replace_speedup
              << "x below the 3x acceptance bar\n";
    return 1;
  }
  return 0;
}
