// PR 2 acceptance benchmark: the pair-scoring stage (the pipeline's
// dominant cost) with the bit-parallel Myers fast path — batched pattern
// masks + blocking-count reuse — versus the seed scalar banded-DP scorer,
// at >= 100k-candidate scale. Results go to BENCH_PR2.json (or argv[2]):
//
//   ./bench/bench_pr2 [num_candidates] [output.json]
//
// Two correctness gates run before any speedup is reported and fail the
// binary at every scale:
//   1. every scored pair must produce byte-identical PairScores in both
//      modes (the fast path may never diverge from the scalar oracle), and
//   2. a randomized sweep of vocabulary string pairs must show the Myers
//      kernels agreeing exactly with the O(nm) EditDistanceFull oracle.
// The >= 2x speedup bar is enforced at acceptance scale (100k candidates).
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "synth/blocking.h"
#include "synth/compatibility.h"
#include "table/binary_table.h"
#include "table/string_pool.h"
#include "text/edit_distance.h"
#include "text/myers.h"

namespace ms {
namespace {

constexpr int kRepeats = 3;

template <typename Fn>
double BestOf(Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < kRepeats; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

/// Web-shaped string vocabulary: multi-word entity names with typo'd
/// variants (what approximate matching exists for), short codes that must
/// stay exact, and a sprinkle of > 64-byte strings for the blocked kernel.
struct Vocab {
  std::shared_ptr<StringPool> pool = std::make_shared<StringPool>();
  std::vector<ValueId> lefts;
  std::vector<ValueId> rights;
  std::vector<std::string> strings;  // for the edit-distance oracle sweep

  Vocab(size_t n_lefts, size_t n_rights, Rng& rng) {
    const char* first[] = {"united", "republic", "southern", "new", "grand",
                           "upper", "saint", "north", "royal", "east"};
    const char* second[] = {"province", "island", "territory", "state",
                            "district", "region", "county", "kingdom",
                            "federation", "commonwealth"};
    for (size_t i = 0; i < n_lefts; ++i) {
      std::string s = std::string(first[rng.Uniform(10)]) + " " +
                      second[rng.Uniform(10)] + " " +
                      std::to_string(i / 7);
      switch (rng.Uniform(8)) {
        case 0:  // typo variant: substitution
          s[rng.Uniform(s.size())] = static_cast<char>('a' + rng.Uniform(26));
          break;
        case 1:  // typo variant: trailing insertion
          s += static_cast<char>('a' + rng.Uniform(26));
          break;
        case 2:  // long form (> 64 bytes, blocked kernel)
          s += " of the greater unified historical administrative division";
          break;
        default:
          break;
      }
      lefts.push_back(pool->Intern(s));
      strings.push_back(std::move(s));
    }
    for (size_t i = 0; i < n_rights; ++i) {
      std::string s = "c" + std::to_string(i);
      rights.push_back(pool->Intern(s));
      strings.push_back(std::move(s));
    }
  }
};

/// Candidate tables sampling the vocabulary with popularity skew, the same
/// shape bench_pr1 uses for blocking — a few hot values, a long thin tail.
std::vector<BinaryTable> BuildCandidates(size_t n, const Vocab& vocab,
                                         Rng& rng) {
  const uint32_t nl = static_cast<uint32_t>(vocab.lefts.size());
  const uint32_t nr = static_cast<uint32_t>(vocab.rights.size());
  auto skewed = [&](uint32_t space) -> uint32_t {
    const double r = rng.UniformDouble();
    if (r < 0.10) return static_cast<uint32_t>(rng.Uniform(8));
    const uint32_t warm = space / 100 + 1;
    if (r < 0.40) return 8 + static_cast<uint32_t>(rng.Uniform(warm));
    return 8 + warm + static_cast<uint32_t>(rng.Uniform(space - 8 - warm));
  };
  std::vector<BinaryTable> cands;
  cands.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    std::vector<ValuePair> pairs;
    const size_t rows = 6 + rng.Uniform(8);
    pairs.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      pairs.push_back({vocab.lefts[skewed(nl)], vocab.rights[skewed(nr)]});
    }
    BinaryTable b = BinaryTable::FromPairs(std::move(pairs));
    b.id = static_cast<BinaryTableId>(t);
    cands.push_back(std::move(b));
  }
  return cands;
}

bool SameScores(const PairScores& x, const PairScores& y) {
  return x.overlap == y.overlap && x.conflicts == y.conflicts &&
         x.w_pos == y.w_pos && x.w_neg == y.w_neg;
}

}  // namespace
}  // namespace ms

int main(int argc, char** argv) {
  using namespace ms;
  const size_t n_candidates =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_PR2.json";

  Rng rng(4321);
  std::cout << "building vocabulary + " << n_candidates
            << " candidate tables...\n"
            << std::flush;
  Vocab vocab(30000, 4000, rng);
  auto candidates = BuildCandidates(n_candidates, vocab, rng);

  std::cout << "blocking...\n" << std::flush;
  BlockingOptions bopts;
  BlockingStats bstats;
  auto pairs = GenerateCandidatePairs(candidates, bopts, nullptr, &bstats);
  std::cout << "  " << pairs.size() << " candidate pairs to score ("
            << bstats.dropped_postings << " postings dropped, exact_counts="
            << bstats.exact_counts << ")\n";

  const StringPool& pool = *vocab.pool;

  // ---------------------------------------------------------- scalar oracle
  CompatibilityOptions scalar_opts;
  scalar_opts.edit.use_bit_parallel = false;
  scalar_opts.reuse_blocking_counts = false;

  std::cout << "pair scoring: seed scalar (banded DP, per-pair ValuesMatch)"
            << "...\n"
            << std::flush;
  std::vector<PairScores> ref_scores(pairs.size());
  const double scalar_s = BestOf([&] {
    for (size_t i = 0; i < pairs.size(); ++i) {
      ref_scores[i] = ComputeCompatibilityReference(
          candidates[pairs[i].a], candidates[pairs[i].b], pool, scalar_opts);
    }
  });

  // ------------------------------------------------------------- fast path
  // The pipeline's chunked loop: one BatchApproxMatcher per chunk so mask
  // builds amortize, blocking hints threaded through.
  CompatibilityOptions fast_opts;  // defaults: Myers on, reuse on
  std::vector<PairScores> fast_scores(pairs.size());
  ScoringStats sstats;
  const double fast_s = BestOf([&] {
    sstats = ScoringStats{};
    constexpr size_t kChunk = 256;
    for (size_t begin = 0; begin < pairs.size(); begin += kChunk) {
      const size_t end = std::min(begin + kChunk, pairs.size());
      BatchApproxMatcher matcher(pool, fast_opts.edit,
                                 fast_opts.approximate_matching,
                                 fast_opts.synonyms);
      for (size_t i = begin; i < end; ++i) {
        const BlockingHint hint{pairs[i].shared_pairs, pairs[i].shared_lefts,
                                bstats.exact_counts};
        fast_scores[i] = ComputeCompatibility(candidates[pairs[i].a],
                                              candidates[pairs[i].b], pool,
                                              fast_opts, &matcher, &hint,
                                              &sstats);
      }
      sstats.matcher.Add(matcher.stats());
    }
  });

  // ------------------------------------------------- divergence gates
  size_t score_divergence = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (!SameScores(ref_scores[i], fast_scores[i])) ++score_divergence;
  }

  std::cout << "oracle sweep: Myers vs EditDistanceFull on vocabulary pairs"
            << "...\n"
            << std::flush;
  size_t oracle_divergence = 0;
  constexpr size_t kOracleSamples = 20000;
  Rng probe(7);
  for (size_t i = 0; i < kOracleSamples; ++i) {
    const std::string& a = probe.Pick(vocab.strings);
    const std::string& b = probe.Pick(vocab.strings);
    const size_t truth = EditDistanceFull(a, b);
    if (MyersBlocked(a, b) != truth) ++oracle_divergence;
    if (a.size() <= 64 && Myers64(a, b) != truth) ++oracle_divergence;
  }

  const double speedup = scalar_s / fast_s;
  const auto& m = sstats.matcher;
  std::cout << "  scalar " << scalar_s << "s, fast " << fast_s << "s  => "
            << speedup << "x over " << pairs.size() << " pairs\n"
            << "  score divergence " << score_divergence
            << ", oracle divergence " << oracle_divergence << " / "
            << kOracleSamples << " samples\n"
            << "  kernels: " << m.myers64_calls << " myers64, "
            << m.myers_blocked_calls << " blocked, " << m.banded_calls
            << " banded; mask cache " << m.pattern_cache_hits << " hits / "
            << m.pattern_cache_misses << " builds; reuse skipped "
            << sstats.overlap_merges_skipped << " merges\n";

  // ----------------------------------------------------------------- JSON
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"pr\": 2,\n"
      << "  \"bench\": \"bench_pr2 (bit-parallel Myers pair scoring)\",\n"
      << "  \"repeats\": " << kRepeats << ",\n"
      << "  \"pair_scoring\": {\n"
      << "    \"candidates\": " << candidates.size() << ",\n"
      << "    \"pairs_scored\": " << pairs.size() << ",\n"
      << "    \"scalar_seconds\": " << scalar_s << ",\n"
      << "    \"fast_seconds\": " << fast_s << ",\n"
      << "    \"speedup\": " << speedup << ",\n"
      << "    \"score_divergence\": " << score_divergence << ",\n"
      << "    \"myers64_calls\": " << m.myers64_calls << ",\n"
      << "    \"myers_blocked_calls\": " << m.myers_blocked_calls << ",\n"
      << "    \"banded_fallback_calls\": " << m.banded_calls << ",\n"
      << "    \"mask_cache_hits\": " << m.pattern_cache_hits << ",\n"
      << "    \"mask_cache_builds\": " << m.pattern_cache_misses << ",\n"
      << "    \"charmask_rejects\": " << m.charmask_rejects << ",\n"
      << "    \"overlap_merges_skipped\": " << sstats.overlap_merges_skipped
      << "\n"
      << "  },\n"
      << "  \"oracle_sweep\": {\n"
      << "    \"samples\": " << kOracleSamples << ",\n"
      << "    \"divergence\": " << oracle_divergence << "\n"
      << "  }\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  // Correctness gates hold at every scale; the speedup bar only means
  // anything at acceptance scale (small runs are fixed-cost dominated).
  if (score_divergence != 0 || oracle_divergence != 0) {
    std::cerr << "FAIL: fast path diverges from the scalar/full oracle\n";
    return 1;
  }
  constexpr size_t kAcceptanceScale = 100000;
  if (n_candidates >= kAcceptanceScale && speedup < 2.0) {
    std::cerr << "FAIL: pair-scoring speedup below 2x at acceptance scale\n";
    return 1;
  }
  return 0;
}
