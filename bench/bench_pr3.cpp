// PR 3 acceptance benchmark: the staged SynthesisSession API's warm-state
// reuse. A serving deployment repeatedly re-synthesizes with tweaked
// scoring thresholds (CompatibilityOptions); the staged API re-runs scoring
// onward over the materialized CandidateSet + BlockedPairs artifacts with
// warm per-worker matcher caches, while the monolithic path re-pays the
// full pipeline — index build, extraction, blocking, cold scoring — on
// every call. Results go to BENCH_PR3.json (or argv[2]):
//
//   ./bench/bench_pr3 [num_tables] [output.json]
//
// Correctness gates run before any speedup is reported and fail the binary
// at every scale:
//   1. the warm re-scored result must be byte-identical (member counts +
//      exact pair lists) to a cold monolithic run under the same options,
//   2. malformed options must be rejected with InvalidArgument by the
//      session instead of running.
// The >= 3x warm-over-cold bar is enforced at acceptance scale (100k).
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "synth/session.h"
#include "table/corpus.h"

namespace ms {
namespace {

constexpr int kRepeats = 3;

/// Web-shaped vocabulary (same shape as bench_pr2): multi-word entity names
/// with typo'd variants, short codes, a sprinkle of > 64-byte strings for
/// the blocked kernel.
struct Vocab {
  std::vector<std::string> lefts;
  std::vector<std::string> rights;

  Vocab(size_t n_lefts, size_t n_rights, Rng& rng) {
    const char* first[] = {"united", "republic", "southern", "new", "grand",
                           "upper", "saint", "north", "royal", "east"};
    const char* second[] = {"province", "island", "territory", "state",
                            "district", "region", "county", "kingdom",
                            "federation", "commonwealth"};
    for (size_t i = 0; i < n_lefts; ++i) {
      std::string s = std::string(first[rng.Uniform(10)]) + " " +
                      second[rng.Uniform(10)] + " " +
                      std::to_string(i / 7);
      switch (rng.Uniform(8)) {
        case 0:
          s[rng.Uniform(s.size())] = static_cast<char>('a' + rng.Uniform(26));
          break;
        case 1:
          s += static_cast<char>('a' + rng.Uniform(26));
          break;
        case 2:
          s += " of the greater unified historical administrative division";
          break;
        default:
          break;
      }
      lefts.push_back(std::move(s));
    }
    for (size_t i = 0; i < n_rights; ++i) {
      rights.push_back("c" + std::to_string(i));
    }
  }
};

/// A corpus of n two-column tables sampling the vocabulary with popularity
/// skew (a few hot values, a long thin tail) — the raw-table form of the
/// candidate sets bench_pr1/pr2 use, so extraction does real work in the
/// cold path.
TableCorpus BuildCorpus(size_t n, const Vocab& vocab, Rng& rng) {
  const uint32_t nl = static_cast<uint32_t>(vocab.lefts.size());
  const uint32_t nr = static_cast<uint32_t>(vocab.rights.size());
  auto skewed = [&](uint32_t space) -> uint32_t {
    const double r = rng.UniformDouble();
    if (r < 0.10) return static_cast<uint32_t>(rng.Uniform(8));
    const uint32_t warm = space / 100 + 1;
    if (r < 0.40) return 8 + static_cast<uint32_t>(rng.Uniform(warm));
    return 8 + warm + static_cast<uint32_t>(rng.Uniform(space - 8 - warm));
  };
  TableCorpus corpus;
  std::vector<std::string> left_col, right_col;
  std::set<uint32_t> seen;
  for (size_t t = 0; t < n; ++t) {
    left_col.clear();
    right_col.clear();
    seen.clear();
    const size_t rows = 6 + rng.Uniform(8);
    while (left_col.size() < rows) {
      // Distinct lefts per table so the θ-approximate FD check passes and
      // the left -> right direction survives extraction.
      const uint32_t li = skewed(nl);
      if (!seen.insert(li).second) continue;
      left_col.push_back(vocab.lefts[li]);
      right_col.push_back(vocab.rights[skewed(nr)]);
    }
    // Two lefts sharing one right makes the reverse (code -> name)
    // direction violate the FD check, so extraction yields exactly one
    // candidate per table — keeping candidate count == table count.
    right_col[1] = right_col[0];
    corpus.AddFromStrings("domain" + std::to_string(t % 64) + ".example",
                          TableSource::kWeb, {"name", "code"},
                          {left_col, right_col});
  }
  return corpus;
}

/// Canonical multiset of mappings: order-independent exact comparison.
std::multiset<std::string> Canonical(const SynthesisResult& r) {
  std::multiset<std::string> out;
  for (const auto& m : r.mappings) {
    std::string key = std::to_string(m.kept_tables.size()) + "|";
    for (const auto& p : m.merged.pairs()) {
      key += std::to_string(p.left) + ":" + std::to_string(p.right) + ",";
    }
    out.insert(std::move(key));
  }
  return out;
}

SynthesisOptions BenchOptions(size_t edit_cap) {
  SynthesisOptions o;
  o.min_domains = 1;
  o.min_pairs = 1;
  o.compat.edit.cap = edit_cap;
  return o;
}

}  // namespace
}  // namespace ms

int main(int argc, char** argv) {
  using namespace ms;
  // ~14% of tables are filtered by extraction (coherence/minimum-pairs), so
  // the default corpus yields >= 100k candidate tables at acceptance scale.
  const size_t n_tables =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 118000;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_PR3.json";

  Rng rng(4321);
  std::cout << "building vocabulary + corpus of " << n_tables
            << " two-column tables...\n"
            << std::flush;
  Vocab vocab(30000, 4000, rng);
  TableCorpus corpus = BuildCorpus(n_tables, vocab, rng);

  // ------------------------------------------------- validation gate
  {
    SynthesisOptions bad = BenchOptions(10);
    bad.min_pairs = 0;
    if (SynthesisSession(bad).status().code() !=
        StatusCode::kInvalidArgument) {
      std::cerr << "FAIL: min_pairs == 0 was not rejected\n";
      return 1;
    }
    bad = BenchOptions(10);
    bad.compat.edit.fractional = -1.0;
    if (SynthesisSession(bad).status().code() !=
        StatusCode::kInvalidArgument) {
      std::cerr << "FAIL: negative f_ed was not rejected\n";
      return 1;
    }
  }

  // The serving scenario: a curator sweeps the approximate-matching cap.
  // Both paths execute cap=10 then cap=8, so the work compared per repeat
  // is an identical pair of configurations.
  const std::vector<size_t> cap_sweep = {10, 8};

  // ------------------------------------------------- cold monolithic runs
  // What callers paid before the staged API: every re-synthesis rebuilds
  // the session and re-runs the full chain — index, extraction, blocking,
  // cold scoring — even though only scoring options changed.
  std::cout << "cold: monolithic full run per option change...\n"
            << std::flush;
  // Two repeats suffice for the cold side: each repeat runs the full
  // pipeline twice at ~70s per run at acceptance scale, and the comparison
  // takes the best, so scheduler noise only ever understates the speedup.
  constexpr int kColdRepeats = 2;
  std::map<size_t, std::multiset<std::string>> cold_canonical;
  PipelineStats cold_stats;
  double cold_s = 1e100;
  for (int r = 0; r < kColdRepeats; ++r) {
    Timer t;
    for (size_t cap : cap_sweep) {
      SynthesisSession session(BenchOptions(cap));
      auto res = session.Run(corpus);
      if (!res.ok()) {
        std::cerr << "FAIL: cold run error: " << res.status().ToString()
                  << "\n";
        return 1;
      }
      cold_canonical[cap] = Canonical(res.value());
      cold_stats = res.value().stats;
    }
    cold_s = std::min(cold_s, t.ElapsedSeconds());
  }

  // ------------------------------------------------- warm staged re-score
  // One session; extraction + blocking run once, their artifacts are
  // materialized, and each option change re-runs scoring onward with warm
  // per-worker matcher caches.
  std::cout << "warm: staged re-score per option change on one session...\n"
            << std::flush;
  SynthesisSession session(BenchOptions(10));
  auto cands = session.ExtractCandidates(corpus);
  if (!cands.ok()) {
    std::cerr << "FAIL: " << cands.status().ToString() << "\n";
    return 1;
  }
  auto blocked = session.BlockPairs(cands.value());
  if (!blocked.ok()) {
    std::cerr << "FAIL: " << blocked.status().ToString() << "\n";
    return 1;
  }
  std::map<size_t, std::multiset<std::string>> warm_canonical;
  PipelineStats warm_stats;
  double warm_s = 1e100;
  for (int r = 0; r < kRepeats; ++r) {
    Timer t;
    for (size_t cap : cap_sweep) {
      if (!session.UpdateOptions(BenchOptions(cap)).ok()) std::abort();
      auto res = session.FinishFromBlocked(cands.value(), blocked.value());
      if (!res.ok()) {
        std::cerr << "FAIL: warm run error: " << res.status().ToString()
                  << "\n";
        return 1;
      }
      warm_canonical[cap] = Canonical(res.value());
      warm_stats = res.value().stats;
    }
    warm_s = std::min(warm_s, t.ElapsedSeconds());
  }

  // ------------------------------------------------- equivalence gate
  size_t divergence = 0;
  for (size_t cap : cap_sweep) {
    if (cold_canonical[cap] != warm_canonical[cap]) ++divergence;
  }

  const double speedup = cold_s / warm_s;
  const auto& ss = session.session_stats();
  std::cout << "  cold " << cold_s << "s, warm " << warm_s << "s  => "
            << speedup << "x over " << cap_sweep.size()
            << " option changes\n"
            << "  candidates " << warm_stats.candidates << ", blocked pairs "
            << warm_stats.candidate_pairs << " (reused verbatim), mappings "
            << warm_stats.mappings << "\n"
            << "  cold per-config stages: index+extract "
            << cold_stats.index_seconds + cold_stats.extract_seconds
            << "s, blocking " << cold_stats.blocking_seconds
            << "s, scoring " << cold_stats.scoring_seconds << "s\n"
            << "  mapping divergence " << divergence << " / "
            << cap_sweep.size() << " configs\n"
            << "  session stage runs: " << ss.extract_runs << " extract, "
            << ss.blocking_runs << " blocking, " << ss.scoring_runs
            << " scoring (" << ss.warm_scoring_runs << " warm), "
            << ss.partition_runs << " partition\n";

  // ----------------------------------------------------------------- JSON
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"pr\": 3,\n"
      << "  \"bench\": \"bench_pr3 (staged session warm re-score vs cold "
         "full run)\",\n"
      << "  \"repeats\": " << kRepeats << ",\n"
      << "  \"warm_rescore\": {\n"
      << "    \"corpus_tables\": " << corpus.size() << ",\n"
      << "    \"candidates\": " << warm_stats.candidates << ",\n"
      << "    \"blocked_pairs\": " << warm_stats.candidate_pairs << ",\n"
      << "    \"mappings\": " << warm_stats.mappings << ",\n"
      << "    \"option_changes_per_run\": " << cap_sweep.size() << ",\n"
      << "    \"cold_seconds\": " << cold_s << ",\n"
      << "    \"warm_seconds\": " << warm_s << ",\n"
      << "    \"speedup\": " << speedup << ",\n"
      << "    \"mapping_divergence\": " << divergence << ",\n"
      << "    \"cold_index_extract_seconds\": "
      << cold_stats.index_seconds + cold_stats.extract_seconds << ",\n"
      << "    \"cold_blocking_seconds\": " << cold_stats.blocking_seconds
      << ",\n"
      << "    \"cold_scoring_seconds\": " << cold_stats.scoring_seconds
      << ",\n"
      << "    \"warm_scoring_seconds\": " << warm_stats.scoring_seconds
      << ",\n"
      << "    \"blocking_runs\": " << ss.blocking_runs << ",\n"
      << "    \"scoring_runs\": " << ss.scoring_runs << ",\n"
      << "    \"warm_scoring_runs\": " << ss.warm_scoring_runs << "\n"
      << "  }\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  // Correctness gates hold at every scale; the speedup bar only means
  // anything at acceptance scale (small runs are fixed-cost dominated).
  if (divergence != 0) {
    std::cerr << "FAIL: warm staged results diverge from cold monolithic "
                 "results\n";
    return 1;
  }
  constexpr size_t kAcceptanceScale = 100000;
  if (n_tables >= kAcceptanceScale && warm_stats.candidates < kAcceptanceScale) {
    std::cerr << "FAIL: corpus yielded only " << warm_stats.candidates
              << " candidates at acceptance scale\n";
    return 1;
  }
  if (n_tables >= kAcceptanceScale && speedup < 3.0) {
    std::cerr << "FAIL: warm re-score speedup below 3x at acceptance "
                 "scale\n";
    return 1;
  }
  return 0;
}
