// PR 4 acceptance benchmark: the artifact persistence layer. A serving
// deployment that restarts must not re-pay extraction, blocking, and cold
// scoring; it restores the staged artifacts from a checksummed snapshot and
// resumes at partitioning. Likewise a multi-GB corpus should open by mmap
// instead of cell-by-cell TSV parsing. Results go to BENCH_PR4.json (or
// argv[2]); scratch files (snapshot + converted corpus) land in argv[3]
// (default: the build tree's persist/ directory, never the source tree):
//
//   ./bench/bench_pr4 [num_tables] [output.json] [scratch_dir]
//
// Correctness gates run before any speedup is reported and fail the binary
// at every scale:
//   1. restore + Partition + Resolve must produce string-identical mappings
//      to an uninterrupted cold run under the same options,
//   2. the mmap corpus store must reproduce the TSV-parsed corpus exactly
//      (tables, pool, cells),
//   3. corrupting the snapshot must fail the restore with DataLoss.
// The >= 5x snapshot-restore and >= 2x mmap-open bars are enforced at
// acceptance scale (100k candidates).
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "persist/corpus_store.h"
#include "synth/session.h"
#include "table/corpus.h"
#include "table/tsv.h"

#ifndef MS_PERSIST_SCRATCH_DIR
#define MS_PERSIST_SCRATCH_DIR "."
#endif

namespace ms {
namespace {

constexpr int kRepeats = 3;
constexpr int kColdRepeats = 2;

/// Web-shaped vocabulary (same shape as bench_pr2/pr3): multi-word entity
/// names with typo'd variants, short codes, a sprinkle of > 64-byte strings
/// for the blocked kernel.
struct Vocab {
  std::vector<std::string> lefts;
  std::vector<std::string> rights;

  Vocab(size_t n_lefts, size_t n_rights, Rng& rng) {
    const char* first[] = {"united", "republic", "southern", "new", "grand",
                           "upper", "saint", "north", "royal", "east"};
    const char* second[] = {"province", "island", "territory", "state",
                            "district", "region", "county", "kingdom",
                            "federation", "commonwealth"};
    for (size_t i = 0; i < n_lefts; ++i) {
      std::string s = std::string(first[rng.Uniform(10)]) + " " +
                      second[rng.Uniform(10)] + " " +
                      std::to_string(i / 7);
      switch (rng.Uniform(8)) {
        case 0:
          s[rng.Uniform(s.size())] = static_cast<char>('a' + rng.Uniform(26));
          break;
        case 1:
          s += static_cast<char>('a' + rng.Uniform(26));
          break;
        case 2:
          s += " of the greater unified historical administrative division";
          break;
        default:
          break;
      }
      lefts.push_back(std::move(s));
    }
    for (size_t i = 0; i < n_rights; ++i) {
      rights.push_back("c" + std::to_string(i));
    }
  }
};

/// A corpus of n two-column tables sampling the vocabulary with popularity
/// skew (a few hot values, a long thin tail); same construction as
/// bench_pr3 so the two benches report on comparable workloads.
TableCorpus BuildCorpus(size_t n, const Vocab& vocab, Rng& rng) {
  const uint32_t nl = static_cast<uint32_t>(vocab.lefts.size());
  const uint32_t nr = static_cast<uint32_t>(vocab.rights.size());
  auto skewed = [&](uint32_t space) -> uint32_t {
    const double r = rng.UniformDouble();
    if (r < 0.10) return static_cast<uint32_t>(rng.Uniform(8));
    const uint32_t warm = space / 100 + 1;
    if (r < 0.40) return 8 + static_cast<uint32_t>(rng.Uniform(warm));
    return 8 + warm + static_cast<uint32_t>(rng.Uniform(space - 8 - warm));
  };
  TableCorpus corpus;
  std::vector<std::string> left_col, right_col;
  std::set<uint32_t> seen;
  for (size_t t = 0; t < n; ++t) {
    left_col.clear();
    right_col.clear();
    seen.clear();
    const size_t rows = 6 + rng.Uniform(8);
    while (left_col.size() < rows) {
      const uint32_t li = skewed(nl);
      if (!seen.insert(li).second) continue;
      left_col.push_back(vocab.lefts[li]);
      right_col.push_back(vocab.rights[skewed(nr)]);
    }
    right_col[1] = right_col[0];
    corpus.AddFromStrings("domain" + std::to_string(t % 64) + ".example",
                          TableSource::kWeb, {"name", "code"},
                          {left_col, right_col});
  }
  return corpus;
}

/// Pool-independent canonical multiset of mappings: mapping sets restored
/// against a different StringPool must compare by strings, not ids.
std::multiset<std::string> Canonical(const SynthesisResult& r,
                                     const StringPool& pool) {
  std::multiset<std::string> out;
  for (const auto& m : r.mappings) {
    std::string key = std::to_string(m.kept_tables.size()) + "|";
    for (const auto& p : m.merged.pairs()) {
      key += std::string(pool.Get(p.left)) + ":" +
             std::string(pool.Get(p.right)) + ",";
    }
    out.insert(std::move(key));
  }
  return out;
}

SynthesisOptions BenchOptions() {
  SynthesisOptions o;
  o.min_domains = 1;
  o.min_pairs = 1;
  return o;
}

bool CorporaIdentical(const TableCorpus& a, const TableCorpus& b) {
  if (a.size() != b.size() || a.pool().size() != b.pool().size()) return false;
  for (size_t v = 0; v < a.pool().size(); ++v) {
    if (a.pool().Get(static_cast<ValueId>(v)) !=
        b.pool().Get(static_cast<ValueId>(v))) {
      return false;
    }
  }
  for (size_t t = 0; t < a.size(); ++t) {
    const Table& ta = a.tables()[t];
    const Table& tb = b.tables()[t];
    if (ta.domain != tb.domain || ta.source != tb.source ||
        ta.columns.size() != tb.columns.size()) {
      return false;
    }
    for (size_t c = 0; c < ta.columns.size(); ++c) {
      if (ta.columns[c].name != tb.columns[c].name ||
          ta.columns[c].cells != tb.columns[c].cells) {
        return false;
      }
    }
  }
  return true;
}

size_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<size_t>(in.tellg()) : 0;
}

}  // namespace
}  // namespace ms

int main(int argc, char** argv) {
  using namespace ms;
  const size_t n_tables =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 118000;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_PR4.json";
  const std::string scratch = argc > 3 ? argv[3] : MS_PERSIST_SCRATCH_DIR;
  const std::string snap_path = scratch + "/bench_pr4.mssnap";
  const std::string tsv_path = scratch + "/bench_pr4_corpus.tsv";
  const std::string store_path = scratch + "/bench_pr4_corpus.mscorp";

  // Same seed as bench_pr3: the corpus yields >= 100k candidate tables at
  // acceptance scale after extraction filtering.
  Rng rng(4321);
  std::cout << "building vocabulary + corpus of " << n_tables
            << " two-column tables...\n"
            << std::flush;
  Vocab vocab(30000, 4000, rng);
  TableCorpus corpus = BuildCorpus(n_tables, vocab, rng);

  // ------------------------------------------------------ cold full runs
  // The restart story before this PR: every process start re-pays index
  // build, extraction, blocking, and cold scoring.
  std::cout << "cold: full pipeline run per process start...\n" << std::flush;
  std::multiset<std::string> cold_canonical;
  PipelineStats cold_stats;
  double cold_s = 1e100;
  for (int r = 0; r < kColdRepeats; ++r) {
    Timer t;
    SynthesisSession session(BenchOptions());
    auto res = session.Run(corpus);
    if (!res.ok()) {
      std::cerr << "FAIL: cold run error: " << res.status().ToString() << "\n";
      return 1;
    }
    cold_s = std::min(cold_s, t.ElapsedSeconds());
    cold_canonical = Canonical(res.value(), corpus.pool());
    cold_stats = res.value().stats;
  }

  // ------------------------------------------------------- snapshot save
  // One staged session materializes the artifacts and persists them — the
  // offline half of the restart story.
  std::cout << "saving snapshot of staged artifacts...\n" << std::flush;
  double save_s = 0.0;
  {
    SynthesisSession session(BenchOptions());
    auto cands = session.ExtractCandidates(corpus);
    if (!cands.ok()) return 1;
    auto blocked = session.BlockPairs(cands.value());
    if (!blocked.ok()) return 1;
    auto scored = session.ScorePairs(cands.value(), blocked.value());
    if (!scored.ok()) return 1;
    auto parts = session.Partition(scored.value());
    if (!parts.ok()) return 1;
    auto result =
        session.Resolve(cands.value(), scored.value(), parts.value());
    if (!result.ok()) return 1;
    Timer t;
    Status st = session.SaveSnapshot(snap_path, cands.value(),
                                     &blocked.value(), &scored.value(),
                                     &result.value());
    save_s = t.ElapsedSeconds();
    if (!st.ok()) {
      std::cerr << "FAIL: SaveSnapshot: " << st.ToString() << "\n";
      return 1;
    }
  }

  // ---------------------------------------------------- corruption gate
  {
    std::ifstream in(snap_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] ^= 0x04;
    const std::string bad_path = scratch + "/bench_pr4_corrupt.mssnap";
    std::ofstream out(bad_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    SynthesisSession session(BenchOptions());
    auto restored = session.RestoreSnapshot(bad_path);
    if (restored.ok() || restored.status().code() != StatusCode::kDataLoss) {
      std::cerr << "FAIL: corrupted snapshot did not fail with DataLoss\n";
      return 1;
    }
    std::remove(bad_path.c_str());
  }

  // ------------------------------------------------------- warm restores
  // The restart story after this PR: a fresh process restores the snapshot
  // and resumes at partitioning.
  std::cout << "warm: restore snapshot + partition + resolve per process "
               "start...\n"
            << std::flush;
  std::multiset<std::string> warm_canonical;
  PipelineStats warm_stats;
  double warm_s = 1e100;
  size_t warm_candidates = 0;
  for (int r = 0; r < kRepeats; ++r) {
    Timer t;
    SynthesisSession session(BenchOptions());
    auto restored = session.RestoreSnapshot(snap_path);
    if (!restored.ok()) {
      std::cerr << "FAIL: RestoreSnapshot: " << restored.status().ToString()
                << "\n";
      return 1;
    }
    const SessionSnapshot& snap = restored.value();
    auto parts = session.Partition(*snap.scored);
    if (!parts.ok()) return 1;
    auto res = session.Resolve(*snap.candidates, *snap.scored, parts.value());
    if (!res.ok()) return 1;
    warm_s = std::min(warm_s, t.ElapsedSeconds());
    warm_canonical = Canonical(res.value(), *snap.pool);
    warm_stats = res.value().stats;
    warm_candidates = snap.candidates->stats.candidates;
  }
  const size_t divergence = cold_canonical == warm_canonical ? 0 : 1;
  const double restore_speedup = cold_s / warm_s;

  // ------------------------------------------- corpus store vs TSV parse
  std::cout << "corpus: TSV parse vs mmap store open...\n" << std::flush;
  if (!SaveCorpus(corpus, tsv_path).ok()) {
    std::cerr << "FAIL: cannot write corpus TSV\n";
    return 1;
  }
  Timer convert_timer;
  if (!persist::ConvertTsvCorpusToStore(tsv_path, store_path).ok()) {
    std::cerr << "FAIL: TSV -> store conversion failed\n";
    return 1;
  }
  const double convert_s = convert_timer.ElapsedSeconds();

  double tsv_s = 1e100;
  double mmap_s = 1e100;
  bool corpora_identical = true;
  for (int r = 0; r < kRepeats; ++r) {
    Timer t1;
    TableCorpus from_tsv;
    if (!LoadCorpus(tsv_path, &from_tsv).ok()) return 1;
    tsv_s = std::min(tsv_s, t1.ElapsedSeconds());

    Timer t2;
    auto from_store = persist::OpenCorpusStore(store_path);
    if (!from_store.ok()) {
      std::cerr << "FAIL: OpenCorpusStore: "
                << from_store.status().ToString() << "\n";
      return 1;
    }
    mmap_s = std::min(mmap_s, t2.ElapsedSeconds());
    corpora_identical =
        corpora_identical && CorporaIdentical(from_tsv, from_store.value());
  }
  const double open_speedup = tsv_s / mmap_s;

  std::cout << "  cold full run " << cold_s << "s, warm restore+resolve "
            << warm_s << "s  => " << restore_speedup << "x\n"
            << "  snapshot: " << FileSize(snap_path) / (1024.0 * 1024.0)
            << " MiB, saved in " << save_s << "s; mapping divergence "
            << divergence << "\n"
            << "  corpus open: TSV parse " << tsv_s << "s, mmap store "
            << mmap_s << "s  => " << open_speedup << "x (convert once: "
            << convert_s << "s); identical " << corpora_identical << "\n"
            << "  candidates " << warm_candidates << ", mappings "
            << warm_stats.mappings << "\n";

  // ----------------------------------------------------------------- JSON
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"pr\": 4,\n"
      << "  \"bench\": \"bench_pr4 (snapshot restore vs cold run; mmap "
         "corpus open vs TSV parse)\",\n"
      << "  \"repeats\": " << kRepeats << ",\n"
      << "  \"snapshot_restore\": {\n"
      << "    \"corpus_tables\": " << corpus.size() << ",\n"
      << "    \"candidates\": " << warm_candidates << ",\n"
      << "    \"blocked_pairs\": " << warm_stats.candidate_pairs << ",\n"
      << "    \"graph_edges\": " << warm_stats.graph_edges << ",\n"
      << "    \"mappings\": " << warm_stats.mappings << ",\n"
      << "    \"cold_seconds\": " << cold_s << ",\n"
      << "    \"warm_seconds\": " << warm_s << ",\n"
      << "    \"speedup\": " << restore_speedup << ",\n"
      << "    \"mapping_divergence\": " << divergence << ",\n"
      << "    \"snapshot_bytes\": " << FileSize(snap_path) << ",\n"
      << "    \"save_seconds\": " << save_s << "\n"
      << "  },\n"
      << "  \"corpus_store\": {\n"
      << "    \"tsv_bytes\": " << FileSize(tsv_path) << ",\n"
      << "    \"store_bytes\": " << FileSize(store_path) << ",\n"
      << "    \"tsv_parse_seconds\": " << tsv_s << ",\n"
      << "    \"mmap_open_seconds\": " << mmap_s << ",\n"
      << "    \"open_speedup\": " << open_speedup << ",\n"
      << "    \"convert_seconds\": " << convert_s << ",\n"
      << "    \"identical\": " << (corpora_identical ? "true" : "false")
      << "\n"
      << "  }\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  std::remove(snap_path.c_str());
  std::remove(tsv_path.c_str());
  std::remove(store_path.c_str());

  // Correctness gates hold at every scale; the speedup bars only mean
  // anything at acceptance scale (small runs are fixed-cost dominated).
  if (divergence != 0) {
    std::cerr << "FAIL: restored mappings diverge from the cold run\n";
    return 1;
  }
  if (!corpora_identical) {
    std::cerr << "FAIL: mmap corpus store does not reproduce the TSV "
                 "corpus\n";
    return 1;
  }
  constexpr size_t kAcceptanceScale = 100000;
  if (n_tables >= kAcceptanceScale && warm_candidates < kAcceptanceScale) {
    std::cerr << "FAIL: corpus yielded only " << warm_candidates
              << " candidates at acceptance scale\n";
    return 1;
  }
  if (n_tables >= kAcceptanceScale && restore_speedup < 5.0) {
    std::cerr << "FAIL: snapshot-restore speedup below 5x at acceptance "
                 "scale\n";
    return 1;
  }
  if (n_tables >= kAcceptanceScale && open_speedup < 2.0) {
    std::cerr << "FAIL: mmap corpus open speedup below 2x at acceptance "
                 "scale\n";
    return 1;
  }
  return 0;
}
