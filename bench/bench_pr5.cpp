// PR 5 acceptance benchmark: incremental corpus growth. A serving fleet
// that ingests new tables must not pay a cold re-run of the whole pipeline:
// SynthesisSession::AppendTables re-extracts only the appended tables
// (plus the corpus-global coherence re-check), blocks and scores only the
// delta pairs, and re-partitions/re-resolves only the components the delta
// touched. Results go to BENCH_PR5.json (or argv[2]):
//
//   ./bench/bench_pr5 [num_tables] [output.json]
//
// The corpus is the same web-shaped workload as bench_pr3/pr4; the last 10%
// of tables form the append batch. Correctness gates run before any speedup
// is reported and fail the binary at every scale:
//   1. the appended artifacts must produce string-identical mappings to a
//      cold full run over the grown corpus (zero divergence),
//   2. deterministic counters (candidates, blocked pairs, graph edges,
//      partitions, mappings) must match the cold run exactly,
//   3. the append must take the delta fast path (no coherence-flip
//      fallback) — otherwise the speedup being gated is not the delta
//      path's.
// The >= 5x bar is enforced at acceptance scale (100k+ candidates).
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "synth/session.h"
#include "table/corpus.h"

namespace ms {
namespace {

constexpr int kRepeats = 3;
constexpr int kColdRepeats = 2;

/// Web-shaped vocabulary (same shape as bench_pr2/pr3/pr4): multi-word
/// entity names with typo'd variants, short codes, a sprinkle of > 64-byte
/// strings for the blocked kernel.
struct Vocab {
  std::vector<std::string> lefts;
  std::vector<std::string> rights;

  Vocab(size_t n_lefts, size_t n_rights, Rng& rng) {
    const char* first[] = {"united", "republic", "southern", "new", "grand",
                           "upper", "saint", "north", "royal", "east"};
    const char* second[] = {"province", "island", "territory", "state",
                            "district", "region", "county", "kingdom",
                            "federation", "commonwealth"};
    for (size_t i = 0; i < n_lefts; ++i) {
      std::string s = std::string(first[rng.Uniform(10)]) + " " +
                      second[rng.Uniform(10)] + " " +
                      std::to_string(i / 7);
      switch (rng.Uniform(8)) {
        case 0:
          s[rng.Uniform(s.size())] = static_cast<char>('a' + rng.Uniform(26));
          break;
        case 1:
          s += static_cast<char>('a' + rng.Uniform(26));
          break;
        case 2:
          s += " of the greater unified historical administrative division";
          break;
        default:
          break;
      }
      lefts.push_back(std::move(s));
    }
    for (size_t i = 0; i < n_rights; ++i) {
      rights.push_back("c" + std::to_string(i));
    }
  }
};

/// Appends tables [*, *+count) to `corpus`, continuing `rng`'s stream. Two
/// corpora built from equal seeds and equal cumulative counts hold
/// identical tables — how the cold-rebuild corpus and the incrementally
/// grown corpus are kept in sync without sharing a pool.
void GrowCorpus(TableCorpus* corpus, size_t count, const Vocab& vocab,
                Rng& rng) {
  const uint32_t nl = static_cast<uint32_t>(vocab.lefts.size());
  const uint32_t nr = static_cast<uint32_t>(vocab.rights.size());
  auto skewed = [&](uint32_t space) -> uint32_t {
    const double r = rng.UniformDouble();
    if (r < 0.10) return static_cast<uint32_t>(rng.Uniform(8));
    const uint32_t warm = space / 100 + 1;
    if (r < 0.40) return 8 + static_cast<uint32_t>(rng.Uniform(warm));
    return 8 + warm + static_cast<uint32_t>(rng.Uniform(space - 8 - warm));
  };
  std::vector<std::string> left_col, right_col;
  std::set<uint32_t> seen;
  for (size_t t = 0; t < count; ++t) {
    left_col.clear();
    right_col.clear();
    seen.clear();
    const size_t rows = 6 + rng.Uniform(8);
    while (left_col.size() < rows) {
      const uint32_t li = skewed(nl);
      if (!seen.insert(li).second) continue;
      left_col.push_back(vocab.lefts[li]);
      right_col.push_back(vocab.rights[skewed(nr)]);
    }
    right_col[1] = right_col[0];
    corpus->AddFromStrings(
        "domain" + std::to_string(corpus->size() % 64) + ".example",
        TableSource::kWeb, {"name", "code"}, {left_col, right_col});
  }
}

/// Pool-independent, order-independent canonical multiset: the append path
/// and the cold rebuild intern normalized values into different pools, so
/// pair strings are sorted within each mapping before comparison.
std::multiset<std::string> Canonical(const SynthesisResult& r,
                                     const StringPool& pool) {
  std::multiset<std::string> out;
  for (const auto& m : r.mappings) {
    std::multiset<std::string> pairs;
    for (const auto& p : m.merged.pairs()) {
      pairs.insert(std::string(pool.Get(p.left)) + ":" +
                   std::string(pool.Get(p.right)));
    }
    std::string key = std::to_string(m.kept_tables.size()) + "|";
    for (const auto& p : pairs) key += p + ",";
    out.insert(std::move(key));
  }
  return out;
}

SynthesisOptions BenchOptions() {
  SynthesisOptions o;
  o.min_domains = 1;
  o.min_pairs = 1;
  // Coherence is corpus-global, so a threshold sitting inside the score
  // distribution flips a handful of verdicts on every 10% growth of this
  // workload — forcing the exact-by-construction full-rebuild fallback and
  // leaving no delta fast path to measure. The bench keeps every column
  // (the re-check itself still runs and is timed — that tax is real);
  // fallback correctness is locked down by tests/incremental_test.cc, and
  // AppendStats::unstable_tables exposes drift in production.
  o.extraction.coherence_threshold = -1.0;
  return o;
}

struct Family {
  CandidateSet candidates;
  BlockedPairs blocked;
  ScoredGraph scored;
  Partitions partitions;
  SynthesisResult result;
};

bool ColdChain(SynthesisSession* session, const TableCorpus& corpus,
               Family* f) {
  auto c = session->ExtractCandidates(corpus);
  if (!c.ok()) return false;
  f->candidates = std::move(c).value();
  auto b = session->BlockPairs(f->candidates);
  if (!b.ok()) return false;
  f->blocked = std::move(b).value();
  auto g = session->ScorePairs(f->candidates, f->blocked);
  if (!g.ok()) return false;
  f->scored = std::move(g).value();
  auto p = session->Partition(f->scored);
  if (!p.ok()) return false;
  f->partitions = std::move(p).value();
  auto r = session->Resolve(f->candidates, f->scored, f->partitions);
  if (!r.ok()) return false;
  f->result = std::move(r).value();
  return true;
}

}  // namespace
}  // namespace ms

int main(int argc, char** argv) {
  using namespace ms;
  const size_t n_tables =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 118000;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_PR5.json";
  const size_t n_delta = n_tables / 10;
  const size_t n_base = n_tables - n_delta;

  // Same seed family as bench_pr3/pr4: >= 100k candidates at acceptance
  // scale after extraction filtering.
  Rng vocab_rng(4321);
  std::cout << "building vocabulary + corpus of " << n_tables
            << " two-column tables (" << n_base << " base + " << n_delta
            << " appended)...\n"
            << std::flush;
  Vocab vocab(30000, 4000, vocab_rng);

  // The cold-rebuild corpus holds all tables; the incremental corpus starts
  // with the base prefix and grows mid-benchmark. Equal seeds keep the
  // table streams identical.
  Rng cold_rng = vocab_rng;
  Rng inc_rng = vocab_rng;
  TableCorpus cold_corpus;
  GrowCorpus(&cold_corpus, n_tables, vocab, cold_rng);
  TableCorpus inc_corpus;
  GrowCorpus(&inc_corpus, n_base, vocab, inc_rng);

  // ---------------------------------------------------- cold full runs
  // What a fleet pays today for ingesting the batch: a full re-run over the
  // grown corpus.
  std::cout << "cold: full pipeline over the grown corpus...\n" << std::flush;
  std::multiset<std::string> cold_canonical;
  PipelineStats cold_stats;
  double cold_s = 1e100;
  for (int r = 0; r < kColdRepeats; ++r) {
    Timer t;
    SynthesisSession session(BenchOptions());
    auto res = session.Run(cold_corpus);
    if (!res.ok()) {
      std::cerr << "FAIL: cold run error: " << res.status().ToString() << "\n";
      return 1;
    }
    cold_s = std::min(cold_s, t.ElapsedSeconds());
    cold_canonical = Canonical(res.value(), cold_corpus.pool());
    cold_stats = res.value().stats;
  }

  // ------------------------------------------------- base synthesis (warm)
  std::cout << "base: staged chain over the " << n_base
            << "-table prefix...\n"
            << std::flush;
  SynthesisSession session(BenchOptions());
  Family base;
  if (!ColdChain(&session, inc_corpus, &base)) {
    std::cerr << "FAIL: base chain error\n";
    return 1;
  }
  GrowCorpus(&inc_corpus, n_delta, vocab, inc_rng);

  // ------------------------------------------------------- timed appends
  std::cout << "append: delta extraction + blocking + scoring + "
               "component-restricted resolve...\n"
            << std::flush;
  double append_s = 1e100;
  std::multiset<std::string> append_canonical;
  PipelineStats append_stats;
  AppendStats append_info;
  size_t append_candidates = 0;
  for (int r = 0; r < kRepeats; ++r) {
    Timer t;
    auto grown = session.AppendTables(inc_corpus, n_base, base.candidates,
                                      base.blocked, base.scored,
                                      base.partitions, base.result);
    if (!grown.ok()) {
      std::cerr << "FAIL: AppendTables: " << grown.status().ToString()
                << "\n";
      return 1;
    }
    append_s = std::min(append_s, t.ElapsedSeconds());
    const AppendedArtifacts& a = grown.value();
    append_canonical = Canonical(a.result, inc_corpus.pool());
    append_stats = a.result.stats;
    append_info = a.append;
    append_candidates = a.candidates.stats.candidates;
  }

  const size_t divergence = cold_canonical == append_canonical ? 0 : 1;
  const bool counters_match =
      cold_stats.candidates == append_stats.candidates &&
      cold_stats.candidate_pairs == append_stats.candidate_pairs &&
      cold_stats.graph_edges == append_stats.graph_edges &&
      cold_stats.partitions == append_stats.partitions &&
      cold_stats.mappings == append_stats.mappings;
  const double speedup = cold_s / append_s;

  std::cout << "  cold full run " << cold_s << "s, append " << append_s
            << "s  => " << speedup << "x\n"
            << "  +" << append_info.appended_tables << " tables, +"
            << append_info.new_candidates << " candidates, "
            << append_info.delta_pairs << " delta pairs ("
            << cold_stats.candidate_pairs << " total), "
            << append_info.dirty_components << " dirty / "
            << append_info.clean_components << " clean components, "
            << append_info.carried_mappings << " mappings carried\n"
            << "  divergence " << divergence << ", counters match "
            << counters_match << ", fast path "
            << (append_info.full_rebuild ? "NO (fallback)" : "yes")
            << ", unstable tables " << append_info.unstable_tables << "\n";

  // ----------------------------------------------------------------- JSON
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"pr\": 5,\n"
      << "  \"bench\": \"bench_pr5 (incremental corpus growth: append 10% "
         "new tables vs cold full run)\",\n"
      << "  \"repeats\": " << kRepeats << ",\n"
      << "  \"corpus_tables\": " << n_tables << ",\n"
      << "  \"appended_tables\": " << append_info.appended_tables << ",\n"
      << "  \"candidates\": " << append_candidates << ",\n"
      << "  \"new_candidates\": " << append_info.new_candidates << ",\n"
      << "  \"blocked_pairs\": " << append_stats.candidate_pairs << ",\n"
      << "  \"delta_pairs\": " << append_info.delta_pairs << ",\n"
      << "  \"graph_edges\": " << append_stats.graph_edges << ",\n"
      << "  \"delta_edges\": " << append_info.delta_edges << ",\n"
      << "  \"dirty_components\": " << append_info.dirty_components << ",\n"
      << "  \"clean_components\": " << append_info.clean_components << ",\n"
      << "  \"carried_mappings\": " << append_info.carried_mappings << ",\n"
      << "  \"mappings\": " << append_stats.mappings << ",\n"
      << "  \"unstable_tables\": " << append_info.unstable_tables << ",\n"
      << "  \"extraction_stable\": "
      << (append_info.extraction_stable ? "true" : "false") << ",\n"
      << "  \"full_rebuild_fallback\": "
      << (append_info.full_rebuild ? "true" : "false") << ",\n"
      << "  \"cold_seconds\": " << cold_s << ",\n"
      << "  \"append_seconds\": " << append_s << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"mapping_divergence\": " << divergence << ",\n"
      << "  \"counters_match\": " << (counters_match ? "true" : "false")
      << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  // Correctness gates hold at every scale; the speedup bar only means
  // anything at acceptance scale (small runs are fixed-cost dominated).
  if (divergence != 0) {
    std::cerr << "FAIL: appended mappings diverge from the cold rebuild\n";
    return 1;
  }
  if (!counters_match) {
    std::cerr << "FAIL: deterministic counters diverge from the cold "
                 "rebuild\n";
    return 1;
  }
  constexpr size_t kAcceptanceScale = 100000;
  if (n_tables >= kAcceptanceScale && append_candidates < kAcceptanceScale) {
    std::cerr << "FAIL: corpus yielded only " << append_candidates
              << " candidates at acceptance scale\n";
    return 1;
  }
  if (n_tables >= kAcceptanceScale && append_info.full_rebuild) {
    std::cerr << "FAIL: append fell back to a full rebuild at acceptance "
                 "scale — the delta fast path was not measured\n";
    return 1;
  }
  if (n_tables >= kAcceptanceScale && speedup < 5.0) {
    std::cerr << "FAIL: append speedup " << speedup
              << "x below the 5x acceptance bar\n";
    return 1;
  }
  return 0;
}
