// Section 5.4 reproduction: sensitivity of Synthesis to its parameters —
// θ (approximate-FD threshold), τ (negative hard constraint), θ_overlap
// (blocking), θ_edge (positive-edge floor) — plus the approximate-string-
// matching ablation (Example 8's motivation).
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace ms;
  GeneratedWorld world = bench::StandardWebWorld();
  bench::PrintWorldSummary(world);

  auto score = [&](const SynthesisOptions& o) {
    SynthesisPipeline pipeline(o);
    SynthesisResult r = pipeline.Run(world.corpus);
    auto per_case = bench::ScoreCases(bench::Relations(r.mappings), world);
    double f = 0;
    for (const auto& s : per_case) f += s.fscore;
    struct Row {
      double avg_f;
      size_t mappings;
      size_t edges;
      double seconds;
    };
    return Row{f / static_cast<double>(per_case.size()), r.stats.mappings,
               r.stats.graph_edges, r.stats.total_seconds};
  };

  {
    PrintBanner(std::cout, "θ (approximate-FD threshold; paper: 95%)");
    TextTable t({"theta", "AvgFscore", "mappings"});
    for (double theta : {0.90, 0.93, 0.95, 0.97, 1.0}) {
      SynthesisOptions o;
      o.extraction.fd_theta = theta;
      auto r = score(o);
      t.AddRow({bench::F(theta, 2), bench::F(r.avg_f),
                std::to_string(r.mappings)});
    }
    t.Print(std::cout);
  }

  {
    PrintBanner(std::cout, "τ (negative hard-constraint threshold)");
    TextTable t({"tau", "AvgFscore", "mappings"});
    for (double tau : {-0.02, -0.05, -0.1, -0.2, -0.4}) {
      SynthesisOptions o;
      o.partitioner.tau = tau;
      auto r = score(o);
      t.AddRow({bench::F(tau, 2), bench::F(r.avg_f),
                std::to_string(r.mappings)});
    }
    t.Print(std::cout);
  }

  {
    PrintBanner(std::cout, "θ_overlap (blocking threshold; efficiency knob)");
    TextTable t({"theta_overlap", "AvgFscore", "edges", "seconds"});
    for (size_t ov : {1, 2, 3, 5}) {
      SynthesisOptions o;
      o.blocking.theta_overlap = ov;
      auto r = score(o);
      t.AddRow({std::to_string(ov), bench::F(r.avg_f),
                std::to_string(r.edges), bench::F(r.seconds, 2)});
    }
    t.Print(std::cout);
  }

  {
    PrintBanner(std::cout, "θ_edge (positive-edge floor)");
    TextTable t({"theta_edge", "AvgFscore", "mappings"});
    for (double te : {0.2, 0.35, 0.5, 0.7, 0.85}) {
      SynthesisOptions o;
      o.partitioner.theta_edge = te;
      auto r = score(o);
      t.AddRow({bench::F(te, 2), bench::F(r.avg_f),
                std::to_string(r.mappings)});
    }
    t.Print(std::cout);
  }

  {
    PrintBanner(std::cout, "approximate string matching ablation");
    TextTable t({"matching", "AvgFscore", "mappings"});
    for (bool approx : {true, false}) {
      SynthesisOptions o;
      o.compat.approximate_matching = approx;
      auto r = score(o);
      t.AddRow({approx ? "banded edit distance" : "exact only",
                bench::F(r.avg_f), std::to_string(r.mappings)});
    }
    t.Print(std::cout);
  }
  return 0;
}
