// Serving-tier acceptance benchmark: RCU snapshot readers under mixed
// application traffic. Two claims are measured and gated:
//
//   1. Reader scalability — wait-free snapshot acquisition means aggregate
//      lookup throughput must scale with reader threads (>= 4x at 8 threads
//      vs 1). The bar is enforced only on hardware with >= 8 cores at
//      acceptance scale; the JSON records `gate_enforced` either way.
//   2. Zero torn reads — while an appender runs real
//      AppendAndResynthesize transitions, concurrent readers continuously
//      verify every published snapshot's cross-artifact invariants (store
//      built from exactly the snapshot's result, batch lookups equal to
//      scalar lookups). One torn observation fails the binary at every
//      scale, as does any divergence between the torture end state and a
//      cold rebuild over the grown corpus.
//
// Results go to BENCH_SERVING.json (or argv[2]):
//
//   ./bench/bench_serving [num_tables] [output.json]
//
// The corpus is the same web-shaped workload as bench_pr3/pr4/pr5.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/serving.h"
#include "common/random.h"
#include "common/timer.h"
#include "synth/session.h"
#include "table/corpus.h"
#include "table/tsv.h"

namespace ms {
namespace {

constexpr size_t kBatchSize = 32;
constexpr double kPhaseSeconds = 1.2;
constexpr size_t kScaleThreads = 8;
constexpr size_t kTortureReaders = 4;
constexpr size_t kTortureBatches = 6;
constexpr size_t kAcceptanceScale = 20000;

/// Web-shaped vocabulary (same shape as bench_pr2..pr5).
struct Vocab {
  std::vector<std::string> lefts;
  std::vector<std::string> rights;

  Vocab(size_t n_lefts, size_t n_rights, Rng& rng) {
    const char* first[] = {"united", "republic", "southern", "new", "grand",
                           "upper", "saint", "north", "royal", "east"};
    const char* second[] = {"province", "island", "territory", "state",
                            "district", "region", "county", "kingdom",
                            "federation", "commonwealth"};
    for (size_t i = 0; i < n_lefts; ++i) {
      std::string s = std::string(first[rng.Uniform(10)]) + " " +
                      second[rng.Uniform(10)] + " " + std::to_string(i / 7);
      switch (rng.Uniform(8)) {
        case 0:
          s[rng.Uniform(s.size())] = static_cast<char>('a' + rng.Uniform(26));
          break;
        case 1:
          s += static_cast<char>('a' + rng.Uniform(26));
          break;
        default:
          break;
      }
      lefts.push_back(std::move(s));
    }
    for (size_t i = 0; i < n_rights; ++i) {
      rights.push_back("c" + std::to_string(i));
    }
  }
};

void GrowCorpus(TableCorpus* corpus, size_t count, const Vocab& vocab,
                Rng& rng) {
  const uint32_t nl = static_cast<uint32_t>(vocab.lefts.size());
  const uint32_t nr = static_cast<uint32_t>(vocab.rights.size());
  auto skewed = [&](uint32_t space) -> uint32_t {
    const double r = rng.UniformDouble();
    if (r < 0.10) return static_cast<uint32_t>(rng.Uniform(8));
    const uint32_t warm = space / 100 + 1;
    if (r < 0.40) return 8 + static_cast<uint32_t>(rng.Uniform(warm));
    return 8 + warm + static_cast<uint32_t>(rng.Uniform(space - 8 - warm));
  };
  std::vector<std::string> left_col, right_col;
  std::set<uint32_t> seen;
  for (size_t t = 0; t < count; ++t) {
    left_col.clear();
    right_col.clear();
    seen.clear();
    const size_t rows = 6 + rng.Uniform(8);
    while (left_col.size() < rows) {
      const uint32_t li = skewed(nl);
      if (!seen.insert(li).second) continue;
      left_col.push_back(vocab.lefts[li]);
      right_col.push_back(vocab.rights[skewed(nr)]);
    }
    right_col[1] = right_col[0];
    corpus->AddFromStrings(
        "domain" + std::to_string(corpus->size() % 64) + ".example",
        TableSource::kWeb, {"name", "code"}, {left_col, right_col});
  }
}

std::multiset<std::string> Canonical(const SynthesisResult& r,
                                     const StringPool& pool) {
  std::multiset<std::string> out;
  for (const auto& m : r.mappings) {
    std::multiset<std::string> pairs;
    for (const auto& p : m.merged.pairs()) {
      pairs.insert(std::string(pool.Get(p.left)) + ":" +
                   std::string(pool.Get(p.right)));
    }
    std::string key = std::to_string(m.kept_tables.size()) + "|";
    for (const auto& p : pairs) key += p + ",";
    out.insert(std::move(key));
  }
  return out;
}

SynthesisOptions BenchOptions() {
  SynthesisOptions o;
  o.min_domains = 1;
  o.min_pairs = 1;
  o.extraction.coherence_threshold = -1.0;
  return o;
}

/// Pre-generated request stream: batches of raw probe values (hits, misses,
/// typos, duplicates) plus one small column per batch for the app entry
/// points. Built once so the timed loops measure the serving path, not
/// string construction.
struct RequestPool {
  std::vector<std::vector<std::string>> batches;
  std::vector<std::vector<std::string>> columns;
};

RequestPool BuildRequests(const ServingSnapshot& snap, Rng& rng,
                          size_t n_batches) {
  std::vector<std::string> lefts;
  for (const auto& m : snap.result->mappings) {
    for (const auto& p : m.merged.pairs()) {
      lefts.emplace_back(snap.pool->Get(p.left));
    }
    if (lefts.size() > 50000) break;
  }
  RequestPool pool;
  pool.batches.reserve(n_batches);
  pool.columns.reserve(n_batches);
  for (size_t b = 0; b < n_batches; ++b) {
    std::vector<std::string> batch;
    batch.reserve(kBatchSize);
    for (size_t k = 0; k < kBatchSize; ++k) {
      const double roll = rng.UniformDouble();
      if (lefts.empty() || roll < 0.15) {
        batch.push_back("miss value " + std::to_string(rng.Uniform(10000)));
      } else {
        std::string v = lefts[rng.Uniform(lefts.size())];
        if (roll < 0.3 && !v.empty()) v[rng.Uniform(v.size())] = 'z';
        batch.push_back(std::move(v));
      }
    }
    // Duplicate a slice: serving columns repeat values, and the batch
    // dedup path should see its real shape.
    for (size_t k = kBatchSize / 2; k + 1 < kBatchSize; k += 3) {
      batch[k] = batch[k / 2];
    }
    std::vector<std::string> column(batch.begin(), batch.begin() + 12);
    pool.batches.push_back(std::move(batch));
    pool.columns.push_back(std::move(column));
  }
  return pool;
}

struct PhaseResult {
  double seconds = 0;
  uint64_t lookups = 0;
  double p50_us = 0;
  double p99_us = 0;
  double lookups_per_sec() const {
    return seconds > 0 ? static_cast<double>(lookups) / seconds : 0;
  }
};

/// Mixed-traffic read phase: `threads` workers replay the request pool
/// against the service for ~kPhaseSeconds. 80% of requests are LookupBatch
/// calls (the throughput metric counts individual lookups), the rest
/// exercise the app entry points so the snapshot path sees its full
/// surface. Per-LookupBatch latencies are sampled for p50/p99.
PhaseResult RunReadPhase(const MappingService& svc, const RequestPool& pool,
                         size_t threads) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_lookups{0};
  std::vector<std::vector<double>> latencies(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  Timer phase_timer;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(0xbeef + t);
      auto& lat = latencies[t];
      lat.reserve(1 << 16);
      uint64_t lookups = 0;
      const size_t n = pool.batches.size();
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t i = rng.Uniform(n);
        const double roll = rng.UniformDouble();
        if (roll < 0.8) {
          const auto snap = svc.AcquireSnapshot();
          if (snap == nullptr) continue;
          const size_t mi = rng.Uniform(snap->store->size());
          Timer t0;
          const auto out = svc.LookupBatch(mi, pool.batches[i]);
          lat.push_back(t0.ElapsedSeconds() * 1e6);
          lookups += out.size();
        } else if (roll < 0.9) {
          const auto res = svc.AutoFill(
              pool.columns[i], {{0, std::string(pool.columns[i][0])}});
          lookups += res.values.size() + pool.columns[i].size();
        } else {
          (void)svc.SuggestCorrections(pool.columns[i]);
          lookups += pool.columns[i].size();
        }
      }
      total_lookups.fetch_add(lookups, std::memory_order_relaxed);
    });
  }
  while (phase_timer.ElapsedSeconds() < kPhaseSeconds) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();

  PhaseResult r;
  r.seconds = phase_timer.ElapsedSeconds();
  r.lookups = total_lookups.load();
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    r.p50_us = all[all.size() / 2];
    r.p99_us = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  return r;
}

}  // namespace
}  // namespace ms

int main(int argc, char** argv) {
  using namespace ms;
  const size_t n_tables =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : kAcceptanceScale;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_SERVING.json";
  const size_t n_delta = std::max<size_t>(n_tables / 10, kTortureBatches);
  const size_t n_base = n_tables - n_delta;

  Rng vocab_rng(4321);
  std::cout << "building corpus of " << n_tables << " tables (" << n_base
            << " base + " << n_delta << " appended under read load)...\n"
            << std::flush;
  Vocab vocab(std::max<size_t>(n_tables / 4, 500),
              std::max<size_t>(n_tables / 30, 100), vocab_rng);

  Rng grow_rng = vocab_rng;
  TableCorpus base;
  GrowCorpus(&base, n_base, vocab, grow_rng);

  // The service must own its corpus for delta appends: bootstrap via TSV.
  const std::string tsv =
      std::string(MS_PERSIST_SCRATCH_DIR) + "/bench_serving_base.tsv";
  if (!SaveCorpus(base, tsv).ok()) {
    std::cerr << "FAIL: cannot write " << tsv << "\n";
    return 1;
  }
  MappingService svc(BenchOptions());
  {
    Timer t;
    const Status st = svc.SynthesizeFromFile(tsv);
    if (!st.ok()) {
      std::cerr << "FAIL: synthesize: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "synthesized " << svc.num_mappings() << " mappings in "
              << t.ElapsedSeconds() << "s\n"
              << std::flush;
  }
  const auto snap0 = svc.AcquireSnapshot();
  if (snap0 == nullptr || snap0->store->size() == 0) {
    std::cerr << "FAIL: nothing published to serve\n";
    return 1;
  }
  Rng req_rng(777);
  const RequestPool requests = BuildRequests(*snap0, req_rng, 512);

  // ------------------------------------------------- reader scaling phases
  std::cout << "read phase: 1 thread...\n" << std::flush;
  const PhaseResult one = RunReadPhase(svc, requests, 1);
  std::cout << "read phase: " << kScaleThreads << " threads...\n"
            << std::flush;
  const PhaseResult many = RunReadPhase(svc, requests, kScaleThreads);
  const double scaling =
      one.lookups_per_sec() > 0 ? many.lookups_per_sec() / one.lookups_per_sec()
                                : 0;
  std::cout << "  1 thread:  " << static_cast<uint64_t>(one.lookups_per_sec())
            << " lookups/s (p50 " << one.p50_us << "us, p99 " << one.p99_us
            << "us)\n  " << kScaleThreads << " threads: "
            << static_cast<uint64_t>(many.lookups_per_sec())
            << " lookups/s (p50 " << many.p50_us << "us, p99 " << many.p99_us
            << "us)  => " << scaling << "x\n";

  // --------------------------------------------------------- torture phase
  // Continuous appends under full read load; readers verify every acquired
  // snapshot's cross-artifact invariants and tally torn observations.
  std::cout << "torture: " << kTortureBatches << " appends under "
            << kTortureReaders << " reader threads...\n"
            << std::flush;
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> torture_reads{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kTortureReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(0xfeed + t);
      uint64_t last_version = 0;
      const size_t n = requests.batches.size();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = svc.AcquireSnapshot();
        if (snap == nullptr) continue;
        torture_reads.fetch_add(1, std::memory_order_relaxed);
        if (snap->version < last_version ||
            snap->store->size() != snap->result->mappings.size()) {
          torn.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        last_version = snap->version;
        if (snap->store->size() == 0) continue;
        const size_t mi = rng.Uniform(snap->store->size());
        const auto& batch = requests.batches[rng.Uniform(n)];
        const auto got = snap->store->LookupRightBatch(mi, batch);
        if (got.size() != batch.size()) {
          torn.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Batch == scalar within one snapshot, regardless of transitions.
        for (size_t k = 0; k < batch.size(); k += 7) {
          if (got[k] != snap->store->LookupRight(mi, batch[k])) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  Timer torture_timer;
  const size_t per_batch = n_delta / kTortureBatches;
  size_t appended = 0;
  for (size_t b = 0; b < kTortureBatches; ++b) {
    const size_t count =
        b + 1 == kTortureBatches ? n_delta - appended : per_batch;
    TableCorpus delta;
    GrowCorpus(&delta, count, vocab, grow_rng);
    const Status st = svc.AppendAndResynthesize(delta);
    if (!st.ok()) {
      stop.store(true);
      for (auto& r : readers) r.join();
      std::cerr << "FAIL: append " << b << ": " << st.ToString() << "\n";
      return 1;
    }
    appended += count;
  }
  const double torture_s = torture_timer.ElapsedSeconds();
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  std::cout << "  " << appended << " tables appended in " << torture_s
            << "s, " << torture_reads.load() << " concurrent reads, torn "
            << torn.load() << "\n";

  // ------------------------------------------------- cold-rebuild oracle
  std::cout << "cold rebuild over the grown corpus (divergence check)...\n"
            << std::flush;
  Rng cold_rng = vocab_rng;
  TableCorpus cold_corpus;
  GrowCorpus(&cold_corpus, n_tables, vocab, cold_rng);
  MappingService cold(BenchOptions());
  if (!cold.Synthesize(cold_corpus).ok()) {
    std::cerr << "FAIL: cold rebuild error\n";
    return 1;
  }
  const size_t divergence =
      Canonical(svc.last_result(), *svc.shared_pool()) ==
              Canonical(cold.last_result(), *cold.shared_pool())
          ? 0
          : 1;

  const unsigned hw = std::thread::hardware_concurrency();
  const bool gate_enforced = hw >= kScaleThreads && n_tables >= kAcceptanceScale;

  // ----------------------------------------------------------------- JSON
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"bench_serving (RCU snapshot readers: mixed-traffic "
         "scaling + torture appends)\",\n"
      << "  \"corpus_tables\": " << n_tables << ",\n"
      << "  \"mappings\": " << svc.num_mappings() << ",\n"
      << "  \"batch_size\": " << kBatchSize << ",\n"
      << "  \"phase_seconds\": " << kPhaseSeconds << ",\n"
      << "  \"threads_scaled\": " << kScaleThreads << ",\n"
      << "  \"lookups_per_sec_1t\": " << one.lookups_per_sec() << ",\n"
      << "  \"p50_us_1t\": " << one.p50_us << ",\n"
      << "  \"p99_us_1t\": " << one.p99_us << ",\n"
      << "  \"lookups_per_sec_nt\": " << many.lookups_per_sec() << ",\n"
      << "  \"p50_us_nt\": " << many.p50_us << ",\n"
      << "  \"p99_us_nt\": " << many.p99_us << ",\n"
      << "  \"scaling\": " << scaling << ",\n"
      << "  \"torture_appended_tables\": " << appended << ",\n"
      << "  \"torture_seconds\": " << torture_s << ",\n"
      << "  \"torture_reads\": " << torture_reads.load() << ",\n"
      << "  \"torn_reads\": " << torn.load() << ",\n"
      << "  \"mapping_divergence\": " << divergence << ",\n"
      << "  \"hardware_concurrency\": " << hw << ",\n"
      << "  \"gate_enforced\": " << (gate_enforced ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  std::remove(tsv.c_str());

  // Correctness gates hold at every scale.
  if (torn.load() != 0) {
    std::cerr << "FAIL: " << torn.load() << " torn snapshot observations\n";
    return 1;
  }
  if (divergence != 0) {
    std::cerr << "FAIL: torture end state diverges from a cold rebuild\n";
    return 1;
  }
  if (torture_reads.load() == 0) {
    std::cerr << "FAIL: torture phase recorded no concurrent reads\n";
    return 1;
  }
  // The scaling bar needs the cores to exist; smoke runs and small boxes
  // record the measurement without enforcing it.
  if (gate_enforced && scaling < 4.0) {
    std::cerr << "FAIL: " << kScaleThreads << "-thread lookup scaling "
              << scaling << "x below the 4x acceptance bar\n";
    return 1;
  }
  return 0;
}
