// Shared plumbing for the figure-reproduction benchmark binaries: standard
// world construction, evaluation shortcuts, and report formatting.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "corpusgen/generator.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "synth/pipeline.h"

namespace ms::bench {

/// The standard web world used by Figures 7/8/14/15 (seed fixed so every
/// binary reports on the same corpus).
inline GeneratedWorld StandardWebWorld(double popularity_scale = 1.0,
                                       uint64_t seed = 42) {
  GeneratorOptions opts;
  opts.seed = seed;
  opts.popularity_scale = popularity_scale;
  return GenerateWebWorld(opts);
}

/// Relations view over synthesized mappings.
inline std::vector<BinaryTable> Relations(
    const std::vector<SynthesizedMapping>& mappings) {
  std::vector<BinaryTable> out;
  out.reserve(mappings.size());
  for (const auto& m : mappings) out.push_back(m.merged);
  return out;
}

/// Per-case scores of a relation set against the world's benchmark.
inline std::vector<PrfScore> ScoreCases(
    const std::vector<BinaryTable>& relations, const GeneratedWorld& world) {
  std::vector<PrfScore> out;
  out.reserve(world.cases.size());
  for (const auto& c : world.cases) {
    out.push_back(FindBestRelation(relations, c.ground_truth).score);
  }
  return out;
}

inline std::string F(double v, int p = 3) { return FormatDouble(v, p); }

/// Prints the corpus header every figure binary leads with.
inline void PrintWorldSummary(const GeneratedWorld& world) {
  std::cout << "corpus: " << world.corpus.size() << " tables, "
            << world.corpus.TotalColumns() << " columns, "
            << world.cases.size() << " benchmark cases\n";
}

}  // namespace ms::bench
