// End-to-end application demo: synthesize mappings from a corpus, load them
// into the indexed MappingStore, and replay the paper's three motivating
// scenarios — auto-correction (Table 3), auto-fill (Table 4), and auto-join
// (Table 5) — on dirty user data the pipeline has never seen.
#include <iostream>

#include "apps/auto_correct.h"
#include "apps/auto_fill.h"
#include "apps/auto_join.h"
#include "apps/mapping_store.h"
#include "corpusgen/generator.h"
#include "synth/pipeline.h"

int main() {
  using namespace ms;

  // --- Synthesize mappings from a generated web corpus.
  GeneratorOptions gen;
  gen.seed = 42;
  GeneratedWorld world = GenerateWebWorld(gen);
  SynthesisPipeline pipeline{SynthesisOptions{}};
  SynthesisResult result = pipeline.Run(world.corpus);
  std::cout << "synthesized " << result.mappings.size()
            << " curated mapping relationships\n";

  // --- Load them into the store (this is the "curation output" artifact).
  MappingStore store(world.corpus.shared_pool());
  for (auto& m : result.mappings) {
    std::string name = m.left_label + "->" + m.right_label;
    store.Add(std::move(m), std::move(name));
  }

  // --- Scenario 1: auto-correction (paper Table 3). A column mixing full
  // state names with abbreviations.
  std::cout << "\n--- auto-correct (Table 3) ---\n";
  std::vector<std::string> residence = {"California", "Washington", "Oregon",
                                        "CA", "WA"};
  AutoCorrectResult corr = SuggestCorrections(store, residence);
  if (corr.inconsistency_detected) {
    std::cout << "inconsistent column detected via mapping '"
              << store.name(corr.mapping_index) << "'\n";
    for (const auto& s : corr.suggestions) {
      std::cout << "  row " << s.row << ": '" << s.original << "' -> '"
                << s.suggestion << "'\n";
    }
  } else {
    std::cout << "no inconsistency detected\n";
  }

  // --- Scenario 2: auto-fill (paper Table 4). City column plus one
  // example state; the system infers the intent and fills the rest.
  std::cout << "\n--- auto-fill (Table 4) ---\n";
  std::vector<std::string> cities = {"San Francisco", "Seattle",
                                     "Los Angeles", "Houston", "Denver"};
  AutoFillResult fill = AutoFill(store, cities, {{0, "California"}});
  if (fill.mapping_index >= 0) {
    std::cout << "intent matched mapping '" << store.name(fill.mapping_index)
              << "'\n";
    for (size_t r = 0; r < cities.size(); ++r) {
      std::cout << "  " << cities[r] << " -> " << fill.values[r]
                << (fill.filled[r] ? "  (auto)" : "  (user)") << "\n";
    }
  } else {
    std::cout << "no mapping matched the examples\n";
  }

  // --- Scenario 3: auto-join (paper Table 5). A market-cap table keyed by
  // ticker joined against a contributions table keyed by company name.
  std::cout << "\n--- auto-join (Table 5) ---\n";
  std::vector<std::string> tickers = {"GE", "WMT", "MSFT", "ORCL"};
  std::vector<std::string> companies = {"General Electric", "Walmart",
                                        "Oracle", "Microsoft Corporation"};
  AutoJoinResult join = AutoJoin(store, tickers, companies);
  if (join.mapping_index >= 0) {
    std::cout << "bridged via mapping '" << store.name(join.mapping_index)
              << "' (" << join.pairs.size() << " joined rows)\n";
    for (const auto& p : join.pairs) {
      std::cout << "  " << tickers[p.left_row] << " <-> "
                << companies[p.right_row] << "\n";
    }
  } else {
    std::cout << "no bridging mapping found\n";
  }
  return 0;
}
