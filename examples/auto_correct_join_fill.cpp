// End-to-end application demo: stand up a MappingService (the serving-style
// façade over the staged synthesis session + indexed MappingStore) and
// replay the paper's three motivating scenarios — auto-correction
// (Table 3), auto-fill (Table 4), and auto-join (Table 5) — on dirty user
// data the pipeline has never seen. A final warm re-synthesis with a
// tweaked scoring threshold shows the service reusing its materialized
// extraction + blocking artifacts instead of re-running the whole pipeline.
#include <iostream>

#include "apps/serving.h"
#include "corpusgen/generator.h"

int main() {
  using namespace ms;

  // --- Synthesize mappings from a generated web corpus through the
  // service. Failures propagate as Status instead of an empty store.
  GeneratorOptions gen;
  gen.seed = 42;
  GeneratedWorld world = GenerateWebWorld(gen);
  MappingService service{SynthesisOptions{}};
  Status st = service.Synthesize(world.corpus);
  if (!st.ok()) {
    std::cerr << "synthesis failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "synthesized " << service.num_mappings()
            << " curated mapping relationships\n";

  // --- Scenario 1: auto-correction (paper Table 3). A column mixing full
  // state names with abbreviations.
  std::cout << "\n--- auto-correct (Table 3) ---\n";
  std::vector<std::string> residence = {"California", "Washington", "Oregon",
                                        "CA", "WA"};
  AutoCorrectResult corr = service.SuggestCorrections(residence);
  if (corr.inconsistency_detected) {
    std::cout << "inconsistent column detected via mapping '"
              << service.store().name(corr.mapping_index) << "'\n";
    for (const auto& s : corr.suggestions) {
      std::cout << "  row " << s.row << ": '" << s.original << "' -> '"
                << s.suggestion << "'\n";
    }
  } else {
    std::cout << "no inconsistency detected\n";
  }

  // --- Scenario 2: auto-fill (paper Table 4). City column plus one
  // example state; the system infers the intent and fills the rest.
  std::cout << "\n--- auto-fill (Table 4) ---\n";
  std::vector<std::string> cities = {"San Francisco", "Seattle",
                                     "Los Angeles", "Houston", "Denver"};
  AutoFillResult fill = service.AutoFill(cities, {{0, "California"}});
  if (fill.mapping_index >= 0) {
    std::cout << "intent matched mapping '"
              << service.store().name(fill.mapping_index) << "'\n";
    for (size_t r = 0; r < cities.size(); ++r) {
      std::cout << "  " << cities[r] << " -> " << fill.values[r]
                << (fill.filled[r] ? "  (auto)" : "  (user)") << "\n";
    }
  } else {
    std::cout << "no mapping matched the examples\n";
  }

  // --- Scenario 3: auto-join (paper Table 5). A market-cap table keyed by
  // ticker joined against a contributions table keyed by company name.
  std::cout << "\n--- auto-join (Table 5) ---\n";
  std::vector<std::string> tickers = {"GE", "WMT", "MSFT", "ORCL"};
  std::vector<std::string> companies = {"General Electric", "Walmart",
                                        "Oracle", "Microsoft Corporation"};
  AutoJoinResult join = service.AutoJoin(tickers, companies);
  if (join.mapping_index >= 0) {
    std::cout << "bridged via mapping '"
              << service.store().name(join.mapping_index) << "' ("
              << join.pairs.size() << " joined rows)\n";
    for (const auto& p : join.pairs) {
      std::cout << "  " << tickers[p.left_row] << " <-> "
                << companies[p.right_row] << "\n";
    }
  } else {
    std::cout << "no bridging mapping found\n";
  }

  // --- Warm re-synthesis: a curator tightens the approximate-matching cap;
  // only scoring onward re-runs (extraction and blocking artifacts reused).
  std::cout << "\n--- warm re-synthesis (edit cap 10 -> 6) ---\n";
  SynthesisOptions tweaked;
  tweaked.compat.edit.cap = 6;
  st = service.Resynthesize(tweaked);
  if (!st.ok()) {
    std::cerr << "re-synthesis failed: " << st.ToString() << "\n";
    return 1;
  }
  const auto& ss = service.session_stats();
  std::cout << "store now holds " << service.num_mappings()
            << " mappings; stage runs so far: " << ss.extract_runs
            << " extract, " << ss.blocking_runs << " blocking, "
            << ss.scoring_runs << " scoring (extraction + blocking were "
            << "reused)\n";
  return 0;
}
