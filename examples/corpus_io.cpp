// Corpus ETL demo: generate a corpus, persist it to the line-oriented TSV
// format, reload it through the session's corpus-file entry point, and
// verify the synthesis pipeline produces identical mappings from the
// round-tripped corpus — the workflow a user with their own table dump
// would follow. Also demonstrates Status propagation: loading a corrupt
// dump fails loudly instead of synthesizing zero mappings from it.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>

#include "corpusgen/generator.h"
#include "synth/session.h"
#include "table/tsv.h"

int main() {
  using namespace ms;
  const std::string path = "/tmp/mapsynth_corpus.tsv";

  // --- Generate and persist.
  GeneratorOptions gen;
  gen.seed = 99;
  gen.popularity_scale = 0.4;  // keep the demo snappy
  GeneratedWorld world = GenerateWebWorld(gen);
  Status st = SaveCorpus(world.corpus, path);
  if (!st.ok()) {
    std::cerr << "save failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "saved " << world.corpus.size() << " tables to " << path
            << "\n";

  // --- Synthesize from the in-memory corpus and from the reloaded file
  // with the same session (thread pool and matcher caches are reused).
  SynthesisSession session{SynthesisOptions{}};
  auto original = session.Run(world.corpus);
  if (!original.ok()) {
    std::cerr << "synthesis failed: " << original.status().ToString() << "\n";
    return 1;
  }

  TableCorpus reloaded;  // caller-owned: mappings reference its pool
  auto roundtrip = session.RunOnCorpusFile(path, &reloaded);
  if (!roundtrip.ok()) {
    std::cerr << "load-and-run failed: " << roundtrip.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "reloaded " << reloaded.size() << " tables ("
            << reloaded.pool().size() << " distinct strings)\n";

  std::multiset<size_t> sizes_a, sizes_b;
  for (const auto& m : original.value().mappings) sizes_a.insert(m.size());
  for (const auto& m : roundtrip.value().mappings) sizes_b.insert(m.size());

  std::cout << "mappings from original corpus:     "
            << original.value().mappings.size() << "\n"
            << "mappings from round-tripped corpus: "
            << roundtrip.value().mappings.size() << "\n"
            << "identical mapping-size profile:     "
            << (sizes_a == sizes_b ? "yes" : "NO — TSV round-trip is lossy!")
            << "\n";

  // --- Status propagation: a corrupt dump (or a missing file) is an error
  // the caller sees, not an empty result.
  TableCorpus scratch;
  auto missing = session.RunOnCorpusFile("/tmp/does_not_exist.tsv", &scratch);
  std::cout << "\nloading a missing file: "
            << (missing.ok() ? "unexpectedly succeeded!"
                             : missing.status().ToString())
            << "\n";

  std::remove(path.c_str());
  return sizes_a == sizes_b && !missing.ok() ? 0 : 1;
}
