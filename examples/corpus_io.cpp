// Corpus ETL demo: generate a corpus, persist it to the line-oriented TSV
// format, reload it, and verify the synthesis pipeline produces identical
// mappings from the round-tripped corpus — the workflow a user with their
// own table dump would follow (save your extraction into this format and
// run the pipeline on it).
#include <cstdio>
#include <iostream>
#include <set>

#include "corpusgen/generator.h"
#include "synth/pipeline.h"
#include "table/tsv.h"

int main() {
  using namespace ms;
  const std::string path = "/tmp/mapsynth_corpus.tsv";

  // --- Generate and persist.
  GeneratorOptions gen;
  gen.seed = 99;
  gen.popularity_scale = 0.4;  // keep the demo snappy
  GeneratedWorld world = GenerateWebWorld(gen);
  Status st = SaveCorpus(world.corpus, path);
  if (!st.ok()) {
    std::cerr << "save failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "saved " << world.corpus.size() << " tables to " << path
            << "\n";

  // --- Reload into a fresh corpus (fresh string pool, fresh ids).
  TableCorpus reloaded;
  st = LoadCorpus(path, &reloaded);
  if (!st.ok()) {
    std::cerr << "load failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "reloaded " << reloaded.size() << " tables ("
            << reloaded.pool().size() << " distinct strings)\n";

  // --- Synthesize from both and compare the outputs.
  SynthesisPipeline pipeline{SynthesisOptions{}};
  SynthesisResult original = pipeline.Run(world.corpus);
  SynthesisResult roundtrip = pipeline.Run(reloaded);

  std::multiset<size_t> sizes_a, sizes_b;
  for (const auto& m : original.mappings) sizes_a.insert(m.size());
  for (const auto& m : roundtrip.mappings) sizes_b.insert(m.size());

  std::cout << "mappings from original corpus:     "
            << original.mappings.size() << "\n"
            << "mappings from round-tripped corpus: "
            << roundtrip.mappings.size() << "\n"
            << "identical mapping-size profile:     "
            << (sizes_a == sizes_b ? "yes" : "NO — TSV round-trip is lossy!")
            << "\n";
  std::remove(path.c_str());
  return sizes_a == sizes_b ? 0 : 1;
}
