// Curation workflow demo (paper Section 4.3): synthesized mappings come
// popularity-ranked with provenance statistics so a human curator reviews a
// short list instead of millions of raw tables. This example prints the
// review queue a curator would see, flags likely-temporal and numeric
// relationships for extra scrutiny, and shows the effect of the popularity
// cutoff.
#include <iostream>

#include "common/string_util.h"
#include "corpusgen/generator.h"
#include "eval/report.h"
#include "synth/redundancy.h"
#include "synth/session.h"
#include "synth/temporal.h"
#include "text/normalize.h"

int main() {
  using namespace ms;
  GeneratorOptions gen;
  gen.seed = 7;
  GeneratedWorld world = GenerateWebWorld(gen);

  // Keep everything (min_domains = 1) so the cutoff effect is visible.
  SynthesisOptions opts;
  opts.min_domains = 1;
  opts.min_pairs = 2;
  SynthesisSession session(opts);
  auto run = session.Run(world.corpus);
  if (!run.ok()) {
    std::cerr << "synthesis failed: " << run.status().ToString() << "\n";
    return 1;
  }
  SynthesisResult result = std::move(run).value();

  // --- Consolidate redundant clusters first (Appendix K): fewer, larger
  // entries for the curator to review.
  auto red = ConsolidateRedundantMappings(&result.mappings,
                                          world.corpus.pool());
  std::cout << "redundancy consolidation: " << red.clusters_in << " -> "
            << red.clusters_out << " clusters (" << red.merges
            << " merges)\n";

  // --- Flag snapshot families (Appendix J) for extra curator scrutiny.
  auto temporal_flags =
      DetectTemporalMappings(result.mappings, world.corpus.pool());

  // --- Popularity cutoff: how fast does the review queue shrink?
  PrintBanner(std::cout, "review queue size vs popularity cutoff");
  TextTable cutoff({"min domains", "mappings to review"});
  for (size_t min_domains : {1, 2, 4, 8}) {
    size_t n = 0;
    for (const auto& m : result.mappings) n += m.num_domains >= min_domains;
    cutoff.AddRow({std::to_string(min_domains), std::to_string(n)});
  }
  cutoff.Print(std::cout);

  // --- The top of the queue, annotated the way a curator would see it.
  PrintBanner(std::cout, "curation queue (top 12 by popularity)");
  TextTable queue({"label", "pairs", "domains", "tables", "flags"});
  const StringPool& pool = world.corpus.pool();
  size_t shown = 0;
  for (size_t mi = 0; mi < result.mappings.size(); ++mi) {
    const auto& m = result.mappings[mi];
    if (m.num_domains < 4) continue;
    if (++shown > 12) break;
    // Cheap curation heuristics: numeric or temporal right columns get a
    // review flag (Section 4.3: "additional filtering can be performed to
    // further prune out numeric and temporal relationships").
    size_t numeric = 0, temporal = 0;
    for (const auto& p : m.merged.pairs()) {
      std::string_view r = pool.Get(p.right);
      numeric += LooksNumeric(r);
      temporal += LooksTemporal(r);
    }
    std::string flags;
    if (numeric * 2 > m.size()) flags += "[numeric-right]";
    if (temporal * 2 > m.size()) flags += "[temporal-right]";
    if (m.LeftPerRight() > 1.5) flags += "[synonym-rich]";
    if (mi < temporal_flags.is_temporal.size() &&
        temporal_flags.is_temporal[mi]) {
      flags += "[snapshot-family]";
    }
    queue.AddRow({m.left_label + " -> " + m.right_label,
                  std::to_string(m.size()), std::to_string(m.num_domains),
                  std::to_string(m.kept_tables.size()), flags});
  }
  queue.Print(std::cout);

  // --- Drill into one mapping like a curator approving it row by row.
  PrintBanner(std::cout, "drill-down of the most popular mapping");
  if (!result.mappings.empty()) {
    const auto& top = result.mappings.front();
    std::cout << top.left_label << " -> " << top.right_label << " ("
              << top.size() << " pairs from " << top.kept_tables.size()
              << " tables across " << top.num_domains << " domains; "
              << (top.member_tables.size() - top.kept_tables.size())
              << " tables dropped by conflict resolution)\n";
    size_t rows = 0;
    for (const auto& p : top.merged.pairs()) {
      if (++rows > 10) break;
      std::cout << "  " << pool.Get(p.left) << " | " << pool.Get(p.right)
                << "\n";
    }
  }
  return 0;
}
