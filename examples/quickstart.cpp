// Quickstart: generate a small web-table world, synthesize mapping
// relationships from it with the staged SynthesisSession API, and inspect
// the top results.
//
//   ./examples/quickstart [seed]
//
// This walks the whole public API surface: corpus generation, the staged
// pipeline (extract -> block -> score -> partition -> resolve, each stage a
// materialized artifact), a warm re-score under tweaked thresholds that
// reuses the blocking artifact verbatim, popularity-ranked mappings, and a
// quick precision/recall check against the generated ground truth.
#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "corpusgen/generator.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "synth/session.h"

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // --- 1. A corpus of web tables (substitute for a crawled corpus).
  ms::GeneratorOptions gen;
  gen.seed = seed;
  ms::GeneratedWorld world = ms::GenerateWebWorld(gen);
  std::cout << "corpus: " << world.corpus.size() << " tables, "
            << world.corpus.TotalColumns() << " columns, "
            << world.cases.size() << " benchmark relationships\n";

  // --- 2. Synthesize stage by stage. Every fallible step returns a
  // Status/Result; malformed options would be rejected up front.
  ms::SynthesisOptions opts;
  ms::SynthesisSession session(opts);
  if (!session.status().ok()) {
    std::cerr << "invalid options: " << session.status().ToString() << "\n";
    return 1;
  }

  auto cands = session.ExtractCandidates(world.corpus);
  if (!cands.ok()) {
    std::cerr << "extraction failed: " << cands.status().ToString() << "\n";
    return 1;
  }
  auto blocked = session.BlockPairs(cands.value());
  if (!blocked.ok()) {
    std::cerr << "blocking failed: " << blocked.status().ToString() << "\n";
    return 1;
  }
  auto graph = session.ScorePairs(cands.value(), blocked.value());
  if (!graph.ok()) {
    std::cerr << "scoring failed: " << graph.status().ToString() << "\n";
    return 1;
  }
  auto parts = session.Partition(graph.value());
  if (!parts.ok()) {
    std::cerr << "partitioning failed: " << parts.status().ToString() << "\n";
    return 1;
  }
  auto resolved = session.Resolve(cands.value(), graph.value(), parts.value());
  if (!resolved.ok()) {
    std::cerr << "synthesis failed: " << resolved.status().ToString() << "\n";
    return 1;
  }
  ms::SynthesisResult result = std::move(resolved).value();

  const auto& st = result.stats;
  std::cout << "extracted " << st.candidates << " candidate tables ("
            << ms::FormatDouble(100 * st.extraction.FilterRate(), 1)
            << "% of column pairs filtered), blocked " << st.candidate_pairs
            << " pairs, built " << st.graph_edges
            << " graph edges, synthesized " << st.mappings
            << " mappings in " << ms::FormatDouble(st.total_seconds, 2)
            << "s\n";

  // --- 3. Warm re-score: tighten the edit-distance cap and re-run scoring
  // onward. Extraction and blocking artifacts are reused verbatim — the
  // session stats prove neither stage ran again.
  ms::SynthesisOptions tweaked = opts;
  tweaked.compat.edit.cap = 4;
  if (session.UpdateOptions(tweaked).ok()) {
    auto rescore =
        session.FinishFromBlocked(cands.value(), blocked.value());
    if (rescore.ok()) {
      std::cout << "warm re-score (edit cap 10 -> 4): "
                << rescore.value().stats.mappings << " mappings; stage runs: "
                << session.session_stats().extract_runs << " extract, "
                << session.session_stats().blocking_runs << " blocking, "
                << session.session_stats().scoring_runs << " scoring\n";
    }
  }

  // --- 4. Show the most popular synthesized mappings.
  ms::TextTable table({"label", "pairs", "lefts", "rights", "domains",
                       "tables"});
  const ms::StringPool& pool = world.corpus.pool();
  size_t shown = 0;
  for (const auto& m : result.mappings) {
    if (++shown > 10) break;
    table.AddRow({m.left_label + " -> " + m.right_label,
                  std::to_string(m.size()),
                  std::to_string(m.NumLeftValues()),
                  std::to_string(m.NumRightValues()),
                  std::to_string(m.num_domains),
                  std::to_string(m.kept_tables.size())});
  }
  ms::PrintBanner(std::cout, "top synthesized mappings");
  table.Print(std::cout);

  // --- 5. Sample rows of the best mapping.
  if (!result.mappings.empty()) {
    const auto& top = result.mappings.front();
    ms::PrintBanner(std::cout, "sample of '" + top.left_label + " -> " +
                                   top.right_label + "'");
    size_t rows = 0;
    for (const auto& p : top.merged.pairs()) {
      if (++rows > 8) break;
      std::cout << "  " << pool.Get(p.left) << "  ->  " << pool.Get(p.right)
                << "\n";
    }
  }

  // --- 6. Score against the generated ground truth.
  double fsum = 0;
  std::vector<ms::BinaryTable> relations;
  for (const auto& m : result.mappings) relations.push_back(m.merged);
  for (const auto& c : world.cases) {
    fsum += ms::FindBestRelation(relations, c.ground_truth).score.fscore;
  }
  std::cout << "\naverage F-score over " << world.cases.size()
            << " ground-truth relationships: "
            << ms::FormatDouble(fsum / world.cases.size(), 3) << "\n";
  return 0;
}
