// Quickstart: generate a small web-table world, synthesize mapping
// relationships from it, and inspect the top results.
//
//   ./examples/quickstart [seed]
//
// This walks the whole public API surface: corpus generation, the synthesis
// pipeline, popularity-ranked mappings, and a quick precision/recall check
// against the generated ground truth.
#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "corpusgen/generator.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "synth/pipeline.h"

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // --- 1. A corpus of web tables (substitute for a crawled corpus).
  ms::GeneratorOptions gen;
  gen.seed = seed;
  ms::GeneratedWorld world = ms::GenerateWebWorld(gen);
  std::cout << "corpus: " << world.corpus.size() << " tables, "
            << world.corpus.TotalColumns() << " columns, "
            << world.cases.size() << " benchmark relationships\n";

  // --- 2. Synthesize mapping relationships.
  ms::SynthesisOptions opts;
  ms::SynthesisPipeline pipeline(opts);
  ms::SynthesisResult result = pipeline.Run(world.corpus);
  const auto& st = result.stats;
  std::cout << "extracted " << st.candidates << " candidate tables ("
            << ms::FormatDouble(100 * st.extraction.FilterRate(), 1)
            << "% of column pairs filtered), built " << st.graph_edges
            << " graph edges, synthesized " << st.mappings
            << " mappings in " << ms::FormatDouble(st.total_seconds, 2)
            << "s\n";

  // --- 3. Show the most popular synthesized mappings.
  ms::TextTable table({"label", "pairs", "lefts", "rights", "domains",
                       "tables"});
  const ms::StringPool& pool = world.corpus.pool();
  size_t shown = 0;
  for (const auto& m : result.mappings) {
    if (++shown > 10) break;
    table.AddRow({m.left_label + " -> " + m.right_label,
                  std::to_string(m.size()),
                  std::to_string(m.NumLeftValues()),
                  std::to_string(m.NumRightValues()),
                  std::to_string(m.num_domains),
                  std::to_string(m.kept_tables.size())});
  }
  ms::PrintBanner(std::cout, "top synthesized mappings");
  table.Print(std::cout);

  // --- 4. Sample rows of the best mapping.
  if (!result.mappings.empty()) {
    const auto& top = result.mappings.front();
    ms::PrintBanner(std::cout, "sample of '" + top.left_label + " -> " +
                                   top.right_label + "'");
    size_t rows = 0;
    for (const auto& p : top.merged.pairs()) {
      if (++rows > 8) break;
      std::cout << "  " << pool.Get(p.left) << "  ->  " << pool.Get(p.right)
                << "\n";
    }
  }

  // --- 5. Score against the generated ground truth.
  double fsum = 0;
  std::vector<ms::BinaryTable> relations;
  for (const auto& m : result.mappings) relations.push_back(m.merged);
  for (const auto& c : world.cases) {
    fsum += ms::FindBestRelation(relations, c.ground_truth).score.fscore;
  }
  std::cout << "\naverage F-score over " << world.cases.size()
            << " ground-truth relationships: "
            << ms::FormatDouble(fsum / world.cases.size(), 3) << "\n";
  return 0;
}
