// The remote serving story end to end: synthesize a corpus into a
// MappingService, put the epoll TCP server (net/server.h) in front of it
// on an ephemeral loopback port, and talk to it through the blocking
// client (net/client.h) — all five request types plus server metrics.
// Demonstrates the pieces a real deployment composes:
//
//   - every response carries the serving snapshot's version and mapping
//     count in its header, so the client detects a live append the moment
//     its next response arrives (no polling endpoint needed);
//   - server metrics flow two ways: a Stats wire request for remote
//     operators, and ServiceHealth::remote for whoever already monitors
//     the service in-process;
//   - a malformed frame is answered with a clean error and a connection
//     close — the serving loop shrugs it off;
//   - the MetricsText scrape exposes the full observability surface
//     (docs/observability.md) mid-traffic, including the snapshot-version
//     gauge bumping across a live transition.
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "apps/serving.h"
#include "corpusgen/generator.h"
#include "net/client.h"
#include "net/server.h"
#include "synth/session.h"

namespace {

/// Pulls one `name value` / `name{...} value` sample out of an exposition
/// scrape ("?" if absent) — what a real scraper's parser does, minus the
/// parser.
std::string SeriesValue(const std::string& text, const std::string& name) {
  const size_t pos = text.find(name);
  if (pos == std::string::npos) return "?";
  const size_t eol = text.find('\n', pos);
  const std::string line = text.substr(pos, eol - pos);
  return line.substr(line.rfind(' ') + 1);
}

}  // namespace

int main() {
  using namespace ms;

  SynthesisOptions options;
  options.num_threads = 4;

  // --- Synthesize a world and stand the server up in front of it.
  GeneratorOptions gen;
  gen.seed = 2026;
  gen.popularity_scale = 0.4;  // keep the demo snappy
  GeneratedWorld world = GenerateWebWorld(gen);

  MappingService service(options);
  if (Status st = service.Synthesize(world.corpus); !st.ok()) {
    std::cerr << "synthesize failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "synthesized " << service.num_mappings() << " mappings from "
            << world.corpus.size() << " tables\n";

  net::ServerOptions sopts;  // port 0 = ephemeral; 2 worker event loops
  net::MappingServer server(service, sopts);
  if (Status st = server.Start(); !st.ok()) {
    std::cerr << "server start failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "serving on 127.0.0.1:" << server.port() << "\n";

  // --- A remote client exercises every request type.
  auto connected = net::MappingClient::Connect("127.0.0.1", server.port());
  if (!connected.ok()) {
    std::cerr << "connect failed: " << connected.status().ToString() << "\n";
    return 1;
  }
  net::MappingClient client = std::move(connected.value());

  // Pull some real keys out of the served snapshot for the demo queries.
  const auto snap = service.AcquireSnapshot();
  std::vector<std::string> keys, codes;
  for (const auto& m : snap->result->mappings) {
    for (const auto& p : m.merged.pairs()) {
      if (keys.size() < 6) {
        keys.emplace_back(snap->pool->Get(p.left));
        codes.emplace_back(snap->pool->Get(p.right));
      }
    }
    if (keys.size() >= 6) break;
  }
  if (keys.empty()) {
    std::cerr << "no mappings to demo against\n";
    return 1;
  }

  {
    auto r = client.LookupBatch(0, keys);
    if (!r.ok()) {
      std::cerr << "LookupBatch failed: " << r.status().ToString() << "\n";
      return 1;
    }
    size_t hits = 0;
    for (const auto& v : r.value()) hits += v.has_value();
    std::cout << "LookupBatch: " << hits << "/" << keys.size()
              << " keys resolved against mapping 0 (snapshot v"
              << client.last_header().health.snapshot_version << ")\n";
  }
  {
    auto r = client.SuggestCorrections(codes);
    if (!r.ok()) {
      std::cerr << "SuggestCorrections failed: " << r.status().ToString()
                << "\n";
      return 1;
    }
    std::cout << "SuggestCorrections: mapping " << r.value().mapping_index
              << ", " << r.value().suggestions.size() << " suggestions\n";
  }
  {
    auto r = client.AutoFill(keys, {{0, codes[0]}});
    if (!r.ok()) {
      std::cerr << "AutoFill failed: " << r.status().ToString() << "\n";
      return 1;
    }
    std::cout << "AutoFill: filled " << r.value().num_filled << " of "
              << keys.size() << " rows\n";
  }
  {
    auto r = client.AutoJoin(keys, codes);
    if (!r.ok()) {
      std::cerr << "AutoJoin failed: " << r.status().ToString() << "\n";
      return 1;
    }
    std::cout << "AutoJoin: " << r.value().pairs.size()
              << " joined row pairs via mapping " << r.value().mapping_index
              << "\n";
  }
  {
    auto r = client.Health();
    if (!r.ok()) {
      std::cerr << "Health failed: " << r.status().ToString() << "\n";
      return 1;
    }
    std::cout << "Health: generation "
              << client.last_header().health.generation_served
              << ", degraded=" << client.last_header().health.degraded
              << ", retries=" << r.value().retries_performed << "\n";
  }

  // --- Scrape live metrics mid-traffic: everything the process recorded
  // (synthesis stages, serving latencies, env IO counters) plus this
  // server's per-type request series, as Prometheus-style text.
  std::string scrape_before;
  {
    auto r = client.MetricsText();
    if (!r.ok()) {
      std::cerr << "MetricsText failed: " << r.status().ToString() << "\n";
      return 1;
    }
    scrape_before = std::move(r.value());
    std::cout << "MetricsText: " << scrape_before.size()
              << " bytes scraped mid-traffic, e.g.\n"
              << "  ms_synth_stage_us_count{stage=\"extract\"} = "
              << SeriesValue(scrape_before,
                             "ms_synth_stage_us_count{stage=\"extract\"}")
              << "\n  ms_serving_publish_us_count = "
              << SeriesValue(scrape_before, "ms_serving_publish_us_count ")
              << "\n  ms_net_requests_total{type=\"lookup_batch\"} = "
              << SeriesValue(scrape_before,
                             "ms_net_requests_total{type=\"lookup_batch\"}")
              << "\n  ms_net_request_us_count{type=\"auto_join\"} = "
              << SeriesValue(scrape_before,
                             "ms_net_request_us_count{type=\"auto_join\"}")
              << "\n";
  }

  // --- A live transition is visible on the very next response: the writer
  // re-publishes, and the client's next header carries the new version.
  const uint64_t v_before = client.last_header().health.snapshot_version;
  if (Status st = service.Resynthesize(options); !st.ok()) {
    std::cerr << "resynthesize failed: " << st.ToString() << "\n";
    return 1;
  }
  if (auto r = client.Health(); !r.ok()) {
    std::cerr << "post-transition Health failed: " << r.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "live transition: snapshot v" << v_before << " -> v"
            << client.last_header().health.snapshot_version
            << " observed on the same connection (monotone: "
            << (client.version_regressed() ? "VIOLATED" : "yes") << ")\n";

  // The same transition shows up in the next scrape: the snapshot-version
  // gauge bumps and the transition counter ticks.
  if (auto r = client.MetricsText(); r.ok()) {
    std::cout << "scrape across the transition: ms_serving_snapshot_version "
              << SeriesValue(scrape_before, "ms_serving_snapshot_version ")
              << " -> "
              << SeriesValue(r.value(), "ms_serving_snapshot_version ")
              << ", ms_serving_transitions_total "
              << SeriesValue(scrape_before, "ms_serving_transitions_total ")
              << " -> "
              << SeriesValue(r.value(), "ms_serving_transitions_total ")
              << "\n";
  }

  // --- Metrics, both ways: over the wire and folded into ServiceHealth.
  if (auto r = client.Stats(); r.ok()) {
    std::cout << "Stats: " << r.value().total_requests << " requests, "
              << r.value().bytes_in << " bytes in, " << r.value().bytes_out
              << " bytes out, " << r.value().connections_active
              << " active connections\n";
  }
  const ServiceHealth h = service.health();
  std::cout << "ServiceHealth::remote: " << h.remote.requests
            << " requests served remotely\n";

  server.Stop();
  std::cout << "server stopped cleanly\n";
  return 0;
}
