// The restart story end to end: synthesize once, persist the session's
// artifacts to a checksummed snapshot, tear the whole process state down,
// then restore into a brand-new service and serve an auto-join immediately
// — no extraction, no blocking, no scoring on the restart path. Also
// demonstrates the failure taxonomy: a corrupted snapshot refuses to load
// with DataLoss, and a snapshot saved under different options refuses with
// FailedPrecondition. The final act is the production shape: generational
// rotation (SaveSnapshotRotating) and last-good fallback serving
// (OpenLatestSnapshot) — the newest generation is corrupted on disk, yet
// the service comes back up on the previous one, quarantining the bad
// file and reporting the degradation through health().
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/serving.h"
#include "corpusgen/generator.h"
#include "persist/rotation.h"
#include "synth/session.h"

#ifndef MS_PERSIST_SCRATCH_DIR
#define MS_PERSIST_SCRATCH_DIR "."
#endif

int main() {
  using namespace ms;
  const std::string path =
      std::string(MS_PERSIST_SCRATCH_DIR) + "/snapshot_serving.mssnap";

  SynthesisOptions options;
  options.num_threads = 4;

  // --- Day 0: synthesize from the corpus and persist the session.
  GeneratorOptions gen;
  gen.seed = 2026;
  gen.popularity_scale = 0.4;  // keep the demo snappy
  GeneratedWorld world = GenerateWebWorld(gen);
  {
    MappingService service(options);
    Status st = service.Synthesize(world.corpus);
    if (!st.ok()) {
      std::cerr << "synthesize failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "synthesized " << service.num_mappings()
              << " mappings from " << world.corpus.size() << " tables\n";
    st = service.SaveSnapshot(path);
    if (!st.ok()) {
      std::cerr << "save failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "saved snapshot to " << path << "\n";
  }  // service destroyed: every in-memory artifact is gone.

  // --- Day 1: a fresh process restores and serves. Note there is no
  // corpus anywhere in this block — the snapshot carries everything the
  // serving path needs (the string pool comes back as zero-copy views over
  // the mmap'd file).
  {
    MappingService restarted(options);
    Status st = restarted.OpenFromSnapshot(path);
    if (!st.ok()) {
      std::cerr << "restore failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "restored " << restarted.num_mappings()
              << " mappings; pipeline stages re-run: "
              << restarted.session_stats().scoring_runs << " scoring, "
              << restarted.session_stats().partition_runs << " partition\n";

    // Serve an auto-join straight off the restored store: join two columns
    // that only relate through a synthesized mapping (canonical entity
    // names against their codes, rows deliberately out of order).
    std::vector<std::string> left, right;
    for (const auto& spec : world.specs) {
      if (spec.entities.size() < 8) continue;
      for (size_t i = 0; i < 8; ++i) {
        left.push_back(spec.entities[i].left_forms.front());
        right.push_back(spec.entities[(i + 3) % 8].right);
      }
      break;
    }
    AutoJoinResult join = restarted.AutoJoin(left, right);
    if (join.mapping_index >= 0) {
      std::cout << "auto-join after restart: " << join.pairs.size() << "/"
                << left.size() << " rows joined via mapping '"
                << restarted.store().name(join.mapping_index) << "'\n";
    } else {
      std::cout << "auto-join after restart found no bridging mapping\n";
    }
  }

  // --- Failure taxonomy: corruption is DataLoss...
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 3] ^= 0x20;
    const std::string bad = path + ".corrupt";
    std::ofstream out(bad, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    MappingService service(options);
    Status st = service.OpenFromSnapshot(bad);
    std::cout << "corrupted snapshot: " << st.ToString() << "\n";
    std::remove(bad.c_str());
  }

  // --- ...and an options mismatch is FailedPrecondition.
  {
    SynthesisOptions different = options;
    different.compat.edit.cap = 4;
    MappingService service(different);
    Status st = service.OpenFromSnapshot(path);
    std::cout << "mismatched options: " << st.ToString() << "\n";
  }

  // --- Production shape: generational rotation + last-good fallback.
  const std::string rotation_dir =
      std::string(MS_PERSIST_SCRATCH_DIR) + "/snapshot_serving_rotation";
  {
    std::error_code ec;
    std::filesystem::remove_all(rotation_dir, ec);

    // A writer commits two generations (a real deployment would rotate on
    // an ingest cadence; retention keeps the newest 3 by default).
    MappingService writer(options);
    Status st = writer.Synthesize(world.corpus);
    if (!st.ok()) {
      std::cerr << "synthesize failed: " << st.ToString() << "\n";
      return 1;
    }
    for (int gen = 1; gen <= 2; ++gen) {
      st = writer.SaveSnapshotRotating(rotation_dir);
      if (!st.ok()) {
        std::cerr << "rotating save failed: " << st.ToString() << "\n";
        return 1;
      }
    }
    std::cout << "\ncommitted generation "
              << writer.health().generation_served << " under "
              << rotation_dir << "\n";

    // Disaster strikes the newest generation on disk.
    const std::string newest =
        rotation_dir + "/" + persist::SnapshotFileName(2);
    std::ifstream in(newest, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    bytes[bytes.size() / 2] ^= 0x10;
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();

    // The restarted service still comes up: the recovery walk verifies
    // generation 2, finds DataLoss, quarantines it to *.corrupt (the bytes
    // are kept for post-mortem, the file never rejoins the rotation), and
    // serves generation 1.
    MappingService survivor(options);
    st = survivor.OpenLatestSnapshot(rotation_dir);
    if (!st.ok()) {
      std::cerr << "fallback open failed: " << st.ToString() << "\n";
      return 1;
    }
    const ServiceHealth health = survivor.health();
    std::cout << "recovered after corruption: serving generation "
              << health.generation_served << " with "
              << survivor.num_mappings() << " mappings ("
              << health.generations_skipped << " generation(s) skipped, "
              << (health.degraded() ? "degraded" : "healthy") << ")\n";
    for (const std::string& name : health.quarantined_files) {
      std::cout << "quarantined for post-mortem: " << name << "\n";
    }
    std::filesystem::remove_all(rotation_dir, ec);
  }

  std::remove(path.c_str());
  return 0;
}
