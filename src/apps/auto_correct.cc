#include "apps/auto_correct.h"

namespace ms {

AutoCorrectResult SuggestCorrections(const MappingStore& store,
                                     const std::vector<std::string>& column,
                                     const AutoCorrectOptions& options) {
  AutoCorrectResult result;
  if (column.empty()) return result;

  auto matches = store.FindByContainment(column, /*min_hits=*/2);
  for (const auto& m : matches) {
    const size_t covered = m.total();
    if (static_cast<double>(covered) <
        options.min_coverage * static_cast<double>(column.size())) {
      continue;
    }
    // Count per-row sides; one batched probe normalizes each distinct
    // column value once instead of once per row.
    const std::vector<ValueSide> sides = store.ProbeBatch(m.index, column);
    size_t lefts = 0, rights = 0;
    for (size_t r = 0; r < column.size(); ++r) {
      if (sides[r] == ValueSide::kLeft) ++lefts;
      if (sides[r] == ValueSide::kRight) ++rights;
    }
    if (lefts == 0 || rights == 0) {
      // Column is consistent w.r.t. this mapping; nothing to correct.
      continue;
    }
    const bool left_majority = lefts >= rights;
    const size_t minority = left_majority ? rights : lefts;
    if (minority < options.min_minority) continue;

    result.mapping_index = static_cast<int>(m.index);
    result.inconsistency_detected = true;
    for (size_t r = 0; r < column.size(); ++r) {
      if (left_majority && sides[r] == ValueSide::kRight) {
        auto fix = store.LookupLeft(m.index, column[r]);
        if (fix) result.suggestions.push_back({r, column[r], *fix});
      } else if (!left_majority && sides[r] == ValueSide::kLeft) {
        auto fix = store.LookupRight(m.index, column[r]);
        if (fix) result.suggestions.push_back({r, column[r], *fix});
      }
    }
    return result;
  }
  return result;
}

}  // namespace ms
