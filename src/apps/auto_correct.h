// Auto-correction (paper Table 3): detect a user column whose values mix the
// two sides of a known mapping (full state names and abbreviations in one
// column) and suggest rewriting the minority side to the majority side.
#pragma once

#include <string>
#include <vector>

#include "apps/mapping_store.h"

namespace ms {

struct CorrectionSuggestion {
  size_t row = 0;
  std::string original;
  std::string suggestion;
};

struct AutoCorrectResult {
  /// Mapping used, or -1 when no mapping explains the column.
  int mapping_index = -1;
  /// True when the column mixes both sides of the mapping.
  bool inconsistency_detected = false;
  std::vector<CorrectionSuggestion> suggestions;
};

struct AutoCorrectOptions {
  /// Minimum fraction of column values the mapping must cover.
  double min_coverage = 0.6;
  /// Minimum number of minority-side values to call it an inconsistency.
  size_t min_minority = 1;
};

/// Scans the store for a mapping explaining `column` and proposes
/// corrections for minority-representation values. Pure read over `store`:
/// safe to call from any number of threads against an immutable store
/// (serving calls go through MappingService, which binds each call to one
/// atomically-published ServingSnapshot — see docs/serving.md). Per-row
/// probes run through the store's batched lookups, so repeated column
/// values normalize and hash once.
AutoCorrectResult SuggestCorrections(const MappingStore& store,
                                     const std::vector<std::string>& column,
                                     const AutoCorrectOptions& options = {});

}  // namespace ms
