#include "apps/auto_fill.h"

#include "text/normalize.h"

namespace ms {

AutoFillResult AutoFill(
    const MappingStore& store, const std::vector<std::string>& keys,
    const std::vector<std::pair<size_t, std::string>>& examples,
    const AutoFillOptions& options) {
  AutoFillResult result;
  if (keys.empty() || examples.size() < options.min_examples) return result;

  auto matches = store.FindByContainment(keys, /*min_hits=*/2);
  for (const auto& m : matches) {
    // One batched lookup serves both the example-consistency check and the
    // fill loop: each distinct key is normalized and probed once.
    const std::vector<std::optional<std::string>> fills =
        store.LookupRightBatch(m.index, keys);
    // The mapping must reproduce every example (left -> right).
    bool consistent = true;
    for (const auto& [row, expected] : examples) {
      if (row >= keys.size() || !fills[row] ||
          *fills[row] != NormalizeCell(expected)) {
        consistent = false;
        break;
      }
    }
    if (!consistent) continue;

    result.mapping_index = static_cast<int>(m.index);
    result.values.assign(keys.size(), "");
    result.filled.assign(keys.size(), false);
    std::vector<bool> is_example(keys.size(), false);
    for (const auto& [row, expected] : examples) {
      result.values[row] = expected;
      is_example[row] = true;
    }
    for (size_t r = 0; r < keys.size(); ++r) {
      if (is_example[r]) continue;
      if (fills[r]) {
        result.values[r] = *fills[r];
        result.filled[r] = true;
        ++result.num_filled;
      }
    }
    return result;
  }
  return result;
}

}  // namespace ms
