// Auto-fill (paper Table 4): given a key column and a few example values the
// user typed, discover the intended mapping by matching the example pairs
// against the store and populate the remaining rows.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "apps/mapping_store.h"

namespace ms {

struct AutoFillResult {
  int mapping_index = -1;
  /// Per-row output; empty string when the mapping has no entry for a key.
  std::vector<std::string> values;
  /// True for rows the system filled (false = user-provided example).
  std::vector<bool> filled;
  size_t num_filled = 0;
};

struct AutoFillOptions {
  /// All user examples must be consistent with the chosen mapping.
  size_t min_examples = 1;
};

/// `examples` are (row index, expected value) pairs inside `keys`. Pure
/// read over `store`: thread-safe against an immutable store (the
/// MappingService serving path binds each call to one published
/// ServingSnapshot). Key lookups are batched — each distinct key
/// normalizes and probes once across the consistency check and the fill.
AutoFillResult AutoFill(
    const MappingStore& store, const std::vector<std::string>& keys,
    const std::vector<std::pair<size_t, std::string>>& examples,
    const AutoFillOptions& options = {});

}  // namespace ms
