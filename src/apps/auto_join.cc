#include "apps/auto_join.h"

#include <unordered_map>

#include "text/normalize.h"

namespace ms {
namespace {

/// Joins left_keys -> mapping -> right_keys assuming left keys live on
/// `use_left_side` of the mapping. Returns the joined pairs.
std::vector<JoinedRowPair> TryJoin(const MappingStore& store, size_t mi,
                                   bool use_left_side,
                                   const std::vector<std::string>& left_keys,
                                   const std::vector<std::string>& right_keys) {
  // Index right table keys by normalized value.
  std::unordered_map<std::string, std::vector<size_t>> right_index;
  for (size_t r = 0; r < right_keys.size(); ++r) {
    right_index[NormalizeCell(right_keys[r])].push_back(r);
  }
  // Bridge every left key in one batched lookup (distinct keys normalize
  // and probe once), then resolve against the right index.
  const std::vector<std::optional<std::string>> bridged =
      use_left_side ? store.LookupRightBatch(mi, left_keys)
                    : store.LookupLeftBatch(mi, left_keys);
  std::vector<JoinedRowPair> out;
  for (size_t l = 0; l < left_keys.size(); ++l) {
    if (!bridged[l]) continue;
    auto it = right_index.find(*bridged[l]);
    if (it == right_index.end()) continue;
    for (size_t r : it->second) out.push_back({l, r});
  }
  return out;
}

}  // namespace

AutoJoinResult AutoJoin(const MappingStore& store,
                        const std::vector<std::string>& left_keys,
                        const std::vector<std::string>& right_keys,
                        const AutoJoinOptions& options) {
  AutoJoinResult result;
  if (left_keys.empty() || right_keys.empty()) return result;

  // Candidate mappings must contain values from both key columns.
  std::vector<std::string> all_keys = left_keys;
  all_keys.insert(all_keys.end(), right_keys.begin(), right_keys.end());
  auto matches = store.FindByContainment(all_keys, /*min_hits=*/2);

  const size_t smaller = std::min(left_keys.size(), right_keys.size());
  for (const auto& m : matches) {
    auto forward = TryJoin(store, m.index, true, left_keys, right_keys);
    auto backward = TryJoin(store, m.index, false, left_keys, right_keys);
    const bool use_forward = forward.size() >= backward.size();
    auto& best = use_forward ? forward : backward;
    if (static_cast<double>(best.size()) >=
        options.min_join_rate * static_cast<double>(smaller)) {
      result.mapping_index = static_cast<int>(m.index);
      result.left_keys_are_left_side = use_forward;
      result.pairs = std::move(best);
      return result;
    }
  }
  return result;
}

}  // namespace ms
