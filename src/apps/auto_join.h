// Auto-join (paper Table 5): join two tables whose key columns use
// different representations (stock tickers vs company names) through a
// mapping table acting as the bridge of a three-way join — no user-provided
// correspondence needed.
#pragma once

#include <string>
#include <vector>

#include "apps/mapping_store.h"

namespace ms {

struct JoinedRowPair {
  size_t left_row = 0;
  size_t right_row = 0;
};

struct AutoJoinResult {
  int mapping_index = -1;
  /// True when left keys matched the mapping's left side (false: reversed).
  bool left_keys_are_left_side = true;
  std::vector<JoinedRowPair> pairs;
};

struct AutoJoinOptions {
  /// Minimum fraction of the smaller key set that must join.
  double min_join_rate = 0.3;
};

/// Finds the bridging mapping and the joined row pairs between key columns.
/// Pure read over `store`: thread-safe against an immutable store (the
/// MappingService serving path binds each call to one published
/// ServingSnapshot). Left keys bridge through one batched lookup per
/// direction instead of a per-row probe.
AutoJoinResult AutoJoin(const MappingStore& store,
                        const std::vector<std::string>& left_keys,
                        const std::vector<std::string>& right_keys,
                        const AutoJoinOptions& options = {});

}  // namespace ms
