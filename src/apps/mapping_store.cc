#include "apps/mapping_store.h"

#include <algorithm>

namespace ms {

namespace {
constexpr uint8_t kSideLeft = 1;
constexpr uint8_t kSideRight = 2;
}  // namespace

MappingStore::MappingStore(std::shared_ptr<StringPool> pool,
                           NormalizeOptions normalize,
                           size_t containment_index_shards)
    : pool_(std::move(pool)), normalize_(normalize) {
  shards_.resize(containment_index_shards);
}

size_t MappingStore::Add(SynthesizedMapping mapping, std::string name) {
  const size_t n = std::max<size_t>(mapping.size(), 1);
  Entry e{std::move(name), std::move(mapping), BloomFilter(n),
          BloomFilter(n), {}, {}};
  for (const auto& p : e.mapping.merged.pairs()) {
    std::string left(pool_->Get(p.left));
    std::string right(pool_->Get(p.right));
    e.left_bloom.Add(left);
    e.right_bloom.Add(right);
    e.left_to_right.emplace(left, right);
    e.right_to_left.emplace(std::move(right), std::move(left));
  }
  const uint32_t index = static_cast<uint32_t>(entries_.size());
  if (!shards_.empty()) IndexEntryValues(index, e);
  entries_.push_back(std::move(e));
  return entries_.size() - 1;
}

void MappingStore::IndexEntryValues(uint32_t entry_index, const Entry& e) {
  // One posting per (value, entry): merge the side bits so a value sitting
  // on both sides of the same mapping costs one posting, and containment
  // accumulation sees exactly what the scan's two map probes see.
  auto post = [&](const std::string& normed, uint8_t side) {
    auto& postings = shards_[ShardOf(normed)][normed];
    if (!postings.empty() && postings.back().entry == entry_index) {
      postings.back().sides |= side;
      return;
    }
    postings.push_back(Posting{entry_index, side});
  };
  for (const auto& [left, right] : e.left_to_right) post(left, kSideLeft);
  for (const auto& [right, left] : e.right_to_left) post(right, kSideRight);
}

ValueSide MappingStore::Probe(size_t i, const std::string& raw_value) const {
  const Entry& e = entries_[i];
  const std::string v = Norm(raw_value);
  bool left = e.left_bloom.MayContain(v) && e.left_to_right.count(v) > 0;
  bool right = e.right_bloom.MayContain(v) && e.right_to_left.count(v) > 0;
  if (left && right) return ValueSide::kBoth;
  if (left) return ValueSide::kLeft;
  if (right) return ValueSide::kRight;
  return ValueSide::kNone;
}

std::vector<size_t> MappingStore::DedupNormalized(
    const std::vector<std::string>& raw_values,
    std::vector<std::string>* distinct) const {
  std::vector<size_t> slot_of;
  slot_of.reserve(raw_values.size());
  std::unordered_map<std::string, size_t> slots;
  slots.reserve(raw_values.size());
  for (const auto& raw : raw_values) {
    std::string normed = Norm(raw);
    auto [it, inserted] = slots.emplace(std::move(normed), distinct->size());
    if (inserted) distinct->push_back(it->first);
    slot_of.push_back(it->second);
  }
  return slot_of;
}

std::vector<ValueSide> MappingStore::ProbeBatch(
    size_t i, const std::vector<std::string>& raw_values) const {
  const Entry& e = entries_[i];
  std::vector<std::string> distinct;
  const std::vector<size_t> slot_of = DedupNormalized(raw_values, &distinct);
  std::vector<ValueSide> per_slot(distinct.size());
  for (size_t s = 0; s < distinct.size(); ++s) {
    const std::string& v = distinct[s];
    bool left = e.left_bloom.MayContain(v) && e.left_to_right.count(v) > 0;
    bool right = e.right_bloom.MayContain(v) && e.right_to_left.count(v) > 0;
    per_slot[s] = left && right ? ValueSide::kBoth
                  : left        ? ValueSide::kLeft
                  : right       ? ValueSide::kRight
                                : ValueSide::kNone;
  }
  std::vector<ValueSide> out;
  out.reserve(raw_values.size());
  for (size_t slot : slot_of) out.push_back(per_slot[slot]);
  return out;
}

std::vector<MappingStore::ContainmentMatch> MappingStore::FindByContainment(
    const std::vector<std::string>& values, size_t min_hits) const {
  std::vector<std::string> normed;
  normed.reserve(values.size());
  for (const auto& v : values) normed.push_back(Norm(v));

  std::vector<ContainmentMatch> out;
  if (!shards_.empty()) {
    // Sharded-index path: one posting probe per value, hits accumulated per
    // entry. Each input occurrence counts (duplicates in `values` score
    // like the scan's per-value map probes).
    std::vector<size_t> left_hits(entries_.size(), 0);
    std::vector<size_t> right_hits(entries_.size(), 0);
    std::vector<uint32_t> touched;
    for (const auto& v : normed) {
      const auto& shard = shards_[ShardOf(v)];
      auto it = shard.find(v);
      if (it == shard.end()) continue;
      for (const Posting& p : it->second) {
        if (left_hits[p.entry] == 0 && right_hits[p.entry] == 0) {
          touched.push_back(p.entry);
        }
        if (p.sides & kSideLeft) ++left_hits[p.entry];
        if (p.sides & kSideRight) ++right_hits[p.entry];
      }
    }
    if (min_hits == 0) {
      // Degenerate request: the scan returns every entry (0 hits >= 0), so
      // the index path must too.
      touched.resize(entries_.size());
      for (uint32_t i = 0; i < touched.size(); ++i) touched[i] = i;
    } else {
      std::sort(touched.begin(), touched.end());
    }
    for (uint32_t entry : touched) {
      ContainmentMatch m;
      m.index = entry;
      m.left_hits = left_hits[entry];
      m.right_hits = right_hits[entry];
      if (m.total() >= min_hits) out.push_back(m);
    }
  } else {
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      ContainmentMatch m;
      m.index = i;
      for (const auto& v : normed) {
        if (e.left_bloom.MayContain(v) && e.left_to_right.count(v)) {
          ++m.left_hits;
        }
        if (e.right_bloom.MayContain(v) && e.right_to_left.count(v)) {
          ++m.right_hits;
        }
      }
      if (m.total() >= min_hits) out.push_back(m);
    }
  }
  // Deterministic rank: hits descending, then mapping index ascending. The
  // explicit tie-break makes the scan and index paths byte-identical (and
  // app results stable across store layouts).
  std::sort(out.begin(), out.end(),
            [](const ContainmentMatch& a, const ContainmentMatch& b) {
              if (a.total() != b.total()) return a.total() > b.total();
              return a.index < b.index;
            });
  return out;
}

std::optional<std::string> MappingStore::LookupRight(
    size_t i, const std::string& raw_left) const {
  const Entry& e = entries_[i];
  auto it = e.left_to_right.find(Norm(raw_left));
  if (it == e.left_to_right.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> MappingStore::LookupLeft(
    size_t i, const std::string& raw_right) const {
  const Entry& e = entries_[i];
  auto it = e.right_to_left.find(Norm(raw_right));
  if (it == e.right_to_left.end()) return std::nullopt;
  return it->second;
}

void MappingStore::DedupNormalized(const std::vector<std::string>& raw_values,
                                   BatchScratch* scratch) const {
  // clear() keeps the slot map's buckets and the vectors' capacity, so a
  // long-lived scratch (one per serving connection) pays the map/vector
  // allocations once instead of per request.
  scratch->distinct.clear();
  scratch->slot_of.clear();
  scratch->slots.clear();
  scratch->slot_of.reserve(raw_values.size());
  if (scratch->slots.bucket_count() < raw_values.size()) {
    scratch->slots.reserve(raw_values.size());
  }
  for (const auto& raw : raw_values) {
    std::string normed = Norm(raw);
    auto [it, inserted] =
        scratch->slots.emplace(std::move(normed), scratch->distinct.size());
    if (inserted) scratch->distinct.push_back(it->first);
    scratch->slot_of.push_back(it->second);
  }
}

std::vector<std::optional<std::string>> MappingStore::LookupBatchImpl(
    const std::unordered_map<std::string, std::string>& map,
    const std::vector<std::string>& raw_values, BatchScratch* scratch) const {
  DedupNormalized(raw_values, scratch);
  scratch->per_slot.assign(scratch->distinct.size(), nullptr);
  for (size_t s = 0; s < scratch->distinct.size(); ++s) {
    auto it = map.find(scratch->distinct[s]);
    if (it != map.end()) scratch->per_slot[s] = &it->second;
  }
  std::vector<std::optional<std::string>> out;
  out.reserve(raw_values.size());
  for (size_t slot : scratch->slot_of) {
    if (scratch->per_slot[slot] != nullptr) {
      out.emplace_back(*scratch->per_slot[slot]);
    } else {
      out.emplace_back(std::nullopt);
    }
  }
  return out;
}

std::vector<std::optional<std::string>> MappingStore::LookupRightBatch(
    size_t i, const std::vector<std::string>& raw_lefts) const {
  BatchScratch scratch;
  return LookupRightBatch(i, raw_lefts, &scratch);
}

std::vector<std::optional<std::string>> MappingStore::LookupLeftBatch(
    size_t i, const std::vector<std::string>& raw_rights) const {
  BatchScratch scratch;
  return LookupLeftBatch(i, raw_rights, &scratch);
}

std::vector<std::optional<std::string>> MappingStore::LookupRightBatch(
    size_t i, const std::vector<std::string>& raw_lefts,
    BatchScratch* scratch) const {
  return LookupBatchImpl(entries_[i].left_to_right, raw_lefts, scratch);
}

std::vector<std::optional<std::string>> MappingStore::LookupLeftBatch(
    size_t i, const std::vector<std::string>& raw_rights,
    BatchScratch* scratch) const {
  return LookupBatchImpl(entries_[i].right_to_left, raw_rights, scratch);
}

}  // namespace ms
