#include "apps/mapping_store.h"

#include <algorithm>

namespace ms {

MappingStore::MappingStore(std::shared_ptr<StringPool> pool,
                           NormalizeOptions normalize)
    : pool_(std::move(pool)), normalize_(normalize) {}

size_t MappingStore::Add(SynthesizedMapping mapping, std::string name) {
  const size_t n = std::max<size_t>(mapping.size(), 1);
  Entry e{std::move(name), std::move(mapping), BloomFilter(n),
          BloomFilter(n), {}, {}};
  for (const auto& p : e.mapping.merged.pairs()) {
    std::string left(pool_->Get(p.left));
    std::string right(pool_->Get(p.right));
    e.left_bloom.Add(left);
    e.right_bloom.Add(right);
    e.left_to_right.emplace(left, right);
    e.right_to_left.emplace(std::move(right), std::move(left));
  }
  entries_.push_back(std::move(e));
  return entries_.size() - 1;
}

ValueSide MappingStore::Probe(size_t i, const std::string& raw_value) const {
  const Entry& e = entries_[i];
  const std::string v = Norm(raw_value);
  bool left = e.left_bloom.MayContain(v) && e.left_to_right.count(v) > 0;
  bool right = e.right_bloom.MayContain(v) && e.right_to_left.count(v) > 0;
  if (left && right) return ValueSide::kBoth;
  if (left) return ValueSide::kLeft;
  if (right) return ValueSide::kRight;
  return ValueSide::kNone;
}

std::vector<MappingStore::ContainmentMatch> MappingStore::FindByContainment(
    const std::vector<std::string>& values, size_t min_hits) const {
  std::vector<std::string> normed;
  normed.reserve(values.size());
  for (const auto& v : values) normed.push_back(Norm(v));

  std::vector<ContainmentMatch> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    ContainmentMatch m;
    m.index = i;
    for (const auto& v : normed) {
      if (e.left_bloom.MayContain(v) && e.left_to_right.count(v)) {
        ++m.left_hits;
      }
      if (e.right_bloom.MayContain(v) && e.right_to_left.count(v)) {
        ++m.right_hits;
      }
    }
    if (m.total() >= min_hits) out.push_back(m);
  }
  std::sort(out.begin(), out.end(),
            [](const ContainmentMatch& a, const ContainmentMatch& b) {
              return a.total() > b.total();
            });
  return out;
}

std::optional<std::string> MappingStore::LookupRight(
    size_t i, const std::string& raw_left) const {
  const Entry& e = entries_[i];
  auto it = e.left_to_right.find(Norm(raw_left));
  if (it == e.left_to_right.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> MappingStore::LookupLeft(
    size_t i, const std::string& raw_right) const {
  const Entry& e = entries_[i];
  auto it = e.right_to_left.find(Norm(raw_right));
  if (it == e.right_to_left.end()) return std::nullopt;
  return it->second;
}

}  // namespace ms
