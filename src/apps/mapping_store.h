// Curated mapping store: the materialized, indexed form of synthesized
// mappings that applications consume (paper introduction: "one could index
// synthesized mapping tables using hash-based techniques (e.g., bloom
// filters) for efficient lookup based on value containment. Such logic is
// both simple to implement and easy to scale.").
//
// All lookups normalize their inputs with the same rules the synthesis
// pipeline used, so raw user values ("CA ", "California[1]") hit.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bloom_filter.h"
#include "synth/mapping.h"
#include "table/string_pool.h"
#include "text/normalize.h"

namespace ms {

/// One mapping direction resolved for a probe value.
enum class ValueSide { kNone = 0, kLeft, kRight, kBoth };

class MappingStore {
 public:
  explicit MappingStore(std::shared_ptr<StringPool> pool,
                        NormalizeOptions normalize = {});

  /// Registers a curated mapping under a human-readable name. Returns its
  /// index.
  size_t Add(SynthesizedMapping mapping, std::string name);

  size_t size() const { return entries_.size(); }
  const SynthesizedMapping& mapping(size_t i) const {
    return entries_[i].mapping;
  }
  const std::string& name(size_t i) const { return entries_[i].name; }

  /// Which side(s) of mapping `i` contain the (raw) value.
  ValueSide Probe(size_t i, const std::string& raw_value) const;

  /// Containment search: mappings ranked by how many of `values` they
  /// contain on either side. Bloom filters screen out non-candidates before
  /// exact hash probes. Only mappings with >= min_hits matches return.
  struct ContainmentMatch {
    size_t index = 0;
    size_t left_hits = 0;
    size_t right_hits = 0;
    size_t total() const { return left_hits + right_hits; }
  };
  std::vector<ContainmentMatch> FindByContainment(
      const std::vector<std::string>& values, size_t min_hits = 2) const;

  /// Functional lookup left -> right within mapping `i` (normalized).
  std::optional<std::string> LookupRight(size_t i,
                                         const std::string& raw_left) const;

  /// Reverse lookup right -> canonical left (the first left mention seen).
  std::optional<std::string> LookupLeft(size_t i,
                                        const std::string& raw_right) const;

 private:
  struct Entry {
    std::string name;
    SynthesizedMapping mapping;
    BloomFilter left_bloom;
    BloomFilter right_bloom;
    std::unordered_map<std::string, std::string> left_to_right;
    std::unordered_map<std::string, std::string> right_to_left;
  };

  std::string Norm(const std::string& raw) const {
    return NormalizeCell(raw, normalize_);
  }

  std::shared_ptr<StringPool> pool_;
  NormalizeOptions normalize_;
  std::vector<Entry> entries_;
};

}  // namespace ms
