// Curated mapping store: the materialized, indexed form of synthesized
// mappings that applications consume (paper introduction: "one could index
// synthesized mapping tables using hash-based techniques (e.g., bloom
// filters) for efficient lookup based on value containment. Such logic is
// both simple to implement and easy to scale.").
//
// All lookups normalize their inputs with the same rules the synthesis
// pipeline used, so raw user values ("CA ", "California[1]") hit.
//
// Thread contract: a store is built single-threaded (Add) and immutable
// afterwards — every const method is safe to call from any number of
// threads concurrently provided no Add runs. MappingService enforces this
// by only ever publishing fully-built stores inside an immutable
// ServingSnapshot (apps/serving.h).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bloom_filter.h"
#include "synth/mapping.h"
#include "table/string_pool.h"
#include "text/normalize.h"

namespace ms {

/// One mapping direction resolved for a probe value.
enum class ValueSide { kNone = 0, kLeft, kRight, kBoth };

class MappingStore {
 public:
  /// `containment_index_shards` > 0 builds a hash-sharded value→posting
  /// index maintained by Add, turning FindByContainment from an
  /// O(entries × values) scan into O(values) posting probes — the
  /// domain-sharded layout for many-mapping stores (shards bound the size
  /// of any one probe table; results are identical to the scan by
  /// construction and locked down by a differential test). 0 keeps the
  /// bloom-screened scan.
  explicit MappingStore(std::shared_ptr<StringPool> pool,
                        NormalizeOptions normalize = {},
                        size_t containment_index_shards = 0);

  /// Registers a curated mapping under a human-readable name. Returns its
  /// index. Not thread-safe against any concurrent method — build first,
  /// serve after.
  size_t Add(SynthesizedMapping mapping, std::string name);

  size_t size() const { return entries_.size(); }
  const SynthesizedMapping& mapping(size_t i) const {
    return entries_[i].mapping;
  }
  const std::string& name(size_t i) const { return entries_[i].name; }
  size_t containment_index_shards() const { return shards_.size(); }

  /// Which side(s) of mapping `i` contain the (raw) value.
  ValueSide Probe(size_t i, const std::string& raw_value) const;

  /// Batched Probe over a request vector: normalizes once per input and
  /// probes once per *distinct* normalized value (serving columns are full
  /// of repeats), the way InternBatch amortized extraction. Element k of
  /// the result is exactly Probe(i, raw_values[k]).
  std::vector<ValueSide> ProbeBatch(
      size_t i, const std::vector<std::string>& raw_values) const;

  /// Containment search: mappings ranked by how many of `values` they
  /// contain on either side (ties broken by ascending mapping index, so
  /// scan and sharded-index paths rank identically). Bloom filters screen
  /// out non-candidates before exact hash probes on the scan path. Only
  /// mappings with >= min_hits matches return.
  struct ContainmentMatch {
    size_t index = 0;
    size_t left_hits = 0;
    size_t right_hits = 0;
    size_t total() const { return left_hits + right_hits; }
  };
  std::vector<ContainmentMatch> FindByContainment(
      const std::vector<std::string>& values, size_t min_hits = 2) const;

  /// Functional lookup left -> right within mapping `i` (normalized).
  std::optional<std::string> LookupRight(size_t i,
                                         const std::string& raw_left) const;

  /// Reverse lookup right -> canonical left (the first left mention seen).
  std::optional<std::string> LookupLeft(size_t i,
                                        const std::string& raw_right) const;

  /// Reusable normalize/dedup working set for the batched lookups. A
  /// caller serving many batches (one network connection, a bench loop)
  /// keeps one of these alive and hands it to every call: the distinct
  /// table, slot map, and per-slot result vectors then reuse their grown
  /// capacity instead of re-allocating per request. Contents are
  /// call-scoped scratch — never read them between calls. Not shareable
  /// across threads.
  struct BatchScratch {
    std::vector<std::string> distinct;
    std::vector<size_t> slot_of;
    std::unordered_map<std::string, size_t> slots;
    std::vector<const std::string*> per_slot;
  };

  /// Batched LookupRight/LookupLeft with the same amortization as
  /// ProbeBatch. Element k is exactly the scalar lookup of raw value k.
  /// The scratch-taking overloads are byte-identical to the plain ones
  /// (differential-tested); pass the same scratch across calls to skip the
  /// per-request allocations.
  std::vector<std::optional<std::string>> LookupRightBatch(
      size_t i, const std::vector<std::string>& raw_lefts) const;
  std::vector<std::optional<std::string>> LookupLeftBatch(
      size_t i, const std::vector<std::string>& raw_rights) const;
  std::vector<std::optional<std::string>> LookupRightBatch(
      size_t i, const std::vector<std::string>& raw_lefts,
      BatchScratch* scratch) const;
  std::vector<std::optional<std::string>> LookupLeftBatch(
      size_t i, const std::vector<std::string>& raw_rights,
      BatchScratch* scratch) const;

 private:
  struct Entry {
    std::string name;
    SynthesizedMapping mapping;
    BloomFilter left_bloom;
    BloomFilter right_bloom;
    std::unordered_map<std::string, std::string> left_to_right;
    std::unordered_map<std::string, std::string> right_to_left;
  };

  /// Sharded-index posting: which entry contains a value, on which sides.
  struct Posting {
    uint32_t entry = 0;
    uint8_t sides = 0;  ///< bit 0 = left, bit 1 = right
  };

  std::string Norm(const std::string& raw) const {
    return NormalizeCell(raw, normalize_);
  }
  size_t ShardOf(const std::string& normed) const {
    return std::hash<std::string>{}(normed) % shards_.size();
  }
  void IndexEntryValues(uint32_t entry_index, const Entry& e);
  /// Shared batch plumbing: fills `distinct` with one slot per distinct
  /// normalized value and returns, per input, the index of its slot.
  std::vector<size_t> DedupNormalized(
      const std::vector<std::string>& raw_values,
      std::vector<std::string>* distinct) const;
  /// Scratch-reusing variant: fills scratch->distinct / slot_of in place,
  /// reusing the slot map's buckets and the vectors' capacity.
  void DedupNormalized(const std::vector<std::string>& raw_values,
                       BatchScratch* scratch) const;
  std::vector<std::optional<std::string>> LookupBatchImpl(
      const std::unordered_map<std::string, std::string>& map,
      const std::vector<std::string>& raw_values, BatchScratch* scratch) const;

  std::shared_ptr<StringPool> pool_;
  NormalizeOptions normalize_;
  std::vector<Entry> entries_;
  /// Containment index, empty when disabled: shard -> normalized value ->
  /// postings (at most one left + one right bit per entry per value).
  std::vector<std::unordered_map<std::string, std::vector<Posting>>> shards_;
};

}  // namespace ms
