#include "apps/serving.h"

#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/corpus_store.h"
#include "persist/mapping_text.h"
#include "persist/rotation.h"
#include "table/tsv.h"

namespace ms {

namespace {

// Serving-tier metric families. Request/transition histograms are labelled
// by operation; call sites cache the pointer in a function-local static so
// the read hot path costs two relaxed fetch_adds, never the registry mutex.
obs::Histogram* RequestHistogram(const char* op) {
  return obs::MetricsRegistry::Global().GetHistogram("ms_serving_request_us",
                                                     {{"op", op}});
}

obs::Histogram* TransitionHistogram(const char* op) {
  return obs::MetricsRegistry::Global().GetHistogram(
      "ms_serving_transition_us", {{"op", op}});
}

}  // namespace

MappingService::MappingService(SynthesisOptions options)
    : session_(std::move(options)) {}

MappingService::~MappingService() = default;

void MappingService::set_env(Env* env) {
  const std::lock_guard<std::mutex> lock(writer_mu_);
  env_ = env != nullptr ? env : Env::Default();
  session_.set_env(env_);
}

void MappingService::set_containment_index_shards(size_t shards) {
  const std::lock_guard<std::mutex> lock(writer_mu_);
  containment_index_shards_ = shards;
}

void MappingService::InjectFaultForTests(ServingFault point) {
  const std::lock_guard<std::mutex> lock(writer_mu_);
  injected_fault_ = point;
}

Status MappingService::ConsumeFault(ServingFault point) {
  if (injected_fault_ != point) return Status::OK();
  injected_fault_ = ServingFault::kNone;
  return Status::Internal("serving fault injected for tests (point " +
                          std::to_string(static_cast<int>(point)) + ")");
}

Status MappingService::Synthesize(const TableCorpus& corpus) {
  MS_RETURN_IF_ERROR(status());
  const std::lock_guard<std::mutex> lock(writer_mu_);
  return StartFreshRunLocked(nullptr, &corpus);
}

Status MappingService::SynthesizeFromFile(const std::string& path) {
  MS_RETURN_IF_ERROR(status());
  const std::lock_guard<std::mutex> lock(writer_mu_);
  auto corpus = std::make_unique<TableCorpus>();
  MS_RETURN_IF_ERROR(LoadCorpus(path, corpus.get(), env_));
  return StartFreshRunLocked(std::move(corpus), nullptr);
}

Status MappingService::SynthesizeFromCorpusStore(const std::string& path) {
  MS_RETURN_IF_ERROR(status());
  const std::lock_guard<std::mutex> lock(writer_mu_);
  Result<TableCorpus> store = persist::OpenCorpusStore(path, env_);
  if (!store.ok()) return store.status();
  return StartFreshRunLocked(
      std::make_unique<TableCorpus>(std::move(store).value()), nullptr);
}

Status MappingService::StartFreshRunLocked(std::unique_ptr<TableCorpus> owned,
                                           const TableCorpus* external) {
  static obs::Histogram* const transition_us =
      TransitionHistogram("synthesize");
  obs::TraceSpan span("serving.synthesize", transition_us);
  // Fail-closed: the new corpus, pool, and artifacts live only in the
  // BuildState until the chain completes — a mid-chain failure leaves the
  // previous generation (and its corpus) serving untouched.
  BuildState s;
  s.replace_corpus = true;
  s.owned_corpus = std::move(owned);
  s.corpus = s.owned_corpus ? s.owned_corpus.get() : external;
  s.pool = s.corpus->shared_pool();
  MS_RETURN_IF_ERROR(RunChain(&s, false, false, false));
  return CommitAndPublish(std::move(s));
}

Status MappingService::SaveSnapshot(const std::string& path) {
  const std::lock_guard<std::mutex> lock(writer_mu_);
  return SaveSnapshotLocked(path);
}

Status MappingService::SaveSnapshotLocked(const std::string& path) {
  if (candidates_ == nullptr) {
    return Status::FailedPrecondition(
        "SaveSnapshot: nothing synthesized yet — there are no stage "
        "artifacts to persist");
  }
  // The store is rebuilt exactly when a chain completed, so its presence
  // marks last_result_ as valid.
  return session_.SaveSnapshot(path, *candidates_, blocked_.get(),
                               scored_.get(),
                               store_ != nullptr ? last_result_.get()
                                                 : nullptr);
}

Status MappingService::OpenFromSnapshot(const std::string& path) {
  MS_RETURN_IF_ERROR(status());
  const std::lock_guard<std::mutex> lock(writer_mu_);
  return OpenFromSnapshotLocked(path);
}

Status MappingService::OpenFromSnapshotLocked(const std::string& path) {
  Result<SessionSnapshot> restored = session_.RestoreSnapshot(path);
  if (!restored.ok()) return restored.status();
  SessionSnapshot snap = std::move(restored).value();
  // The snapshot fully loaded and verified; stage everything (including
  // the possible chain completion below) before any serving state moves.
  BuildState s;
  s.replace_corpus = true;  // a restored service has no corpus
  s.pool = snap.pool;
  s.candidates = std::move(snap.candidates);
  s.blocked = std::move(snap.blocked);
  s.scored = std::move(snap.scored);
  // Snapshots do not persist the partition artifact.
  const SynonymDictionary* dict = session_.options().compat.synonyms;
  s.scored_synonym_version = dict ? dict->version() : 0;
  if (snap.has_result) {
    s.result = std::make_shared<const SynthesisResult>(std::move(snap.result));
  } else {
    // No saved result: finish the chain from the deepest restored artifact.
    MS_RETURN_IF_ERROR(
        RunChain(&s, true, s.blocked != nullptr, s.scored != nullptr));
  }
  return CommitAndPublish(std::move(s));
}

Status MappingService::SaveSnapshotRotating(const std::string& dir, int keep) {
  const std::lock_guard<std::mutex> lock(writer_mu_);
  if (candidates_ == nullptr) {
    return Status::FailedPrecondition(
        "SaveSnapshotRotating: nothing synthesized yet — there are no stage "
        "artifacts to persist");
  }
  MS_RETURN_IF_ERROR(env_->CreateDirIfMissing(dir));
  // Next generation: one past everything discoverable — live files AND the
  // CURRENT pointer. A crash that deleted files but kept CURRENT (or the
  // reverse) must still never reuse a committed generation number.
  uint64_t next = 1;
  Result<std::vector<persist::GenerationEntry>> listed =
      persist::ListGenerations(*env_, dir);
  if (!listed.ok()) return listed.status();
  if (!listed.value().empty()) next = listed.value().back().generation + 1;
  Result<uint64_t> current = persist::ReadCurrentGeneration(*env_, dir);
  if (current.ok() && current.value() >= next) next = current.value() + 1;
  // NotFound/DataLoss CURRENT: the commit below rewrites it atomically.

  MS_RETURN_IF_ERROR(
      SaveSnapshotLocked(dir + "/" + persist::SnapshotFileName(next)));
  MS_RETURN_IF_ERROR(persist::WriteCurrentFile(*env_, dir, next));
  {
    // The new generation is durably committed: the service serves it, and
    // any degradation recorded by an earlier recovery walk is now behind a
    // successful write — clear the skip/quarantine record.
    const std::lock_guard<std::mutex> h(health_mu_);
    generation_served_ = next;
    generations_skipped_ = 0;
    quarantined_files_.clear();
  }
  // Retention is best-effort: the generation is committed at this point,
  // and failing the save over old-file debris would invert the contract.
  (void)persist::PruneSnapshots(*env_, dir, keep);
  return Status::OK();
}

Status MappingService::OpenLatestSnapshot(const std::string& dir) {
  MS_RETURN_IF_ERROR(status());
  const std::lock_guard<std::mutex> lock(writer_mu_);
  Result<std::vector<persist::GenerationEntry>> listed =
      persist::ListGenerations(*env_, dir);
  if (!listed.ok()) return listed.status();
  std::vector<persist::GenerationEntry> gens = std::move(listed).value();
  if (gens.empty()) {
    return Status::NotFound("no snapshot generations in directory: " + dir);
  }
  uint64_t skipped = 0;
  std::vector<std::string> quarantined;
  Status last;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    const Status st = OpenFromSnapshotLocked(dir + "/" + it->name);
    if (st.ok()) {
      // The successful open's publish reset the bookkeeping; record the
      // walk that got us here on top of it.
      const std::lock_guard<std::mutex> h(health_mu_);
      generation_served_ = it->generation;
      generations_skipped_ = skipped;
      quarantined_files_ = std::move(quarantined);
      return Status::OK();
    }
    // OpenFromSnapshot is fail-closed, so the walk can keep probing older
    // generations with the previous serving state intact.
    last = st;
    ++skipped;
    if (st.code() == StatusCode::kDataLoss) {
      // Verified-corrupt bytes: fence the file from every future walk but
      // keep it for post-mortem. Quarantine is best-effort — on a
      // read-only dir the rename fails and the file is merely skipped.
      if (persist::QuarantineSnapshot(*env_, dir, it->name).ok()) {
        quarantined.push_back(it->name + persist::kCorruptSuffix);
      }
    }
  }
  // Nothing intact: report the walk (operators need the quarantine record
  // even — especially — when recovery failed) and surface the last error.
  {
    const std::lock_guard<std::mutex> h(health_mu_);
    generations_skipped_ = skipped;
    quarantined_files_ = std::move(quarantined);
  }
  return last;
}

ServiceHealth MappingService::health() const {
  ServiceHealth h;
  {
    const std::lock_guard<std::mutex> lock(health_mu_);
    h.generation_served = generation_served_;
    h.generations_skipped = generations_skipped_;
    h.quarantined_files = quarantined_files_;
    if (remote_stats_source_) h.remote = remote_stats_source_();
  }
  h.retries_performed = env_->retries_performed();
  h.io_failures = env_->io_failures();
  return h;
}

void MappingService::SetRemoteStatsSource(
    std::function<RemoteServingStats()> source) {
  const std::lock_guard<std::mutex> lock(health_mu_);
  remote_stats_source_ = std::move(source);
}

Status MappingService::OpenFromMappingsFile(const std::string& path) {
  MS_RETURN_IF_ERROR(status());
  const std::lock_guard<std::mutex> lock(writer_mu_);
  // Fail-closed: load into the staged state first; the existing store keeps
  // serving if anything about the file is wrong.
  auto pool = std::make_shared<StringPool>();
  std::vector<SynthesizedMapping> mappings;
  MS_RETURN_IF_ERROR(
      persist::LoadMappingsTsv(path, pool.get(), &mappings, env_));
  BuildState s;
  s.replace_corpus = true;  // serving-only bootstrap: no corpus
  s.pool = std::move(pool);
  auto result = std::make_shared<SynthesisResult>();
  result->mappings = std::move(mappings);
  result->stats.mappings = result->mappings.size();
  s.result = std::move(result);
  return CommitAndPublish(std::move(s));
}

Status MappingService::AttachCorpus(const TableCorpus& corpus) {
  const std::lock_guard<std::mutex> lock(writer_mu_);
  if (candidates_ == nullptr) {
    return Status::FailedPrecondition(
        "AttachCorpus: nothing synthesized yet — attach is for re-arming a "
        "snapshot-restored service with its source corpus");
  }
  if (corpus.size() != candidates_->source_tables) {
    return Status::InvalidArgument(
        "AttachCorpus: corpus has " + std::to_string(corpus.size()) +
        " tables but the restored artifacts were synthesized from " +
        std::to_string(candidates_->source_tables) +
        " — attach the exact corpus the snapshot came from before growing "
        "it");
  }
  owned_corpus_.reset();
  corpus_ = &corpus;
  return Status::OK();
}

Status MappingService::AppendAndResynthesize(const TableCorpus& delta) {
  const std::lock_guard<std::mutex> lock(writer_mu_);
  return AppendChainLocked(&delta);
}

Status MappingService::ResynthesizeAppended() {
  const std::lock_guard<std::mutex> lock(writer_mu_);
  return AppendChainLocked(nullptr);
}

Status MappingService::AppendChainLocked(const TableCorpus* delta) {
  static obs::Histogram* const transition_us = TransitionHistogram("append");
  obs::TraceSpan span("serving.append", transition_us);
  if (candidates_ == nullptr) {
    return Status::FailedPrecondition(
        "Append: nothing synthesized yet — call Synthesize (or "
        "OpenFromSnapshot + AttachCorpus) first so there are artifacts to "
        "grow");
  }
  if (corpus_ == nullptr) {
    return Status::FailedPrecondition(
        "Append: this service has no corpus (opened from a snapshot) — "
        "AttachCorpus the snapshot's source corpus first; incremental "
        "extraction needs the corpus-global statistics");
  }
  // Cheap entry-point preconditions first: a call that is going to be
  // rejected must not pay a re-score or partition materialization on its
  // way to the error.
  if (delta != nullptr) {
    if (owned_corpus_ == nullptr) {
      return Status::FailedPrecondition(
          "AppendAndResynthesize: the service does not own its corpus — "
          "grow the external corpus yourself and call "
          "ResynthesizeAppended()");
    }
    if (owned_corpus_->size() != candidates_->source_tables) {
      return Status::FailedPrecondition(
          "AppendAndResynthesize: the corpus already grew past the "
          "synthesized prefix (" +
          std::to_string(owned_corpus_->size()) + " tables vs " +
          std::to_string(candidates_->source_tables) +
          " synthesized) — recover with ResynthesizeAppended(), which "
          "synthesizes every externally added table; delta appends work "
          "again once it succeeds");
    }
  } else if (corpus_->size() <= candidates_->source_tables) {
    return Status::FailedPrecondition(
        "ResynthesizeAppended: the corpus did not grow (still " +
        std::to_string(corpus_->size()) + " tables)");
  }
  BuildState s = StageFromCurrent();
  MS_RETURN_IF_ERROR(PrepareIncrementalFamilyLocked(&s));
  // The append protocol: remember the synthesized prefix (tables AND pool),
  // merge, append, and roll the merge back on ANY failure past it — a
  // failed append must leave the corpus at the prefix the served artifacts
  // describe, so the same delta can simply be retried (previously the
  // grown corpus made every retry fail FailedPrecondition until
  // ResynthesizeAppended). The pool truncation matters under retries:
  // Truncate() alone leaves the dead delta's interned strings behind, so N
  // failed attempts would pin N copies' worth of orphaned values.
  const size_t prev_tables = corpus_->size();
  const size_t prev_pool_size = corpus_->shared_pool()->size();
  if (delta != nullptr) {
    Result<size_t> merged = owned_corpus_->AppendFrom(*delta);
    if (!merged.ok()) return merged.status();
  }
  auto rollback_merge = [&] {
    if (delta != nullptr && owned_corpus_ != nullptr &&
        owned_corpus_->size() > prev_tables) {
      owned_corpus_->Truncate(prev_tables);
      owned_corpus_->pool().TruncateTo(prev_pool_size);
    }
  };
  Result<AppendedArtifacts> appended = session_.AppendTables(
      *corpus_, s.candidates->source_tables, *s.candidates, *s.blocked,
      *s.scored, *s.partitions, *s.result);
  Status append_status =
      appended.ok() ? ConsumeFault(ServingFault::kAppendCommit)
                    : appended.status();
  if (!append_status.ok()) {
    rollback_merge();
    return append_status;
  }
  const Status st = CommitFamilyLocked(std::move(s),
                                       std::move(appended).value());
  if (!st.ok()) rollback_merge();
  return st;
}

Status MappingService::RemoveAndResynthesize(
    const std::vector<uint32_t>& removed) {
  const std::lock_guard<std::mutex> lock(writer_mu_);
  return MutateChainLocked(removed, nullptr);
}

Status MappingService::ReplaceAndResynthesize(
    const std::vector<uint32_t>& removed, const TableCorpus& delta) {
  const std::lock_guard<std::mutex> lock(writer_mu_);
  return MutateChainLocked(removed, &delta);
}

Status MappingService::MutateChainLocked(std::vector<uint32_t> removed,
                                         const TableCorpus* delta) {
  static obs::Histogram* const remove_us = TransitionHistogram("remove");
  static obs::Histogram* const replace_us = TransitionHistogram("replace");
  obs::TraceSpan span(delta != nullptr ? "serving.replace" : "serving.remove",
                      delta != nullptr ? replace_us : remove_us);
  const char* op = delta != nullptr ? "ReplaceAndResynthesize"
                                    : "RemoveAndResynthesize";
  if (candidates_ == nullptr) {
    return Status::FailedPrecondition(
        std::string(op) + ": nothing synthesized yet — call Synthesize "
        "first so there are artifacts to maintain");
  }
  if (owned_corpus_ == nullptr) {
    return Status::FailedPrecondition(
        std::string(op) + ": the service does not own its corpus — "
        "removals tombstone tables in place, which the service must not do "
        "to an external or snapshot-restored corpus");
  }
  if (owned_corpus_->size() != candidates_->source_tables) {
    return Status::FailedPrecondition(
        std::string(op) + ": the corpus grew past the synthesized prefix (" +
        std::to_string(owned_corpus_->size()) + " tables vs " +
        std::to_string(candidates_->source_tables) +
        " synthesized) — recover with ResynthesizeAppended() first");
  }
  BuildState s = StageFromCurrent();
  MS_RETURN_IF_ERROR(PrepareIncrementalFamilyLocked(&s));
  // The session rolls the corpus back itself when ITS mutation fails; the
  // service only needs to undo a mutation that SUCCEEDED but whose publish
  // did not (injected commit fault, store-build failure). Capture enough to
  // do that here: the prefix sizes plus copies of the columns the session
  // is about to tombstone — the copies reference only pre-mutation pool
  // ids, so they stay valid across the pool-tail truncation below.
  const size_t prev_tables = owned_corpus_->size();
  const size_t prev_pool_size = owned_corpus_->pool().size();
  std::vector<std::pair<uint32_t, std::vector<Column>>> saved;
  saved.reserve(removed.size());
  for (uint32_t id : removed) {
    if (id < owned_corpus_->size()) {
      saved.emplace_back(id, owned_corpus_->table(id).columns);
    }
  }
  auto rollback_mutation = [&] {
    if (owned_corpus_->size() > prev_tables) {
      owned_corpus_->Truncate(prev_tables);
    }
    owned_corpus_->pool().TruncateTo(prev_pool_size);
    for (auto& [id, cols] : saved) {
      if (!cols.empty() && owned_corpus_->table(id).num_columns() == 0) {
        owned_corpus_->RestoreColumns(id, std::move(cols));
      }
    }
  };
  Result<AppendedArtifacts> mutated =
      delta != nullptr
          ? session_.ReplaceTables(owned_corpus_.get(), std::move(removed),
                                   *delta, *s.candidates, *s.blocked,
                                   *s.scored, *s.partitions, *s.result)
          : session_.RemoveTables(owned_corpus_.get(), std::move(removed),
                                  *s.candidates, *s.blocked, *s.scored,
                                  *s.partitions, *s.result);
  Status mutate_status =
      mutated.ok() ? ConsumeFault(ServingFault::kAppendCommit)
                   : mutated.status();
  if (!mutate_status.ok()) {
    if (mutated.ok()) rollback_mutation();
    return mutate_status;
  }
  const Status st = CommitFamilyLocked(std::move(s),
                                       std::move(mutated).value());
  if (!st.ok()) rollback_mutation();
  return st;
}

Status MappingService::PrepareIncrementalFamilyLocked(BuildState* s) {
  // The cached graph must reflect the current synonym dictionary contents:
  // delta pairs would be scored under the new snapshot while base edges
  // keep old-dictionary weights, merging a graph no cold run could produce.
  // Re-score first (same guard Resynthesize applies), then mutate. The
  // re-scored family lives only in the BuildState — a failure below
  // publishes nothing.
  const SynonymDictionary* synonyms = session_.options().compat.synonyms;
  if (synonyms != nullptr &&
      synonyms->version() != scored_synonym_version_) {
    MS_RETURN_IF_ERROR(RunChain(s, true, s->blocked != nullptr, false));
  }
  // A snapshot-restored family lacks the partition artifact; materialize
  // only what is missing. When blocked/scored were restored, a single
  // Partition() suffices — re-running the chain would redo conflict
  // resolution just to have the mutation discard it.
  if (s->blocked == nullptr || s->scored == nullptr) {
    MS_RETURN_IF_ERROR(
        RunChain(s, true, s->blocked != nullptr, s->scored != nullptr));
  } else if (s->partitions == nullptr) {
    Result<Partitions> parts = session_.Partition(*s->scored);
    if (!parts.ok()) return parts.status();
    s->partitions =
        std::make_shared<const Partitions>(std::move(parts).value());
  }
  return Status::OK();
}

Status MappingService::CommitFamilyLocked(BuildState&& s,
                                          AppendedArtifacts family) {
  s.candidates =
      std::make_shared<const CandidateSet>(std::move(family.candidates));
  s.blocked = std::make_shared<const BlockedPairs>(std::move(family.blocked));
  s.scored = std::make_shared<const ScoredGraph>(std::move(family.scored));
  s.partitions =
      std::make_shared<const Partitions>(std::move(family.partitions));
  const SynonymDictionary* dict = session_.options().compat.synonyms;
  s.scored_synonym_version = dict ? dict->version() : 0;
  s.result = std::make_shared<const SynthesisResult>(std::move(family.result));
  // The merged artifacts resolve against the (possibly different) corpus
  // pool from here on.
  s.pool = corpus_->shared_pool();
  return CommitAndPublish(std::move(s));
}

Status MappingService::Resynthesize(SynthesisOptions new_options) {
  const std::lock_guard<std::mutex> lock(writer_mu_);
  return ResynthesizeLocked(std::move(new_options));
}

Status MappingService::ResynthesizeLocked(SynthesisOptions new_options) {
  static obs::Histogram* const transition_us =
      TransitionHistogram("resynthesize");
  obs::TraceSpan span("serving.resynthesize", transition_us);
  if (candidates_ == nullptr) {
    return Status::FailedPrecondition(
        "Resynthesize: nothing synthesized yet — call Synthesize (or "
        "OpenFromSnapshot) first so there are stage artifacts to reuse");
  }
  const SynthesisOptions old = session_.options();
  MS_RETURN_IF_ERROR(session_.UpdateOptions(std::move(new_options)));
  const SynthesisOptions& now = session_.options();

  // Resume from the first stage whose inputs changed (the defaulted
  // operator== on each options struct documents exactly which knobs an
  // artifact depends on). Thread-count changes only affect scheduling
  // (results are deterministic across worker counts), so they alone
  // invalidate nothing. The graph additionally depends on the synonym
  // dictionary's *contents*: the pointer compares equal after AddSynonym,
  // so reuse also requires the version the graph was scored at.
  const bool keep_candidates = old.extraction == now.extraction;
  if (!keep_candidates && corpus_ == nullptr) {
    // Snapshot-restored services carry artifacts but no raw corpus, so an
    // extraction-invalidating change has nothing to re-extract from.
    // Fail-closed: the options roll back too (artifacts and configuration
    // must describe the same generation).
    (void)session_.UpdateOptions(old);
    return Status::FailedPrecondition(
        "Resynthesize: the extraction options changed but this service has "
        "no corpus (opened from a snapshot) — re-synthesize from a corpus "
        "or keep extraction options fixed");
  }
  const bool keep_blocked = keep_candidates && old.blocking == now.blocking;
  const bool synonyms_unchanged =
      now.compat.synonyms == nullptr ||
      now.compat.synonyms->version() == scored_synonym_version_;
  const bool keep_scored =
      keep_blocked && old.compat == now.compat && synonyms_unchanged;
  BuildState s = StageFromCurrent();
  Status st = RunChain(&s, keep_candidates,
                       keep_blocked && s.blocked != nullptr,
                       keep_scored && s.scored != nullptr);
  if (st.ok()) st = CommitAndPublish(std::move(s));
  if (!st.ok()) {
    // Fail-closed includes the session configuration: the served artifacts
    // were built under `old`, so a failed transition must not leave `now`
    // active (a later no-op-diff Resynthesize would serve stale artifacts
    // as if rebuilt). `old` validated when it was first applied.
    (void)session_.UpdateOptions(old);
  }
  return st;
}

MappingService::BuildState MappingService::StageFromCurrent() const {
  BuildState s;
  s.corpus = corpus_;
  s.pool = pool_keepalive_;
  s.candidates = candidates_;
  s.blocked = blocked_;
  s.scored = scored_;
  s.partitions = partitions_;
  s.result = last_result_;
  s.scored_synonym_version = scored_synonym_version_;
  return s;
}

Status MappingService::RunChain(BuildState* s, bool have_candidates,
                                bool have_blocked, bool have_scored) {
  if (!have_candidates) {
    MS_RETURN_IF_ERROR(ConsumeFault(ServingFault::kExtract));
    Result<CandidateSet> c = session_.ExtractCandidates(*s->corpus);
    if (!c.ok()) return c.status();
    s->candidates = std::make_shared<const CandidateSet>(std::move(c).value());
    have_blocked = false;
    have_scored = false;
  }
  if (!have_blocked) {
    MS_RETURN_IF_ERROR(ConsumeFault(ServingFault::kBlock));
    Result<BlockedPairs> b = session_.BlockPairs(*s->candidates);
    if (!b.ok()) return b.status();
    s->blocked = std::make_shared<const BlockedPairs>(std::move(b).value());
    have_scored = false;
  }
  if (!have_scored) {
    MS_RETURN_IF_ERROR(ConsumeFault(ServingFault::kScore));
    Result<ScoredGraph> g = session_.ScorePairs(*s->candidates, *s->blocked);
    if (!g.ok()) return g.status();
    s->scored = std::make_shared<const ScoredGraph>(std::move(g).value());
    const SynonymDictionary* dict = session_.options().compat.synonyms;
    s->scored_synonym_version = dict ? dict->version() : 0;
  }
  MS_RETURN_IF_ERROR(ConsumeFault(ServingFault::kPartition));
  Result<Partitions> parts = session_.Partition(*s->scored);
  if (!parts.ok()) return parts.status();
  s->partitions = std::make_shared<const Partitions>(std::move(parts).value());
  MS_RETURN_IF_ERROR(ConsumeFault(ServingFault::kResolve));
  Result<SynthesisResult> r =
      session_.Resolve(*s->candidates, *s->scored, *s->partitions);
  if (!r.ok()) return r.status();
  s->result = std::make_shared<const SynthesisResult>(std::move(r).value());
  return Status::OK();
}

Status MappingService::CommitAndPublish(BuildState&& s) {
  static obs::Histogram* const publish_us =
      obs::MetricsRegistry::Global().GetHistogram("ms_serving_publish_us");
  static obs::Histogram* const rebuild_us =
      obs::MetricsRegistry::Global().GetHistogram(
          "ms_serving_store_rebuild_us");
  static obs::Counter* const transitions = obs::MetricsRegistry::Global()
      .GetCounter("ms_serving_transitions_total");
  static obs::Gauge* const version_gauge = obs::MetricsRegistry::Global()
      .GetGauge("ms_serving_snapshot_version");
  static obs::Gauge* const mappings_gauge = obs::MetricsRegistry::Global()
      .GetGauge("ms_serving_num_mappings");
  obs::TraceSpan span("serving.publish", publish_us);
  MS_RETURN_IF_ERROR(ConsumeFault(ServingFault::kPublish));
  if (s.pool == nullptr) {
    return Status::Internal("CommitAndPublish: no string pool handle");
  }
  if (s.result == nullptr) {
    return Status::Internal("CommitAndPublish: no synthesis result");
  }
  // Build the next generation's store off to the side. Store lookups must
  // normalize exactly like the pipeline did, or raw user probes ("CA ",
  // "California[1]") miss values the pipeline matched.
  Timer rebuild_timer;
  auto store = std::make_shared<MappingStore>(
      s.pool, session_.options().extraction.normalize,
      containment_index_shards_);
  for (const auto& m : s.result->mappings) {
    store->Add(m, m.left_label + "->" + m.right_label);
  }
  rebuild_us->Record(
      static_cast<uint64_t>(rebuild_timer.ElapsedSeconds() * 1e6));
  // Point of no return: from here on everything is noexcept pointer moves,
  // finished by one atomic release-store. Readers either see the complete
  // previous generation or the complete new one — never a mix.
  if (s.replace_corpus) {
    owned_corpus_ = std::move(s.owned_corpus);
    corpus_ = owned_corpus_ != nullptr ? owned_corpus_.get() : s.corpus;
  }
  pool_keepalive_ = std::move(s.pool);
  candidates_ = std::move(s.candidates);
  blocked_ = std::move(s.blocked);
  scored_ = std::move(s.scored);
  partitions_ = std::move(s.partitions);
  scored_synonym_version_ = s.scored_synonym_version;
  last_result_ = std::move(s.result);
  store_ = std::move(store);
  auto snap = std::make_shared<const ServingSnapshot>(ServingSnapshot{
      store_, pool_keepalive_, last_result_, ++versions_published_});
  serving_.store(std::move(snap), std::memory_order_release);
  transitions->Increment();
  // Process-global gauges: with several services in one process the last
  // publisher wins — documented in docs/observability.md.
  version_gauge->Set(static_cast<int64_t>(versions_published_));
  mappings_gauge->Set(static_cast<int64_t>(store_->size()));
  {
    // Every successful transition serves fresh state: the rotation walk
    // that degraded an *earlier* generation says nothing about this one.
    // The rotation-aware entry points re-record their walk right after.
    const std::lock_guard<std::mutex> h(health_mu_);
    generation_served_ = 0;
    generations_skipped_ = 0;
    quarantined_files_.clear();
  }
  return Status::OK();
}

std::vector<std::optional<std::string>> MappingService::LookupBatch(
    size_t mapping_index, const std::vector<std::string>& values,
    LookupDirection direction) const {
  static obs::Histogram* const request_us = RequestHistogram("lookup_batch");
  obs::TraceSpan span("serving.lookup_batch", request_us);
  const auto snap = AcquireSnapshot();
  if (snap == nullptr || mapping_index >= snap->store->size()) {
    return std::vector<std::optional<std::string>>(values.size());
  }
  return direction == LookupDirection::kLeftToRight
             ? snap->store->LookupRightBatch(mapping_index, values)
             : snap->store->LookupLeftBatch(mapping_index, values);
}

AutoCorrectResult MappingService::SuggestCorrections(
    const std::vector<std::string>& column,
    const AutoCorrectOptions& options) const {
  static obs::Histogram* const request_us =
      RequestHistogram("suggest_corrections");
  obs::TraceSpan span("serving.suggest_corrections", request_us);
  const auto snap = AcquireSnapshot();
  if (snap == nullptr) return AutoCorrectResult{};
  return ::ms::SuggestCorrections(*snap->store, column, options);
}

AutoFillResult MappingService::AutoFill(
    const std::vector<std::string>& keys,
    const std::vector<std::pair<size_t, std::string>>& examples,
    const AutoFillOptions& options) const {
  static obs::Histogram* const request_us = RequestHistogram("auto_fill");
  obs::TraceSpan span("serving.auto_fill", request_us);
  const auto snap = AcquireSnapshot();
  if (snap == nullptr) return AutoFillResult{};
  return ::ms::AutoFill(*snap->store, keys, examples, options);
}

AutoJoinResult MappingService::AutoJoin(
    const std::vector<std::string>& left_keys,
    const std::vector<std::string>& right_keys,
    const AutoJoinOptions& options) const {
  static obs::Histogram* const request_us = RequestHistogram("auto_join");
  obs::TraceSpan span("serving.auto_join", request_us);
  const auto snap = AcquireSnapshot();
  if (snap == nullptr) return AutoJoinResult{};
  return ::ms::AutoJoin(*snap->store, left_keys, right_keys, options);
}

}  // namespace ms
