#include "apps/serving.h"

#include <utility>

#include "common/logging.h"
#include "persist/corpus_store.h"
#include "persist/mapping_text.h"
#include "persist/rotation.h"
#include "table/tsv.h"

namespace ms {

MappingService::MappingService(SynthesisOptions options)
    : session_(std::move(options)) {}

MappingService::~MappingService() = default;

Status MappingService::Synthesize(const TableCorpus& corpus) {
  MS_RETURN_IF_ERROR(status());
  return StartFreshRun(nullptr, &corpus);
}

Status MappingService::SynthesizeFromFile(const std::string& path) {
  MS_RETURN_IF_ERROR(status());
  auto corpus = std::make_unique<TableCorpus>();
  MS_RETURN_IF_ERROR(LoadCorpus(path, corpus.get(), env_));
  return StartFreshRun(std::move(corpus), nullptr);
}

Status MappingService::SynthesizeFromCorpusStore(const std::string& path) {
  MS_RETURN_IF_ERROR(status());
  Result<TableCorpus> store = persist::OpenCorpusStore(path, env_);
  if (!store.ok()) return store.status();
  return StartFreshRun(std::make_unique<TableCorpus>(std::move(store).value()),
                       nullptr);
}

Status MappingService::StartFreshRun(std::unique_ptr<TableCorpus> owned,
                                     const TableCorpus* external) {
  owned_corpus_ = std::move(owned);
  corpus_ = owned_corpus_ ? owned_corpus_.get() : external;
  pool_keepalive_ = corpus_->shared_pool();
  candidates_.reset();
  blocked_.reset();
  scored_.reset();
  partitions_.reset();
  return RunChain(false, false, false);
}

Status MappingService::SaveSnapshot(const std::string& path) {
  if (candidates_ == nullptr) {
    return Status::FailedPrecondition(
        "SaveSnapshot: nothing synthesized yet — there are no stage "
        "artifacts to persist");
  }
  // The store is rebuilt exactly when a chain completed, so its presence
  // marks last_result_ as valid.
  return session_.SaveSnapshot(path, *candidates_, blocked_.get(),
                               scored_.get(),
                               store_ != nullptr ? &last_result_ : nullptr);
}

Status MappingService::OpenFromSnapshot(const std::string& path) {
  MS_RETURN_IF_ERROR(status());
  Result<SessionSnapshot> restored = session_.RestoreSnapshot(path);
  if (!restored.ok()) return restored.status();
  SessionSnapshot snap = std::move(restored).value();
  // The snapshot fully loaded and verified; only now touch service state.
  owned_corpus_.reset();
  corpus_ = nullptr;
  pool_keepalive_ = snap.pool;
  candidates_ = std::move(snap.candidates);
  blocked_ = std::move(snap.blocked);
  scored_ = std::move(snap.scored);
  partitions_.reset();  // snapshots do not persist the partition artifact
  const SynonymDictionary* dict = session_.options().compat.synonyms;
  scored_synonym_version_ = dict ? dict->version() : 0;
  if (snap.has_result) {
    last_result_ = std::move(snap.result);
    return RebuildStore();
  }
  // No saved result: finish the chain from the deepest restored artifact.
  return RunChain(true, blocked_ != nullptr, scored_ != nullptr);
}

Status MappingService::SaveSnapshotRotating(const std::string& dir, int keep) {
  if (candidates_ == nullptr) {
    return Status::FailedPrecondition(
        "SaveSnapshotRotating: nothing synthesized yet — there are no stage "
        "artifacts to persist");
  }
  MS_RETURN_IF_ERROR(env_->CreateDirIfMissing(dir));
  // Next generation: one past everything discoverable — live files AND the
  // CURRENT pointer. A crash that deleted files but kept CURRENT (or the
  // reverse) must still never reuse a committed generation number.
  uint64_t next = 1;
  Result<std::vector<persist::GenerationEntry>> listed =
      persist::ListGenerations(*env_, dir);
  if (!listed.ok()) return listed.status();
  if (!listed.value().empty()) next = listed.value().back().generation + 1;
  Result<uint64_t> current = persist::ReadCurrentGeneration(*env_, dir);
  if (current.ok() && current.value() >= next) next = current.value() + 1;
  // NotFound/DataLoss CURRENT: the commit below rewrites it atomically.

  MS_RETURN_IF_ERROR(
      SaveSnapshot(dir + "/" + persist::SnapshotFileName(next)));
  MS_RETURN_IF_ERROR(persist::WriteCurrentFile(*env_, dir, next));
  generation_served_ = next;
  // Retention is best-effort: the generation is committed at this point,
  // and failing the save over old-file debris would invert the contract.
  (void)persist::PruneSnapshots(*env_, dir, keep);
  return Status::OK();
}

Status MappingService::OpenLatestSnapshot(const std::string& dir) {
  MS_RETURN_IF_ERROR(status());
  Result<std::vector<persist::GenerationEntry>> listed =
      persist::ListGenerations(*env_, dir);
  if (!listed.ok()) return listed.status();
  std::vector<persist::GenerationEntry> gens = std::move(listed).value();
  if (gens.empty()) {
    return Status::NotFound("no snapshot generations in directory: " + dir);
  }
  uint64_t skipped = 0;
  std::vector<std::string> quarantined;
  Status last;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    const Status st = OpenFromSnapshot(dir + "/" + it->name);
    if (st.ok()) {
      generation_served_ = it->generation;
      generations_skipped_ = skipped;
      quarantined_files_ = std::move(quarantined);
      return Status::OK();
    }
    // OpenFromSnapshot is fail-closed, so the walk can keep probing older
    // generations with the previous serving state intact.
    last = st;
    ++skipped;
    if (st.code() == StatusCode::kDataLoss) {
      // Verified-corrupt bytes: fence the file from every future walk but
      // keep it for post-mortem. Quarantine is best-effort — on a
      // read-only dir the rename fails and the file is merely skipped.
      if (persist::QuarantineSnapshot(*env_, dir, it->name).ok()) {
        quarantined.push_back(it->name + persist::kCorruptSuffix);
      }
    }
  }
  // Nothing intact: report the walk (operators need the quarantine record
  // even — especially — when recovery failed) and surface the last error.
  generations_skipped_ = skipped;
  quarantined_files_ = std::move(quarantined);
  return last;
}

ServiceHealth MappingService::health() const {
  ServiceHealth h;
  h.generation_served = generation_served_;
  h.generations_skipped = generations_skipped_;
  h.quarantined_files = quarantined_files_;
  h.retries_performed = env_->retries_performed();
  return h;
}

Status MappingService::OpenFromMappingsFile(const std::string& path) {
  MS_RETURN_IF_ERROR(status());
  // Fail-closed: load into scratch state first; the existing store keeps
  // serving if anything about the file is wrong.
  auto pool = std::make_shared<StringPool>();
  std::vector<SynthesizedMapping> mappings;
  MS_RETURN_IF_ERROR(
      persist::LoadMappingsTsv(path, pool.get(), &mappings, env_));
  owned_corpus_.reset();
  corpus_ = nullptr;
  candidates_.reset();
  blocked_.reset();
  scored_.reset();
  partitions_.reset();
  pool_keepalive_ = std::move(pool);
  last_result_ = SynthesisResult{};
  last_result_.mappings = std::move(mappings);
  last_result_.stats.mappings = last_result_.mappings.size();
  return RebuildStore();
}

Status MappingService::AttachCorpus(const TableCorpus& corpus) {
  if (candidates_ == nullptr) {
    return Status::FailedPrecondition(
        "AttachCorpus: nothing synthesized yet — attach is for re-arming a "
        "snapshot-restored service with its source corpus");
  }
  if (corpus.size() != candidates_->source_tables) {
    return Status::InvalidArgument(
        "AttachCorpus: corpus has " + std::to_string(corpus.size()) +
        " tables but the restored artifacts were synthesized from " +
        std::to_string(candidates_->source_tables) +
        " — attach the exact corpus the snapshot came from before growing "
        "it");
  }
  owned_corpus_.reset();
  corpus_ = &corpus;
  return Status::OK();
}

Status MappingService::AppendAndResynthesize(const TableCorpus& delta) {
  return AppendChain(&delta);
}

Status MappingService::ResynthesizeAppended() { return AppendChain(nullptr); }

Status MappingService::AppendChain(const TableCorpus* delta) {
  if (candidates_ == nullptr) {
    return Status::FailedPrecondition(
        "Append: nothing synthesized yet — call Synthesize (or "
        "OpenFromSnapshot + AttachCorpus) first so there are artifacts to "
        "grow");
  }
  if (corpus_ == nullptr) {
    return Status::FailedPrecondition(
        "Append: this service has no corpus (opened from a snapshot) — "
        "AttachCorpus the snapshot's source corpus first; incremental "
        "extraction needs the corpus-global statistics");
  }
  // Cheap entry-point preconditions first: a call that is going to be
  // rejected must not pay a re-score or partition materialization on its
  // way to the error.
  if (delta != nullptr) {
    if (owned_corpus_ == nullptr) {
      return Status::FailedPrecondition(
          "AppendAndResynthesize: the service does not own its corpus — "
          "grow the external corpus yourself and call "
          "ResynthesizeAppended()");
    }
    if (owned_corpus_->size() != candidates_->source_tables) {
      return Status::FailedPrecondition(
          "AppendAndResynthesize: the corpus already grew past the "
          "synthesized prefix — use ResynthesizeAppended() for externally "
          "added tables");
    }
  } else if (corpus_->size() <= candidates_->source_tables) {
    return Status::FailedPrecondition(
        "ResynthesizeAppended: the corpus did not grow (still " +
        std::to_string(corpus_->size()) + " tables)");
  }
  // The cached graph must reflect the current synonym dictionary contents:
  // delta pairs would be scored under the new snapshot while base edges
  // keep old-dictionary weights, merging a graph no cold run could produce.
  // Re-score first (same guard Resynthesize applies), then append.
  const SynonymDictionary* synonyms = session_.options().compat.synonyms;
  if (synonyms != nullptr &&
      synonyms->version() != scored_synonym_version_) {
    MS_RETURN_IF_ERROR(RunChain(true, blocked_ != nullptr, false));
  }
  // A snapshot-restored family lacks the partition artifact; materialize
  // only what is missing. When blocked/scored were restored, a single
  // Partition() suffices — re-running the chain would redo conflict
  // resolution and rebuild the store just to have the append discard both.
  if (blocked_ == nullptr || scored_ == nullptr) {
    MS_RETURN_IF_ERROR(
        RunChain(true, blocked_ != nullptr, scored_ != nullptr));
  } else if (partitions_ == nullptr) {
    Result<Partitions> parts = session_.Partition(*scored_);
    if (!parts.ok()) return parts.status();
    partitions_ = std::make_unique<Partitions>(std::move(parts).value());
  }
  if (delta != nullptr) {
    Result<size_t> merged = owned_corpus_->AppendFrom(*delta);
    if (!merged.ok()) return merged.status();
  }
  Result<AppendedArtifacts> appended = session_.AppendTables(
      *corpus_, candidates_->source_tables, *candidates_, *blocked_,
      *scored_, *partitions_, last_result_);
  if (!appended.ok()) return appended.status();
  AppendedArtifacts family = std::move(appended).value();
  candidates_ = std::make_unique<CandidateSet>(std::move(family.candidates));
  blocked_ = std::make_unique<BlockedPairs>(std::move(family.blocked));
  scored_ = std::make_unique<ScoredGraph>(std::move(family.scored));
  partitions_ = std::make_unique<Partitions>(std::move(family.partitions));
  const SynonymDictionary* dict = session_.options().compat.synonyms;
  scored_synonym_version_ = dict ? dict->version() : 0;
  last_result_ = std::move(family.result);
  // The merged artifacts resolve against the (possibly different) corpus
  // pool from here on.
  pool_keepalive_ = corpus_->shared_pool();
  return RebuildStore();
}

Status MappingService::Resynthesize(SynthesisOptions new_options) {
  if (candidates_ == nullptr) {
    return Status::FailedPrecondition(
        "Resynthesize: nothing synthesized yet — call Synthesize (or "
        "OpenFromSnapshot) first so there are stage artifacts to reuse");
  }
  const SynthesisOptions old = session_.options();
  MS_RETURN_IF_ERROR(session_.UpdateOptions(std::move(new_options)));
  const SynthesisOptions& now = session_.options();

  // Resume from the first stage whose inputs changed (the defaulted
  // operator== on each options struct documents exactly which knobs an
  // artifact depends on). Thread-count changes only affect scheduling
  // (results are deterministic across worker counts), so they alone
  // invalidate nothing. The graph additionally depends on the synonym
  // dictionary's *contents*: the pointer compares equal after AddSynonym,
  // so reuse also requires the version the graph was scored at.
  const bool keep_candidates = old.extraction == now.extraction;
  if (!keep_candidates && corpus_ == nullptr) {
    // Snapshot-restored services carry artifacts but no raw corpus, so an
    // extraction-invalidating change has nothing to re-extract from.
    return Status::FailedPrecondition(
        "Resynthesize: the extraction options changed but this service has "
        "no corpus (opened from a snapshot) — re-synthesize from a corpus "
        "or keep extraction options fixed");
  }
  const bool keep_blocked = keep_candidates && old.blocking == now.blocking;
  const bool synonyms_unchanged =
      now.compat.synonyms == nullptr ||
      now.compat.synonyms->version() == scored_synonym_version_;
  const bool keep_scored =
      keep_blocked && old.compat == now.compat && synonyms_unchanged;
  return RunChain(keep_candidates, keep_blocked && blocked_ != nullptr,
                  keep_scored && scored_ != nullptr);
}

Status MappingService::RunChain(bool have_candidates, bool have_blocked,
                                bool have_scored) {
  if (!have_candidates) {
    Result<CandidateSet> c = session_.ExtractCandidates(*corpus_);
    if (!c.ok()) return c.status();
    candidates_ = std::make_unique<CandidateSet>(std::move(c).value());
    have_blocked = false;
    have_scored = false;
  }
  if (!have_blocked) {
    Result<BlockedPairs> b = session_.BlockPairs(*candidates_);
    if (!b.ok()) return b.status();
    blocked_ = std::make_unique<BlockedPairs>(std::move(b).value());
    have_scored = false;
  }
  if (!have_scored) {
    Result<ScoredGraph> g = session_.ScorePairs(*candidates_, *blocked_);
    if (!g.ok()) return g.status();
    scored_ = std::make_unique<ScoredGraph>(std::move(g).value());
    const SynonymDictionary* dict = session_.options().compat.synonyms;
    scored_synonym_version_ = dict ? dict->version() : 0;
  }
  Result<Partitions> parts = session_.Partition(*scored_);
  if (!parts.ok()) return parts.status();
  partitions_ = std::make_unique<Partitions>(std::move(parts).value());
  Result<SynthesisResult> r =
      session_.Resolve(*candidates_, *scored_, *partitions_);
  if (!r.ok()) return r.status();
  last_result_ = std::move(r).value();
  return RebuildStore();
}

Status MappingService::RebuildStore() {
  if (pool_keepalive_ == nullptr) {
    return Status::Internal("RebuildStore: no string pool handle");
  }
  // Store lookups must normalize exactly like the pipeline did, or raw user
  // probes ("CA ", "California[1]") miss values the pipeline matched.
  auto store = std::make_unique<MappingStore>(
      pool_keepalive_, session_.options().extraction.normalize);
  for (const auto& m : last_result_.mappings) {
    store->Add(m, m.left_label + "->" + m.right_label);
  }
  store_ = std::move(store);
  return Status::OK();
}

AutoCorrectResult MappingService::SuggestCorrections(
    const std::vector<std::string>& column,
    const AutoCorrectOptions& options) const {
  if (!store_) return AutoCorrectResult{};
  return ::ms::SuggestCorrections(*store_, column, options);
}

AutoFillResult MappingService::AutoFill(
    const std::vector<std::string>& keys,
    const std::vector<std::pair<size_t, std::string>>& examples,
    const AutoFillOptions& options) const {
  if (!store_) return AutoFillResult{};
  return ::ms::AutoFill(*store_, keys, examples, options);
}

AutoJoinResult MappingService::AutoJoin(
    const std::vector<std::string>& left_keys,
    const std::vector<std::string>& right_keys,
    const AutoJoinOptions& options) const {
  if (!store_) return AutoJoinResult{};
  return ::ms::AutoJoin(*store_, left_keys, right_keys, options);
}

}  // namespace ms
