// Serving-style façade over the staged synthesis API: one long-lived object
// that owns a SynthesisSession, the materialized stage artifacts of the
// last synthesis, and the indexed MappingStore the paper's three
// applications (auto-correct Table 3, auto-fill Table 4, auto-join Table 5)
// query. This is the ROADMAP's production shape — a service under heavy
// traffic where repeated queries must not re-pay pipeline setup and
// re-synthesis with tweaked thresholds must only re-run the stages
// downstream of the change:
//
//   MappingService svc(options);
//   svc.Synthesize(corpus);                  // cold: full staged chain
//   svc.AutoJoin(tickers, companies);        // serve from the indexed store
//   opts.compat.edit.cap = 6;
//   svc.Resynthesize(opts);                  // warm: re-scores the cached
//                                            // BlockedPairs, nothing above
//
// Every fallible entry point returns Status; a service never silently
// serves from a store that failed to build.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/auto_correct.h"
#include "apps/auto_fill.h"
#include "apps/auto_join.h"
#include "apps/mapping_store.h"
#include "common/env.h"
#include "persist/rotation.h"
#include "synth/session.h"

namespace ms {

/// Operator-facing account of how the service got to its current serving
/// state. Populated by the rotation-aware entry points; a plain
/// OpenFromSnapshot/SaveSnapshot run leaves it at its defaults.
struct ServiceHealth {
  /// Generation currently served (0 until a rotating open/save succeeds).
  uint64_t generation_served = 0;
  /// Generations OpenLatestSnapshot walked past before finding an intact
  /// one (torn, corrupt, unreadable, or options-incompatible files).
  uint64_t generations_skipped = 0;
  /// Basenames quarantined (renamed to *.corrupt) by the last recovery
  /// walk. Checksum-failing files only — never deleted, kept for
  /// post-mortem.
  std::vector<std::string> quarantined_files;
  /// Cumulative transient-IO retries the service's env absorbed (short
  /// writes, EINTR stalls) across all operations so far.
  uint64_t retries_performed = 0;

  /// True when serving required falling back past the newest generation —
  /// the data served is valid but older than what a writer tried to commit.
  bool degraded() const {
    return generations_skipped > 0 || !quarantined_files.empty();
  }
};

class MappingService {
 public:
  explicit MappingService(SynthesisOptions options = {});
  ~MappingService();

  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  /// Construction-time options validation verdict (mirrors the session's).
  Status status() const { return session_.status(); }

  /// Routes every filesystem operation the service performs (corpus loads,
  /// snapshot save/restore, rotation bookkeeping) through `env`. nullptr
  /// restores the process-wide PosixEnv. The env must outlive the service;
  /// it is not part of the options fingerprint, so snapshots interoperate
  /// across envs.
  void set_env(Env* env) {
    env_ = env != nullptr ? env : Env::Default();
    session_.set_env(env_);
  }
  Env* env() const { return env_; }

  /// Runs the full staged chain on `corpus` and rebuilds the store. The
  /// corpus must outlive the service (stage artifacts borrow its tables;
  /// the string pool is kept alive via its shared handle regardless).
  Status Synthesize(const TableCorpus& corpus);

  /// Loads a TSV corpus (owned by the service) and synthesizes from it.
  /// IO/parse failures propagate instead of yielding an empty store.
  Status SynthesizeFromFile(const std::string& path);

  /// Opens an mmap-backed corpus store (persist/corpus_store.h — build one
  /// with ConvertTsvCorpusToStore) and synthesizes from it. The store's
  /// cell values stay zero-copy views into the mapping, which the corpus
  /// pool pins for as long as any consumer holds it.
  Status SynthesizeFromCorpusStore(const std::string& path);

  // ------------------------------------------------------------ persistence

  /// Writes the materialized stage artifacts and last result to a
  /// checksummed snapshot (*.mssnap). FailedPrecondition when nothing was
  /// synthesized yet.
  Status SaveSnapshot(const std::string& path);

  /// Restores a snapshot saved by SaveSnapshot (or by a SynthesisSession
  /// directly) and serves from it immediately — the restart story: restore,
  /// then AutoJoin/AutoFill/SuggestCorrections with zero re-synthesis.
  /// Fail-closed: on any error (DataLoss corruption, FailedPrecondition
  /// options-fingerprint mismatch) the service keeps its previous state.
  /// The service has no corpus afterwards, so a later Resynthesize may only
  /// change options downstream of extraction.
  Status OpenFromSnapshot(const std::string& path);

  /// Generational save (persist/rotation.h): writes the next generation as
  /// `dir/snap-<gen>.mssnap` (atomic tmp+fsync+rename), commits the
  /// durable CURRENT pointer only after the snapshot is on disk, then
  /// prunes live generations beyond `keep` (quarantined *.corrupt files
  /// are never touched). A failure at any step leaves every previously
  /// committed generation intact — the tmp file is the only possible
  /// debris, and the next save reclaims it.
  Status SaveSnapshotRotating(const std::string& dir,
                              int keep = persist::kDefaultRetainedGenerations);

  /// Last-good recovery: walks `dir`'s generations newest → oldest and
  /// serves the first one that fully verifies. Checksum-failing (DataLoss)
  /// generations are quarantined to *.corrupt on the way down; torn,
  /// unreadable, or options-incompatible ones are skipped. The walk is
  /// recorded in health(). Fail-closed like OpenFromSnapshot: when no
  /// generation is intact the previous serving state survives and the last
  /// (oldest) failure is returned — NotFound when the directory holds no
  /// generations at all.
  Status OpenLatestSnapshot(const std::string& dir);

  /// How the service got to its serving state: generation served,
  /// fallbacks taken, files quarantined, transient retries absorbed.
  ServiceHealth health() const;

  /// Serving-only bootstrap from a curated mappings TSV
  /// (persist/mapping_text.h): loads the file into a fresh store. Status
  /// from the underlying file load propagates — an unreadable or malformed
  /// file leaves the existing store untouched instead of silently serving
  /// an empty one.
  Status OpenFromMappingsFile(const std::string& path);

  // ------------------------------------------------- incremental growth

  /// Incremental corpus growth without a cold rebuild: merges `delta`'s
  /// tables into the service's corpus and runs
  /// SynthesisSession::AppendTables over the cached artifacts — extraction,
  /// blocking, and scoring run only over the delta (plus the corpus-global
  /// coherence re-check), untouched components' mappings carry over, and
  /// the store is rebuilt from the merged result. The service must own or
  /// have an attached corpus (Synthesize*/AttachCorpus) — a purely
  /// snapshot-restored service has nothing to extract from.
  Status AppendAndResynthesize(const TableCorpus& delta);

  /// Same append path for an externally-owned corpus the caller already
  /// grew in place: picks up every table added since the last synthesis.
  /// FailedPrecondition when the corpus did not grow.
  Status ResynthesizeAppended();

  /// Attaches a corpus to a snapshot-restored service, re-enabling
  /// extraction-dependent operations (appends; extraction-option
  /// Resynthesize). The corpus must be the one the snapshot was synthesized
  /// from — same tables, and a pool id-compatible with the snapshot's (save
  /// the corpus store from the same pool state as the snapshot; AppendTables
  /// verifies the shared pool prefix). The corpus must outlive the service.
  Status AttachCorpus(const TableCorpus& corpus);

  /// Warm re-synthesis: diffs `new_options` against the current options and
  /// re-runs only the stages downstream of the first difference, reusing
  /// the materialized artifacts above it verbatim — changed
  /// CompatibilityOptions re-score the cached BlockedPairs; changed
  /// partitioner/conflict/curation options re-partition the cached
  /// ScoredGraph. FailedPrecondition when nothing was synthesized yet.
  Status Resynthesize(SynthesisOptions new_options);

  /// The indexed store applications query. Valid after a successful
  /// Synthesize*/Resynthesize.
  const MappingStore& store() const { return *store_; }
  bool has_store() const { return store_ != nullptr; }
  size_t num_mappings() const { return store_ ? store_->size() : 0; }

  /// Full result (stats included) of the last successful synthesis. Note
  /// the store holds its own copy of every mapping (it normalizes and
  /// indexes them independently), so the service keeps two copies of the
  /// mapping set; callers that only serve lookups and never read
  /// last_result().mappings can clear it.
  const SynthesisResult& last_result() const { return last_result_; }

  /// The string pool serving state resolves against (snapshot pool after a
  /// restore, corpus pool otherwise). Lets callers compare mapping content
  /// across services without assuming id compatibility.
  const std::shared_ptr<StringPool>& shared_pool() const {
    return pool_keepalive_;
  }

  /// Stage-run counters of the underlying session; lets operators verify a
  /// Resynthesize actually skipped the upstream stages.
  const SynthesisSession::SessionStats& session_stats() const {
    return session_.session_stats();
  }

  // ------------------------------------------------- serving entry points
  // Thin forwards to the paper's three applications, bound to the store.

  AutoCorrectResult SuggestCorrections(
      const std::vector<std::string>& column,
      const AutoCorrectOptions& options = {}) const;

  AutoFillResult AutoFill(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<size_t, std::string>>& examples,
      const AutoFillOptions& options = {}) const;

  AutoJoinResult AutoJoin(const std::vector<std::string>& left_keys,
                          const std::vector<std::string>& right_keys,
                          const AutoJoinOptions& options = {}) const;

 private:
  /// Installs the corpus (owned or caller-owned), drops every cached stage
  /// artifact, and runs the full chain — the shared preamble of all three
  /// Synthesize* entry points, so per-run state resets cannot drift apart.
  Status StartFreshRun(std::unique_ptr<TableCorpus> owned,
                       const TableCorpus* external);
  Status RunChain(bool have_candidates, bool have_blocked, bool have_scored);
  /// Shared core of the two append entry points: `delta` is merged into an
  /// owned corpus first when non-null; then every table beyond the
  /// synthesized prefix goes through the session's append path.
  Status AppendChain(const TableCorpus* delta);
  Status RebuildStore();

  SynthesisSession session_;
  Env* env_ = Env::Default();
  std::unique_ptr<TableCorpus> owned_corpus_;     ///< SynthesizeFromFile
  const TableCorpus* corpus_ = nullptr;           ///< source of artifacts
  std::shared_ptr<StringPool> pool_keepalive_;

  // Materialized stage artifacts of the last chain (resume points).
  std::unique_ptr<CandidateSet> candidates_;
  std::unique_ptr<BlockedPairs> blocked_;
  std::unique_ptr<ScoredGraph> scored_;
  std::unique_ptr<Partitions> partitions_;
  /// Synonym-dictionary version the cached graph was scored at; mutations
  /// behind an unchanged pointer must invalidate the graph.
  uint64_t scored_synonym_version_ = 0;

  SynthesisResult last_result_;
  std::unique_ptr<MappingStore> store_;

  /// Rotation bookkeeping behind health(); retries_performed is read live
  /// from the env so plain-path retries count too.
  uint64_t generation_served_ = 0;
  uint64_t generations_skipped_ = 0;
  std::vector<std::string> quarantined_files_;
};

}  // namespace ms
