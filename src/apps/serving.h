// Serving-style façade over the staged synthesis API: one long-lived object
// that owns a SynthesisSession, the materialized stage artifacts of the
// last synthesis, and the indexed MappingStore the paper's three
// applications (auto-correct Table 3, auto-fill Table 4, auto-join Table 5)
// query. This is the ROADMAP's production shape — a service under heavy
// traffic where repeated queries must not re-pay pipeline setup and
// re-synthesis with tweaked thresholds must only re-run the stages
// downstream of the change:
//
//   MappingService svc(options);
//   svc.Synthesize(corpus);                  // cold: full staged chain
//   svc.AutoJoin(tickers, companies);        // serve from the indexed store
//   opts.compat.edit.cap = 6;
//   svc.Resynthesize(opts);                  // warm: re-scores the cached
//                                            // BlockedPairs, nothing above
//
// Concurrency model (docs/serving.md has the full contract): the service
// separates wait-free readers from serialized writers RCU-style.
//
//   - Readers (SuggestCorrections / AutoFill / AutoJoin / LookupBatch /
//     AcquireSnapshot / has_store / num_mappings / health) never touch
//     mutable session state: each call acquire-loads the current immutable
//     ServingSnapshot from one atomic pointer and runs entirely against it.
//     No locks, no waiting on writers, any number of threads.
//   - Writers (Synthesize* / Resynthesize / AppendAndResynthesize /
//     ResynthesizeAppended / RemoveAndResynthesize / ReplaceAndResynthesize /
//     Open* / Save* / AttachCorpus / set_env)
//     serialize on an internal mutex, build the next generation's
//     artifacts and store off to the side, and publish them with a single
//     atomic store. A reader holding the old snapshot keeps serving it —
//     shared_ptr ownership keeps the old store and pool alive until the
//     last in-flight call drops its handle.
//
// Every fallible entry point returns Status and is fail-closed: a failed
// transition leaves the previous serving state — store, pool, artifacts,
// corpus, options, and health() — exactly as it was.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "apps/auto_correct.h"
#include "apps/auto_fill.h"
#include "apps/auto_join.h"
#include "apps/mapping_store.h"
#include "common/env.h"
#include "persist/rotation.h"
#include "synth/session.h"

namespace ms {

/// Remote-serving load counters, reported by a MappingServer (net/server.h)
/// attached to this service and folded into ServiceHealth so one health
/// probe covers both the storage story and the network story. All zeros
/// when no server is attached.
struct RemoteServingStats {
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t malformed_frames = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t connections_opened = 0;
  uint64_t connections_active = 0;
};

/// Operator-facing account of how the service got to its current serving
/// state. Rotation fields are populated by the rotation-aware entry points
/// and reset by every successful serving-state transition (a freshly
/// synthesized or plainly opened service is healthy by definition — see
/// docs/serving.md for the exact reset semantics).
struct ServiceHealth {
  /// Generation currently served (0 until a rotating open/save succeeds).
  uint64_t generation_served = 0;
  /// Generations OpenLatestSnapshot walked past before finding an intact
  /// one (torn, corrupt, unreadable, or options-incompatible files).
  uint64_t generations_skipped = 0;
  /// Basenames quarantined (renamed to *.corrupt) by the last recovery
  /// walk. Checksum-failing files only — never deleted, kept for
  /// post-mortem.
  std::vector<std::string> quarantined_files;
  /// Cumulative transient-IO retries the service's env absorbed (short
  /// writes, EINTR stalls) across all operations so far.
  uint64_t retries_performed = 0;
  /// Cumulative terminal IO failures the service's env reported (injected
  /// faults included; expected NotFound probes excluded).
  uint64_t io_failures = 0;
  /// Load counters of the attached remote server (zeros without one).
  RemoteServingStats remote;

  /// True when serving required falling back past the newest generation —
  /// the data served is valid but older than what a writer tried to commit.
  bool degraded() const {
    return generations_skipped > 0 || !quarantined_files.empty();
  }
};

/// One immutable serving generation: everything a lookup needs, published
/// atomically as a unit. Acquire a handle once per request (or batch of
/// requests that must agree) and every probe against it is consistent —
/// the store was built from exactly `result`'s mappings against exactly
/// `pool`. Handles are plain shared_ptrs: safe to hold across writer
/// transitions (the generation stays alive until the last handle drops)
/// and safe to pass between threads.
struct ServingSnapshot {
  std::shared_ptr<const MappingStore> store;   ///< never null when published
  std::shared_ptr<StringPool> pool;            ///< pins store's value strings
  std::shared_ptr<const SynthesisResult> result;  ///< never null; has stats
  /// Monotonic publication counter (1 = first successful transition).
  /// Readers can assert they never observe it moving backwards.
  uint64_t version = 0;
};

namespace internal {

#if !defined(MS_TSAN_BUILD) && defined(__SANITIZE_THREAD__)
#define MS_TSAN_BUILD 1
#endif
#if !defined(MS_TSAN_BUILD) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MS_TSAN_BUILD 1
#endif
#endif

#if defined(MS_TSAN_BUILD)
/// TSan builds publish through a mutex instead of std::atomic<shared_ptr>.
/// GCC 12's _Sp_atomic::load releases its internal spin-bit with
/// memory_order_relaxed after reading _M_ptr (bits/shared_ptr_atomic.h), so
/// the writer's later lock acquisition never formally synchronizes with a
/// reader's unlock — ThreadSanitizer reports the _M_ptr swap racing reader
/// loads inside the standard library. Substituting a mutex here (identical
/// semantics: one publication point, immutable snapshots) lets TSan verify
/// OUR protocol instead of libstdc++'s internals. Production builds keep
/// the wait-free atomic below.
class ServingSnapshotCell {
 public:
  std::shared_ptr<const ServingSnapshot> load(std::memory_order) const {
    const std::lock_guard<std::mutex> lk(mu_);
    return ptr_;
  }
  void store(std::shared_ptr<const ServingSnapshot> next, std::memory_order) {
    const std::lock_guard<std::mutex> lk(mu_);
    ptr_ = std::move(next);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ServingSnapshot> ptr_;
};
#else
/// The RCU publication slot: readers acquire-load a handle wait-free,
/// writers release-store the next finished generation.
using ServingSnapshotCell = std::atomic<std::shared_ptr<const ServingSnapshot>>;
#endif

}  // namespace internal

class MappingService {
 public:
  explicit MappingService(SynthesisOptions options = {});
  ~MappingService();

  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  /// Construction-time options validation verdict (mirrors the session's).
  Status status() const { return session_.status(); }

  /// Routes every filesystem operation the service performs (corpus loads,
  /// snapshot save/restore, rotation bookkeeping) through `env`. nullptr
  /// restores the process-wide PosixEnv. The env must outlive the service;
  /// it is not part of the options fingerprint, so snapshots interoperate
  /// across envs. Writer-serialized.
  void set_env(Env* env);
  Env* env() const { return env_; }

  /// Runs the full staged chain on `corpus` and rebuilds the store. The
  /// corpus must outlive the service (stage artifacts borrow its tables;
  /// the string pool is kept alive via its shared handle regardless).
  Status Synthesize(const TableCorpus& corpus);

  /// Loads a TSV corpus (owned by the service) and synthesizes from it.
  /// IO/parse failures propagate instead of yielding an empty store.
  Status SynthesizeFromFile(const std::string& path);

  /// Opens an mmap-backed corpus store (persist/corpus_store.h — build one
  /// with ConvertTsvCorpusToStore) and synthesizes from it. The store's
  /// cell values stay zero-copy views into the mapping, which the corpus
  /// pool pins for as long as any consumer holds it.
  Status SynthesizeFromCorpusStore(const std::string& path);

  // ------------------------------------------------------------ persistence

  /// Writes the materialized stage artifacts and last result to a
  /// checksummed snapshot (*.mssnap). FailedPrecondition when nothing was
  /// synthesized yet.
  Status SaveSnapshot(const std::string& path);

  /// Restores a snapshot saved by SaveSnapshot (or by a SynthesisSession
  /// directly) and serves from it immediately — the restart story: restore,
  /// then AutoJoin/AutoFill/SuggestCorrections with zero re-synthesis.
  /// Fail-closed: on any error (DataLoss corruption, FailedPrecondition
  /// options-fingerprint mismatch) the service keeps its previous state.
  /// The service has no corpus afterwards, so a later Resynthesize may only
  /// change options downstream of extraction.
  Status OpenFromSnapshot(const std::string& path);

  /// Generational save (persist/rotation.h): writes the next generation as
  /// `dir/snap-<gen>.mssnap` (atomic tmp+fsync+rename), commits the
  /// durable CURRENT pointer only after the snapshot is on disk, then
  /// prunes live generations beyond `keep` (quarantined *.corrupt files
  /// are never touched). A failure at any step leaves every previously
  /// committed generation intact — the tmp file is the only possible
  /// debris, and the next save reclaims it. On success health() serves the
  /// new generation with a cleared skip/quarantine record: the committed
  /// write proves the degradation recorded by an earlier recovery walk is
  /// behind us.
  Status SaveSnapshotRotating(const std::string& dir,
                              int keep = persist::kDefaultRetainedGenerations);

  /// Last-good recovery: walks `dir`'s generations newest → oldest and
  /// serves the first one that fully verifies. Checksum-failing (DataLoss)
  /// generations are quarantined to *.corrupt on the way down; torn,
  /// unreadable, or options-incompatible ones are skipped. The walk is
  /// recorded in health(). Fail-closed like OpenFromSnapshot: when no
  /// generation is intact the previous serving state survives and the last
  /// (oldest) failure is returned — NotFound when the directory holds no
  /// generations at all.
  Status OpenLatestSnapshot(const std::string& dir);

  /// How the service got to its serving state: generation served,
  /// fallbacks taken, files quarantined, transient retries absorbed, and —
  /// when a remote server is attached — network load counters.
  /// Wait-free for readers (internal bookkeeping mutex, never held across
  /// a chain run).
  ServiceHealth health() const;

  /// Registers the source of ServiceHealth::remote — a MappingServer
  /// (net/server.h) installs its own counter aggregation on Start and
  /// clears it (nullptr) on Stop. The callback runs under the health
  /// bookkeeping mutex, so it must be lock-free and cheap (the server's is
  /// a relaxed-atomic sweep). Not a general-purpose surface.
  void SetRemoteStatsSource(std::function<RemoteServingStats()> source);

  /// Serving-only bootstrap from a curated mappings TSV
  /// (persist/mapping_text.h): loads the file into a fresh store. Status
  /// from the underlying file load propagates — an unreadable or malformed
  /// file leaves the existing store untouched instead of silently serving
  /// an empty one.
  Status OpenFromMappingsFile(const std::string& path);

  // ------------------------------------------------- incremental growth

  /// Incremental corpus growth without a cold rebuild: merges `delta`'s
  /// tables into the service's corpus and runs
  /// SynthesisSession::AppendTables over the cached artifacts — extraction,
  /// blocking, and scoring run only over the delta (plus the corpus-global
  /// coherence re-check), untouched components' mappings carry over, and
  /// the store is rebuilt from the merged result. The service must own or
  /// have an attached corpus (Synthesize*/AttachCorpus) — a purely
  /// snapshot-restored service has nothing to extract from. Fail-closed
  /// AND recoverable: a failed append rolls the corpus merge back, so the
  /// same delta can simply be retried.
  Status AppendAndResynthesize(const TableCorpus& delta);

  /// Same append path for an externally-owned corpus the caller already
  /// grew in place: picks up every table added since the last synthesis.
  /// FailedPrecondition when the corpus did not grow.
  Status ResynthesizeAppended();

  /// Incremental removal without a cold rebuild: tombstones `removed`
  /// tables in the service's corpus (slots and ids stay stable) and runs
  /// SynthesisSession::RemoveTables over the cached artifacts — only graph
  /// components that lost a candidate are re-partitioned and re-resolved,
  /// and the store is rebuilt from the surviving mappings. Requires an
  /// owned corpus (Synthesize/SynthesizeFromFile/...): removal mutates the
  /// corpus in place, which the service must not do to a caller-owned one.
  /// Fail-closed AND recoverable like appends: a failure at any point —
  /// inside the session or between the session mutation and the publish —
  /// restores the corpus (columns, tables, and pool tail), so the same
  /// removal can simply be retried.
  Status RemoveAndResynthesize(const std::vector<uint32_t>& removed);

  /// Atomic remove + append in one maintenance pass
  /// (SynthesisSession::ReplaceTables): tombstones `removed`, merges
  /// `delta`'s tables at the tail, reconciles the artifact family once, and
  /// rebuilds the store. Same owned-corpus requirement and retryable
  /// rollback contract as RemoveAndResynthesize.
  Status ReplaceAndResynthesize(const std::vector<uint32_t>& removed,
                                const TableCorpus& delta);

  /// Attaches a corpus to a snapshot-restored service, re-enabling
  /// extraction-dependent operations (appends; extraction-option
  /// Resynthesize). The corpus must be the one the snapshot was synthesized
  /// from — same tables, and a pool id-compatible with the snapshot's (save
  /// the corpus store from the same pool state as the snapshot; AppendTables
  /// verifies the shared pool prefix). The corpus must outlive the service.
  Status AttachCorpus(const TableCorpus& corpus);

  /// Warm re-synthesis: diffs `new_options` against the current options and
  /// re-runs only the stages downstream of the first difference, reusing
  /// the materialized artifacts above it verbatim — changed
  /// CompatibilityOptions re-score the cached BlockedPairs; changed
  /// partitioner/conflict/curation options re-partition the cached
  /// ScoredGraph. FailedPrecondition when nothing was synthesized yet.
  /// Fail-closed including the options themselves: a failed re-run restores
  /// the previous options, so the served artifacts and the session
  /// configuration never drift apart.
  Status Resynthesize(SynthesisOptions new_options);

  // --------------------------------------------------- snapshot readers

  /// The current serving generation, or nullptr before the first
  /// successful transition. One acquire-load; hold the handle for as many
  /// lookups as must agree with each other (a single app call does this
  /// internally). See ServingSnapshot for lifetime rules.
  std::shared_ptr<const ServingSnapshot> AcquireSnapshot() const {
    return serving_.load(std::memory_order_acquire);
  }

  /// Lookup direction for LookupBatch.
  enum class LookupDirection { kLeftToRight, kRightToLeft };

  /// Batched functional lookup against the current snapshot: element k is
  /// mapping `mapping_index`'s (normalized) image of values[k], or nullopt
  /// when absent. Amortizes normalization and hash probes over the batch
  /// (distinct values probe once — see MappingStore::LookupRightBatch).
  /// All-nullopt when nothing is served yet or the index is out of range.
  /// Wait-free reader.
  std::vector<std::optional<std::string>> LookupBatch(
      size_t mapping_index, const std::vector<std::string>& values,
      LookupDirection direction = LookupDirection::kLeftToRight) const;

  /// True when a serving snapshot is published. Wait-free reader.
  bool has_store() const { return AcquireSnapshot() != nullptr; }
  /// Mappings in the current snapshot's store (0 before the first
  /// transition). Wait-free reader.
  size_t num_mappings() const {
    const auto snap = AcquireSnapshot();
    return snap ? snap->store->size() : 0;
  }

  /// The indexed store applications query. Valid after a successful
  /// Synthesize*/Resynthesize. NOT a wait-free reader: the reference is
  /// only stable while no writer runs — single-threaded callers and tests
  /// use this; concurrent readers must AcquireSnapshot() and use
  /// snapshot->store.
  const MappingStore& store() const { return *store_; }

  /// Full result (stats included) of the last successful synthesis. Same
  /// writer-synchronization caveat as store(); concurrent readers use
  /// AcquireSnapshot()->result. Note the store holds its own copy of every
  /// mapping (it normalizes and indexes them independently), so the
  /// service keeps two copies of the mapping set.
  const SynthesisResult& last_result() const {
    static const SynthesisResult kEmpty;
    return last_result_ ? *last_result_ : kEmpty;
  }

  /// The string pool serving state resolves against (snapshot pool after a
  /// restore, corpus pool otherwise). Lets callers compare mapping content
  /// across services without assuming id compatibility. Same
  /// writer-synchronization caveat as store().
  const std::shared_ptr<StringPool>& shared_pool() const {
    return pool_keepalive_;
  }

  /// Stage-run counters of the underlying session; lets operators verify a
  /// Resynthesize actually skipped the upstream stages. Writer-side
  /// observability (same caveat as store()).
  const SynthesisSession::SessionStats& session_stats() const {
    return session_.session_stats();
  }

  /// Shards for the store's containment index, applied at the next
  /// successful transition's store build (0 = bloom-screened scan; see
  /// MappingStore). Writer-serialized.
  void set_containment_index_shards(size_t shards);

  // ------------------------------------------------- serving entry points
  // Thin forwards to the paper's three applications, each bound to one
  // acquired snapshot for its whole run. Wait-free readers.

  AutoCorrectResult SuggestCorrections(
      const std::vector<std::string>& column,
      const AutoCorrectOptions& options = {}) const;

  AutoFillResult AutoFill(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<size_t, std::string>>& examples,
      const AutoFillOptions& options = {}) const;

  AutoJoinResult AutoJoin(const std::vector<std::string>& left_keys,
                          const std::vector<std::string>& right_keys,
                          const AutoJoinOptions& options = {}) const;

  // --------------------------------------------------- test-only faults

  /// Deterministic chain-failure points for the fail-closed regression
  /// tests — the CPU-side analog of the persistence layer's
  /// FaultInjectionEnv (tests/fault_test.cc). The next time any entry
  /// point reaches the armed point it fails once with Internal. Not a
  /// production surface.
  enum class ServingFault {
    kNone = 0,
    kExtract,        ///< before stage 1 of a chain run
    kBlock,          ///< before stage 2
    kScore,          ///< before stage 3
    kPartition,      ///< before stage 4
    kResolve,        ///< before stage 5
    kAppendCommit,   ///< after the session append succeeded, before commit
    kPublish,        ///< at the head of commit, before any state mutates
  };
  void InjectFaultForTests(ServingFault point);

 private:
  /// The next generation under construction: every transition stages its
  /// entire outcome here (cheap shared_ptr aliases of whatever it reuses)
  /// and only CommitAndPublish moves it into the served members — mid-chain
  /// failures cannot leave mixed-generation state by construction.
  struct BuildState {
    /// When true the commit replaces the service's corpus with
    /// owned_corpus/corpus below (fresh runs and snapshot opens); when
    /// false the current corpus pointers are kept (resynthesis, appends).
    bool replace_corpus = false;
    std::unique_ptr<TableCorpus> owned_corpus;
    const TableCorpus* corpus = nullptr;  ///< extraction source for the build
    std::shared_ptr<StringPool> pool;
    std::shared_ptr<const CandidateSet> candidates;
    std::shared_ptr<const BlockedPairs> blocked;
    std::shared_ptr<const ScoredGraph> scored;
    std::shared_ptr<const Partitions> partitions;
    std::shared_ptr<const SynthesisResult> result;
    uint64_t scored_synonym_version = 0;
  };

  /// Stages the current family (shared aliases, current corpus) as the
  /// starting point of an incremental transition.
  BuildState StageFromCurrent() const;
  /// Runs the staged chain into `s` from the deepest present artifact.
  Status RunChain(BuildState* s, bool have_candidates, bool have_blocked,
                  bool have_scored);
  /// Builds the next store from `s` and atomically publishes the new
  /// generation; on success also resets the rotation bookkeeping (every
  /// successful transition serves fresh, healthy state). The only method
  /// that mutates served members, and it never fails after the first
  /// member assignment.
  Status CommitAndPublish(BuildState&& s);
  Status ConsumeFault(ServingFault point);

  // Writer implementations; writer_mu_ must be held.
  Status StartFreshRunLocked(std::unique_ptr<TableCorpus> owned,
                             const TableCorpus* external);
  Status OpenFromSnapshotLocked(const std::string& path);
  Status SaveSnapshotLocked(const std::string& path);
  Status AppendChainLocked(const TableCorpus* delta);
  Status MutateChainLocked(std::vector<uint32_t> removed,
                           const TableCorpus* delta);
  /// Shared incremental-transition preamble: re-scores the staged graph if
  /// the synonym dictionary moved past the version it was scored at, then
  /// materializes whatever family members a snapshot restore left out.
  Status PrepareIncrementalFamilyLocked(BuildState* s);
  /// Shared incremental-transition tail: moves a session-produced artifact
  /// family into the staged state and publishes it.
  Status CommitFamilyLocked(BuildState&& s, AppendedArtifacts family);
  Status ResynthesizeLocked(SynthesisOptions new_options);

  SynthesisSession session_;
  Env* env_ = Env::Default();

  /// Serializes every mutating entry point; never held by readers.
  mutable std::mutex writer_mu_;

  std::unique_ptr<TableCorpus> owned_corpus_;     ///< SynthesizeFromFile
  const TableCorpus* corpus_ = nullptr;           ///< source of artifacts
  std::shared_ptr<StringPool> pool_keepalive_;

  // Materialized stage artifacts of the last chain (resume points). Shared
  // const handles so staging a transition aliases them for free and a
  // commit swaps the whole family at once.
  std::shared_ptr<const CandidateSet> candidates_;
  std::shared_ptr<const BlockedPairs> blocked_;
  std::shared_ptr<const ScoredGraph> scored_;
  std::shared_ptr<const Partitions> partitions_;
  /// Synonym-dictionary version the cached graph was scored at; mutations
  /// behind an unchanged pointer must invalidate the graph.
  uint64_t scored_synonym_version_ = 0;

  std::shared_ptr<const SynthesisResult> last_result_;
  std::shared_ptr<const MappingStore> store_;
  size_t containment_index_shards_ = 0;
  uint64_t versions_published_ = 0;
  ServingFault injected_fault_ = ServingFault::kNone;

  /// The RCU publication point: readers acquire-load, CommitAndPublish
  /// release-stores. Never null after the first successful transition.
  /// (Mutex-guarded under TSan — see internal::ServingSnapshotCell.)
  internal::ServingSnapshotCell serving_;

  /// Rotation bookkeeping behind health(); its own mutex so readers polling
  /// health never contend with a chain run (writer_mu_ is held across
  /// whole transitions). Lock order: writer_mu_ before health_mu_.
  mutable std::mutex health_mu_;
  uint64_t generation_served_ = 0;
  uint64_t generations_skipped_ = 0;
  std::vector<std::string> quarantined_files_;
  /// Set by an attached MappingServer; consulted by health().
  std::function<RemoteServingStats()> remote_stats_source_;
};

}  // namespace ms
