#include "baselines/correlation.h"

#include <algorithm>
#include <numeric>

namespace ms {

CorrelationResult ParallelPivotClustering(const CompatibilityGraph& graph,
                                          const CorrelationOptions& options) {
  const size_t n = graph.num_vertices();
  CorrelationResult result;
  result.cluster_of.assign(n, UINT32_MAX);

  // Positive adjacency under the sign rule.
  std::vector<std::vector<uint32_t>> pos_adj(n);
  for (const auto& e : graph.edges()) {
    if (e.w_pos >= options.positive_threshold && e.w_neg >= options.tau) {
      pos_adj[e.u].push_back(e.v);
      pos_adj[e.v].push_back(e.u);
    }
  }

  Rng rng(options.seed);
  std::vector<uint32_t> rank(n);
  std::vector<bool> active(n, true);
  size_t remaining = n;
  uint32_t next_cluster = 0;

  while (remaining > 0 && result.rounds < options.max_rounds) {
    ++result.rounds;
    // Fresh random permutation rank each round (CDK14).
    std::vector<uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    rng.Shuffle(perm);
    for (uint32_t i = 0; i < n; ++i) rank[perm[i]] = i;

    // Pivots: active vertices that precede all active positive neighbors.
    std::vector<uint32_t> pivots;
    for (uint32_t v = 0; v < n; ++v) {
      if (!active[v]) continue;
      bool is_pivot = true;
      for (uint32_t u : pos_adj[v]) {
        if (active[u] && rank[u] < rank[v]) {
          is_pivot = false;
          break;
        }
      }
      if (is_pivot) pivots.push_back(v);
    }

    // Each pivot claims itself + its active positive neighbors. A vertex
    // adjacent to several pivots goes to the lowest-rank one.
    std::vector<uint32_t> claimed_by(n, UINT32_MAX);
    for (uint32_t p : pivots) claimed_by[p] = p;
    for (uint32_t p : pivots) {
      for (uint32_t u : pos_adj[p]) {
        if (!active[u]) continue;
        if (claimed_by[u] == UINT32_MAX ||
            (claimed_by[u] != u && rank[p] < rank[claimed_by[u]])) {
          claimed_by[u] = p;
        }
      }
    }
    for (uint32_t p : pivots) {
      result.cluster_of[p] = next_cluster;
      for (uint32_t u : pos_adj[p]) {
        if (active[u] && claimed_by[u] == p) {
          result.cluster_of[u] = next_cluster;
        }
      }
      ++next_cluster;
    }
    for (uint32_t v = 0; v < n; ++v) {
      if (active[v] && result.cluster_of[v] != UINT32_MAX) {
        active[v] = false;
        --remaining;
      }
    }
  }
  // Anything left after the round budget becomes singletons (timeout
  // semantics of the paper's 20h cap).
  for (uint32_t v = 0; v < n; ++v) {
    if (result.cluster_of[v] == UINT32_MAX) {
      result.cluster_of[v] = next_cluster++;
    }
  }
  result.num_clusters = next_cluster;
  return result;
}

std::vector<BinaryTable> CorrelationRelations(
    const CompatibilityGraph& graph,
    const std::vector<BinaryTable>& candidates,
    const CorrelationOptions& options) {
  CorrelationResult r = ParallelPivotClustering(graph, options);
  std::vector<std::vector<ValuePair>> pair_sets(r.num_clusters);
  for (uint32_t v = 0; v < candidates.size(); ++v) {
    auto& dst = pair_sets[r.cluster_of[v]];
    dst.insert(dst.end(), candidates[v].pairs().begin(),
               candidates[v].pairs().end());
  }
  std::vector<BinaryTable> out;
  out.reserve(pair_sets.size());
  for (auto& pairs : pair_sets) {
    if (pairs.empty()) continue;
    out.push_back(BinaryTable::FromPairs(std::move(pairs)));
  }
  return out;
}

}  // namespace ms
