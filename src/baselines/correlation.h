// Correlation-clustering baseline: the parallel-pivot algorithm of
// Chierichetti, Dalvi & Kumar (KDD 2014) [12], the method the paper compares
// against as "Correlation". Edges are signed from the same w+/w- scores as
// Synthesis; the algorithm repeatedly elects random pivots (vertices that
// precede all their active positive neighbors in a round's random
// permutation) and assigns their positive neighbors to them. The paper notes
// two weaknesses this implementation reproduces: negative edges dominate the
// objective, and pivots only see one-hop neighborhoods, fragmenting chains
// of small tables.
#pragma once

#include <vector>

#include "common/random.h"
#include "graph/weighted_graph.h"
#include "table/binary_table.h"

namespace ms {

struct CorrelationOptions {
  /// An edge is "+" when w+ >= positive_threshold and w- >= tau; else "-".
  double positive_threshold = 0.5;
  double tau = -0.2;
  /// Safety bound on pivot rounds (the paper's run timed out at 20h; we
  /// bound rounds instead). O(log n · Δ+) expected.
  size_t max_rounds = 64;
  uint64_t seed = 1234;
};

struct CorrelationResult {
  std::vector<uint32_t> cluster_of;   ///< per vertex, dense ids
  size_t num_clusters = 0;
  size_t rounds = 0;                  ///< pivot rounds executed
};

CorrelationResult ParallelPivotClustering(const CompatibilityGraph& graph,
                                          const CorrelationOptions& options);

/// Unions candidates per cluster into output relations.
std::vector<BinaryTable> CorrelationRelations(
    const CompatibilityGraph& graph,
    const std::vector<BinaryTable>& candidates,
    const CorrelationOptions& options = {});

}  // namespace ms
