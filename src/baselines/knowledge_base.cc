#include "baselines/knowledge_base.h"

namespace ms {

std::vector<BinaryTable> KnowledgeBaseRelations(
    const std::vector<RelationshipSpec>& specs, KbKind kind, StringPool* pool,
    const KnowledgeBaseOptions& options) {
  Rng rng(options.seed ^ (kind == KbKind::kFreebase ? 0xf0ee : 0x9a60));
  std::vector<BinaryTable> out;
  for (const auto& spec : specs) {
    const bool covered =
        kind == KbKind::kFreebase ? spec.in_freebase : spec.in_yago;
    if (!covered) continue;
    std::vector<ValuePair> pairs;
    for (const auto& e : spec.entities) {
      if (!rng.Bernoulli(options.entity_coverage)) continue;
      // Canonical form only — KBs typically carry no synonyms (Section 6).
      std::string left = NormalizeCell(e.left_forms[0], options.normalize);
      std::string right = NormalizeCell(e.right, options.normalize);
      if (left.empty() || right.empty() || left == right) continue;
      pairs.push_back({pool->Intern(left), pool->Intern(right)});
    }
    if (pairs.empty()) continue;
    BinaryTable rel = BinaryTable::FromPairs(std::move(pairs));
    rel.left_name = spec.left_header;
    rel.right_name = spec.right_header;
    rel.domain = kind == KbKind::kFreebase ? "freebase.com" : "yago.mpg.de";
    out.push_back(std::move(rel));
    // The subject->object direction; KB processing in the paper also forms
    // object->subject candidates. Add the reverse when it is functional.
    std::vector<ValuePair> rev;
    for (const auto& p : out.back().pairs()) rev.push_back({p.right, p.left});
    BinaryTable reversed = BinaryTable::FromPairs(std::move(rev));
    if (reversed.IsApproximateMapping(0.95)) {
      reversed.left_name = spec.right_header;
      reversed.right_name = spec.left_header;
      reversed.domain = out.back().domain;
      out.push_back(std::move(reversed));
    }
  }
  return out;
}

}  // namespace ms
