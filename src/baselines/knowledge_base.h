// Knowledge-base surrogates for the Freebase [7] and YAGO [34] baselines.
// Real KBs have three signatures the paper leans on (Section 6):
//   1. high precision (heavily curated),
//   2. one canonical mention per entity (no Table 6 synonyms),
//   3. many mapping relationships simply missing.
// The surrogate reproduces all three: it materializes, for each relation a
// KB covers, the canonical-form pairs only, with partial entity coverage.
#pragma once

#include <vector>

#include "common/random.h"
#include "corpusgen/domain.h"
#include "table/binary_table.h"
#include "table/string_pool.h"
#include "text/normalize.h"

namespace ms {

struct KnowledgeBaseOptions {
  /// Fraction of a covered relation's entities present in the KB.
  double entity_coverage = 0.9;
  uint64_t seed = 99;
  NormalizeOptions normalize;
};

enum class KbKind { kFreebase, kYago };

/// Builds the KB's relations (normalized pairs interned into `pool`) from
/// the ground-truth specs. Relations the KB does not cover are absent.
std::vector<BinaryTable> KnowledgeBaseRelations(
    const std::vector<RelationshipSpec>& specs, KbKind kind, StringPool* pool,
    const KnowledgeBaseOptions& options = {});

}  // namespace ms
