#include "baselines/schema_cc.h"

#include "graph/union_find.h"

namespace ms {

std::vector<BinaryTable> SchemaCcRelations(
    const CompatibilityGraph& graph,
    const std::vector<BinaryTable>& candidates,
    const SchemaCcOptions& options) {
  UnionFind uf(candidates.size());
  for (const auto& e : graph.edges()) {
    const double score = options.use_negative_signals ? e.w_pos + e.w_neg
                                                      : e.w_pos;
    if (score >= options.threshold) uf.Union(e.u, e.v);
  }
  std::vector<BinaryTable> out;
  for (auto& comp : uf.Components()) {
    std::vector<ValuePair> pairs;
    for (uint32_t v : comp) {
      pairs.insert(pairs.end(), candidates[v].pairs().begin(),
                   candidates[v].pairs().end());
    }
    BinaryTable merged = BinaryTable::FromPairs(std::move(pairs));
    merged.left_name = candidates[comp[0]].left_name;
    merged.right_name = candidates[comp[0]].right_name;
    out.push_back(std::move(merged));
  }
  return out;
}

std::vector<std::vector<BinaryTable>> SchemaCcThresholdSweep(
    const CompatibilityGraph& graph,
    const std::vector<BinaryTable>& candidates,
    const std::vector<double>& thresholds, bool use_negative_signals) {
  std::vector<std::vector<BinaryTable>> out;
  out.reserve(thresholds.size());
  for (double t : thresholds) {
    SchemaCcOptions o;
    o.threshold = t;
    o.use_negative_signals = use_negative_signals;
    out.push_back(SchemaCcRelations(graph, candidates, o));
  }
  return out;
}

}  // namespace ms
