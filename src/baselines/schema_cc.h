// Schema-matching-style baselines (Section 5.1): pair-wise match decisions
// on the *same* positive/negative scores as Synthesis, aggregated to groups
// by transitivity (connected components) — the paper's SchemaCC and
// SchemaPosCC. A pair "matches" when its combined score clears a threshold;
// components of the match graph become output relations by pair-set union.
#pragma once

#include <vector>

#include "graph/weighted_graph.h"
#include "table/binary_table.h"

namespace ms {

struct SchemaCcOptions {
  /// Match iff w+ + w- >= threshold (SchemaCC) or w+ >= threshold
  /// (SchemaPosCC when use_negative_signals = false).
  double threshold = 0.5;
  bool use_negative_signals = true;
};

/// Runs connected-component aggregation; returns one unioned relation per
/// component (singletons included).
std::vector<BinaryTable> SchemaCcRelations(
    const CompatibilityGraph& graph,
    const std::vector<BinaryTable>& candidates,
    const SchemaCcOptions& options = {});

/// Paper protocol: tries each threshold and returns the per-threshold
/// outputs so the evaluator can report the best.
std::vector<std::vector<BinaryTable>> SchemaCcThresholdSweep(
    const CompatibilityGraph& graph,
    const std::vector<BinaryTable>& candidates,
    const std::vector<double>& thresholds, bool use_negative_signals);

}  // namespace ms
