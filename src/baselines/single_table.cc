#include "baselines/single_table.h"

namespace ms {

std::vector<BinaryTable> SingleTableRelations(
    const std::vector<BinaryTable>& candidates,
    std::optional<TableSource> source) {
  std::vector<BinaryTable> out;
  for (const auto& c : candidates) {
    if (!source || c.source == *source) out.push_back(c);
  }
  return out;
}

}  // namespace ms
