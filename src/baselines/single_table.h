// Single-table baselines (no synthesis): WikiTable / WebTable / EntTable
// score each benchmark case by the *best individual* candidate table from
// the given source. The paper stresses this is an upper bound, not a
// realistic method — a human cannot inspect millions of raw tables.
#pragma once

#include <optional>
#include <vector>

#include "table/binary_table.h"
#include "table/table.h"

namespace ms {

/// Candidates restricted to a source kind (std::nullopt = all sources).
std::vector<BinaryTable> SingleTableRelations(
    const std::vector<BinaryTable>& candidates,
    std::optional<TableSource> source);

}  // namespace ms
