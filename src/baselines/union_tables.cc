#include "baselines/union_tables.h"

#include <string>
#include <unordered_map>

#include "common/string_util.h"

namespace ms {
namespace {

std::vector<BinaryTable> UnionByKey(
    const std::vector<BinaryTable>& candidates, bool include_domain) {
  std::unordered_map<std::string, std::vector<ValuePair>> groups;
  std::unordered_map<std::string, const BinaryTable*> representative;
  for (const auto& c : candidates) {
    // Case-insensitive header key, mirroring [30]'s name matching.
    std::string key = ToLower(c.left_name) + "\x1f" + ToLower(c.right_name);
    if (include_domain) key += "\x1f" + c.domain;
    auto& pairs = groups[key];
    pairs.insert(pairs.end(), c.pairs().begin(), c.pairs().end());
    representative.emplace(key, &c);
  }
  std::vector<BinaryTable> out;
  out.reserve(groups.size());
  for (auto& [key, pairs] : groups) {
    BinaryTable merged = BinaryTable::FromPairs(std::move(pairs));
    const BinaryTable* rep = representative[key];
    merged.left_name = rep->left_name;
    merged.right_name = rep->right_name;
    merged.domain = include_domain ? rep->domain : "";
    out.push_back(std::move(merged));
  }
  return out;
}

}  // namespace

std::vector<BinaryTable> UnionDomainRelations(
    const std::vector<BinaryTable>& candidates) {
  return UnionByKey(candidates, /*include_domain=*/true);
}

std::vector<BinaryTable> UnionWebRelations(
    const std::vector<BinaryTable>& candidates) {
  return UnionByKey(candidates, /*include_domain=*/false);
}

}  // namespace ms
