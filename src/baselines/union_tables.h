// Union-table baselines after Ling & Halevy [30] (Section 5.1):
//  - UnionDomain: union candidate tables that share identical column names
//    *within the same web domain* (the original technique's setting).
//  - UnionWeb: the relaxation that unions on column names across the whole
//    corpus — better recall, but generic headers ("name", "code") make it
//    over-group across unrelated relations.
#pragma once

#include <vector>

#include "table/binary_table.h"

namespace ms {

/// Groups by (left header, right header, domain) and unions pair sets.
std::vector<BinaryTable> UnionDomainRelations(
    const std::vector<BinaryTable>& candidates);

/// Groups by (left header, right header) across all domains.
std::vector<BinaryTable> UnionWebRelations(
    const std::vector<BinaryTable>& candidates);

}  // namespace ms
