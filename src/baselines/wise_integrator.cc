#include "baselines/wise_integrator.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>

#include "common/string_util.h"

namespace ms {

ValueTypeProfile ProfileRightColumn(const BinaryTable& table,
                                    const StringPool& pool) {
  ValueTypeProfile p;
  if (table.empty()) return p;
  size_t chars = 0, digits = 0, uppers = 0, spaces = 0;
  for (const auto& vp : table.pairs()) {
    std::string_view s = pool.Get(vp.right);
    chars += s.size();
    for (char c : s) {
      if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
      if (std::isupper(static_cast<unsigned char>(c))) ++uppers;
      if (c == ' ') ++spaces;
    }
  }
  const double n = static_cast<double>(table.size());
  p.avg_length = static_cast<double>(chars) / n;
  if (chars > 0) {
    p.digit_fraction = static_cast<double>(digits) / chars;
    p.upper_fraction = static_cast<double>(uppers) / chars;
    p.space_fraction = static_cast<double>(spaces) / chars;
  }
  return p;
}

double HeaderSimilarity(const std::string& a, const std::string& b) {
  std::string la = ToLower(a), lb = ToLower(b);
  if (la == lb && !la.empty()) return 1.0;
  std::set<std::string> ta, tb;
  for (auto& t : Split(la, ' ')) {
    if (!t.empty()) ta.insert(t);
  }
  for (auto& t : Split(lb, ' ')) {
    if (!t.empty()) tb.insert(t);
  }
  if (ta.empty() || tb.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& t : ta) inter += tb.count(t);
  return static_cast<double>(inter) /
         static_cast<double>(ta.size() + tb.size() - inter);
}

double ProfileSimilarity(const ValueTypeProfile& a,
                         const ValueTypeProfile& b) {
  const double len_sim =
      1.0 - std::min(1.0, std::abs(a.avg_length - b.avg_length) /
                              std::max({a.avg_length, b.avg_length, 1.0}));
  const double digit_sim = 1.0 - std::abs(a.digit_fraction - b.digit_fraction);
  const double upper_sim = 1.0 - std::abs(a.upper_fraction - b.upper_fraction);
  const double space_sim = 1.0 - std::abs(a.space_fraction - b.space_fraction);
  return (len_sim + digit_sim + upper_sim + space_sim) / 4.0;
}

std::vector<BinaryTable> WiseIntegratorRelations(
    const std::vector<BinaryTable>& candidates, const StringPool& pool,
    const WiseIntegratorOptions& options) {
  struct Cluster {
    // Representative evidence: headers of the first member.
    std::string left_header;
    std::string right_header;
    ValueTypeProfile profile;
    std::vector<ValuePair> pairs;
    size_t members = 0;
  };
  const double hw =
      options.header_weight / (options.header_weight +
                               options.value_type_weight);
  const double vw = 1.0 - hw;

  std::vector<Cluster> clusters;
  for (const auto& c : candidates) {
    ValueTypeProfile prof = ProfileRightColumn(c, pool);
    int best = -1;
    double best_sim = options.join_threshold;
    for (size_t k = 0; k < clusters.size(); ++k) {
      const double hsim =
          0.5 * (HeaderSimilarity(c.left_name, clusters[k].left_header) +
                 HeaderSimilarity(c.right_name, clusters[k].right_header));
      const double vsim = ProfileSimilarity(prof, clusters[k].profile);
      const double sim = hw * hsim + vw * vsim;
      if (sim >= best_sim) {
        best_sim = sim;
        best = static_cast<int>(k);
      }
    }
    if (best < 0) {
      Cluster nc;
      nc.left_header = c.left_name;
      nc.right_header = c.right_name;
      nc.profile = prof;
      nc.pairs.assign(c.pairs().begin(), c.pairs().end());
      nc.members = 1;
      clusters.push_back(std::move(nc));
    } else {
      auto& cl = clusters[best];
      cl.pairs.insert(cl.pairs.end(), c.pairs().begin(), c.pairs().end());
      // Running-average profile update.
      const double m = static_cast<double>(cl.members);
      cl.profile.avg_length =
          (cl.profile.avg_length * m + prof.avg_length) / (m + 1);
      cl.profile.digit_fraction =
          (cl.profile.digit_fraction * m + prof.digit_fraction) / (m + 1);
      cl.profile.upper_fraction =
          (cl.profile.upper_fraction * m + prof.upper_fraction) / (m + 1);
      cl.profile.space_fraction =
          (cl.profile.space_fraction * m + prof.space_fraction) / (m + 1);
      ++cl.members;
    }
  }

  std::vector<BinaryTable> out;
  out.reserve(clusters.size());
  for (auto& cl : clusters) {
    BinaryTable merged = BinaryTable::FromPairs(std::move(cl.pairs));
    merged.left_name = cl.left_header;
    merged.right_name = cl.right_header;
    out.push_back(std::move(merged));
  }
  return out;
}

}  // namespace ms
