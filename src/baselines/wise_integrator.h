// WISE-Integrator-style collective schema matching (He, Meng, Yu & Wu,
// VLDB 2003/2004 [22, 23]), the representative web-form matcher the paper
// compares against. Attributes are matched by *linguistic* evidence —
// header-token similarity — plus shallow value-type features (character
// classes, average length), then greedily clustered. No instance-overlap or
// FD reasoning is used, which is exactly why it trails Synthesis.
#pragma once

#include <vector>

#include "table/binary_table.h"
#include "table/string_pool.h"

namespace ms {

struct WiseIntegratorOptions {
  /// Minimum combined similarity for joining an existing cluster.
  double join_threshold = 0.55;
  /// Weights of the evidence channels (normalized internally).
  double header_weight = 0.6;
  double value_type_weight = 0.4;
};

/// Shallow value-type profile of a column (the "data type / value pattern"
/// evidence WISE-Integrator derives from form fields).
struct ValueTypeProfile {
  double avg_length = 0.0;
  double digit_fraction = 0.0;
  double upper_fraction = 0.0;
  double space_fraction = 0.0;
};

ValueTypeProfile ProfileRightColumn(const BinaryTable& table,
                                    const StringPool& pool);

/// Similarity in [0,1] between two header strings (token Jaccard with a
/// case-insensitive exact-match boost).
double HeaderSimilarity(const std::string& a, const std::string& b);

/// Similarity in [0,1] between two value-type profiles.
double ProfileSimilarity(const ValueTypeProfile& a, const ValueTypeProfile& b);

/// Greedy clustering of candidates; returns one unioned relation per
/// cluster.
std::vector<BinaryTable> WiseIntegratorRelations(
    const std::vector<BinaryTable>& candidates, const StringPool& pool,
    const WiseIntegratorOptions& options = {});

}  // namespace ms
