#include "common/bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "common/hashing.h"

namespace ms {

BloomFilter::BloomFilter(size_t expected_keys, double fp_rate) {
  expected_keys = std::max<size_t>(expected_keys, 1);
  fp_rate = std::clamp(fp_rate, 1e-6, 0.5);
  // Optimal sizing: m = -n ln(p) / (ln 2)^2, k = (m/n) ln 2.
  const double ln2 = std::log(2.0);
  double m = -static_cast<double>(expected_keys) * std::log(fp_rate) /
             (ln2 * ln2);
  bit_count_ = std::max<size_t>(static_cast<size_t>(m), 64);
  hash_count_ = std::clamp(
      static_cast<int>(std::lround(m / expected_keys * ln2)), 1, 16);
  bits_.assign((bit_count_ + 63) / 64, 0);
}

void BloomFilter::Indices(std::string_view key,
                          std::vector<size_t>* out) const {
  // Double hashing: h_i = h1 + i*h2 (Kirsch–Mitzenmacher).
  uint64_t h1 = Fnv1a64(key);
  uint64_t h2 = Mix64(h1) | 1;  // odd stride
  out->clear();
  out->reserve(hash_count_);
  for (int i = 0; i < hash_count_; ++i) {
    out->push_back(static_cast<size_t>((h1 + i * h2) % bit_count_));
  }
}

void BloomFilter::Add(std::string_view key) {
  std::vector<size_t> idx;
  Indices(key, &idx);
  for (size_t b : idx) bits_[b / 64] |= (1ULL << (b % 64));
  ++inserted_;
}

bool BloomFilter::MayContain(std::string_view key) const {
  std::vector<size_t> idx;
  Indices(key, &idx);
  for (size_t b : idx) {
    if (!(bits_[b / 64] & (1ULL << (b % 64)))) return false;
  }
  return true;
}

double BloomFilter::EstimatedFpRate() const {
  double frac = 1.0 - std::exp(-static_cast<double>(hash_count_) *
                               static_cast<double>(inserted_) /
                               static_cast<double>(bit_count_));
  return std::pow(frac, hash_count_);
}

}  // namespace ms
