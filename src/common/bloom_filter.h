// Bloom filter used by apps::MappingStore for fast value-containment probes,
// as suggested in the paper's introduction ("one could index synthesized
// mapping tables using hash-based techniques (e.g., bloom filters)").
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ms {

/// Standard k-hash bloom filter over byte strings. No false negatives;
/// false-positive rate is determined by bits-per-key and k.
class BloomFilter {
 public:
  /// `expected_keys` sizes the bit array for roughly `fp_rate` false
  /// positives (clamped to sane ranges).
  BloomFilter(size_t expected_keys, double fp_rate = 0.01);

  void Add(std::string_view key);

  /// True if the key may have been added; false means definitely absent.
  bool MayContain(std::string_view key) const;

  size_t bit_count() const { return bit_count_; }
  int hash_count() const { return hash_count_; }
  size_t inserted_count() const { return inserted_; }

  /// Estimated false-positive rate given the current load.
  double EstimatedFpRate() const;

 private:
  void Indices(std::string_view key, std::vector<size_t>* out) const;

  size_t bit_count_;
  int hash_count_;
  size_t inserted_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace ms
