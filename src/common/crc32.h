// CRC-32 (ISO-HDLC polynomial 0xEDB88320, the zlib/PNG variant) for the
// persistence layer's per-section integrity checks. Table-driven, stable
// across platforms and runs; not a cryptographic MAC — it detects the
// accidental corruption (truncation, bit rot, partial writes) snapshots
// care about, nothing adversarial.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ms {

/// CRC of `size` bytes at `data`, continuing from `seed` (pass the previous
/// return value to checksum discontiguous spans as one stream; 0 starts a
/// fresh checksum).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace ms
