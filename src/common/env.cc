#include "common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"
#include "persist/mmap_file.h"

namespace ms {

namespace {

// Process-global fold of every env's retry/failure counts — registered at
// load time so a MetricsText scrape reports them (as zeros) even before the
// first IO operation. Global() is a function-local static, so this is safe
// across translation units.
obs::Counter* RetriesCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("ms_env_retries_total");
  return counter;
}

obs::Counter* IoFailuresCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("ms_env_io_failures_total");
  return counter;
}

const struct EnvMetricsRegistrar {
  EnvMetricsRegistrar() {
    RetriesCounter();
    IoFailuresCounter();
  }
} g_env_metrics_registrar;

/// "<op> failed for <path>: <strerror>" — the one message shape every IO
/// failure uses, so operators (and the message-audit test) can count on the
/// path and errno text being present.
Status ErrnoError(const char* op, const std::string& path, int err) {
  std::string msg = std::string(op) + " failed for " + path + ": " +
                    std::strerror(err);
  if (err == ENOENT) return Status::NotFound(std::move(msg));
  return Status::IOError(std::move(msg));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> AppendSome(std::string_view data) override {
    if (fd_ < 0) {
      return Status::IOError("write failed for " + path_ + ": file is closed");
    }
    if (data.empty()) return size_t{0};
    const ssize_t n = ::write(fd_, data.data(), data.size());
    if (n < 0) {
      const int err = errno;
      // EINTR means nothing was written; report zero progress and let
      // AppendFully's bounded retry absorb it.
      if (err == EINTR) return size_t{0};
      return ErrnoError("write", path_, err);
    }
    return static_cast<size_t>(n);
  }

  Status Sync() override {
    if (fd_ < 0) {
      return Status::IOError("fsync failed for " + path_ + ": file is closed");
    }
    if (::fsync(fd_) != 0) return ErrnoError("fsync", path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoError("close", path_, errno);
    return Status::OK();
  }

  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return NotedFailure(ErrnoError("open for write", path, errno));
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(path, fd));
  }

  Result<std::shared_ptr<MmapFile>> MapReadOnly(
      const std::string& path) override {
    Result<std::shared_ptr<MmapFile>> mapped = MmapFile::Open(path);
    if (!mapped.ok()) return NotedFailure(mapped.status());
    return mapped;
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return NotedFailure(ErrnoError("open for read", path, errno));
    std::string out;
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      out.reserve(static_cast<size_t>(st.st_size));
    }
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        const int err = errno;
        if (err == EINTR) continue;
        ::close(fd);
        return NotedFailure(ErrnoError("read", path, err));
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return NotedFailure(ErrnoError("rename", from + " -> " + to, errno));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return NotedFailure(ErrnoError("unlink", path, errno));
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return NotedFailure(ErrnoError("open for fsync", dir, errno));
    const int rc = ::fsync(fd);
    const int err = errno;
    ::close(fd);
    if (rc != 0) return NotedFailure(ErrnoError("fsync", dir, err));
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return NotedFailure(ErrnoError("opendir", dir, errno));
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      const std::string_view name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.emplace_back(name);
    }
    ::closedir(d);
    return names;
  }

  Status CreateDirIfMissing(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return NotedFailure(ErrnoError("mkdir", dir, errno));
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  void SleepForMs(int ms) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* posix_env = new PosixEnv();
  return posix_env;
}

uint64_t Env::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Env::NoteRetry() {
  retries_.fetch_add(1, std::memory_order_relaxed);
  RetriesCounter()->Increment();
}

void Env::NoteIoFailure() {
  io_failures_.fetch_add(1, std::memory_order_relaxed);
  IoFailuresCounter()->Increment();
}

Status AppendFully(Env& env, WritableFile& file, std::string_view data,
                   const RetryPolicy& policy) {
  int stalls = 0;
  int backoff_ms = policy.initial_backoff_ms;
  while (!data.empty()) {
    Result<size_t> wrote = file.AppendSome(data);
    // WritableFiles carry no env pointer, so their terminal failures are
    // counted here at the retry loop — the one choke point every
    // persistence write routes through.
    if (!wrote.ok()) return env.NotedFailure(wrote.status());
    const size_t n = wrote.value();
    if (n >= data.size()) return Status::OK();
    // Incomplete attempt: a short write retries immediately (the kernel
    // accepted bytes, the next attempt usually completes), a zero-progress
    // stall (EINTR) backs off through the injectable clock. Both are
    // counted as absorbed retries for the health report.
    env.NoteRetry();
    data.remove_prefix(n);
    if (n > 0) {
      stalls = 0;
      backoff_ms = policy.initial_backoff_ms;
      continue;
    }
    if (++stalls > policy.max_zero_progress_retries) {
      return env.NotedFailure(Status::IOError(
          "write failed for " + file.path() + ": no progress after " +
          std::to_string(policy.max_zero_progress_retries) +
          " retries (interrupted writes)"));
    }
    env.SleepForMs(backoff_ms);
    backoff_ms = std::min(backoff_ms * 2, policy.max_backoff_ms);
  }
  return Status::OK();
}

Status AtomicWriteFile(Env& env, const std::string& path,
                       const std::vector<std::string_view>& chunks,
                       const RetryPolicy& policy) {
  const std::string tmp = path + ".tmp";
  Result<std::unique_ptr<WritableFile>> opened = env.NewWritableFile(tmp);
  if (!opened.ok()) return opened.status();
  std::unique_ptr<WritableFile> file = std::move(opened).value();
  Status st;
  for (std::string_view chunk : chunks) {
    st = AppendFully(env, *file, chunk, policy);
    if (!st.ok()) break;
  }
  // The tmp file must be durable BEFORE the rename, or a power loss can
  // commit the rename while the data blocks are still only in page cache —
  // leaving a torn file where the previous good container used to be.
  if (st.ok()) st = env.NotedFailure(file->Sync());
  const Status closed = env.NotedFailure(file->Close());
  if (st.ok()) st = closed;
  if (!st.ok()) {
    env.RemoveFile(tmp);  // best-effort; debris is reclaimed by the next save
    return st;
  }
  st = env.RenameFile(tmp, path);
  if (!st.ok()) {
    env.RemoveFile(tmp);
    return st;
  }
  // Make the rename itself durable. Best-effort semantics would silently
  // undo the atomicity story, so a failure here is a reported error even
  // though the in-memory filesystem view already shows the new file.
  return env.SyncDir(ParentDir(path));
}

Status WriteStringToFile(Env& env, const std::string& path,
                         std::string_view contents,
                         const RetryPolicy& policy) {
  Result<std::unique_ptr<WritableFile>> opened = env.NewWritableFile(path);
  if (!opened.ok()) return opened.status();
  std::unique_ptr<WritableFile> file = std::move(opened).value();
  Status st = AppendFully(env, *file, contents, policy);
  const Status closed = env.NotedFailure(file->Close());
  return st.ok() ? closed : st;
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace ms
