// Injectable IO environment: every syscall the persistence layer performs
// goes through an ms::Env, so the exact failure modes the durability story
// claims to survive — ENOSPC mid-section, EIO on fsync, a short write, an
// interrupt, a crash between rename and directory sync — can be injected
// deterministically in tests (common/fault_env.h) while production code
// runs on the real-syscall PosixEnv returned by Env::Default().
//
// The write model is deliberately low-level: WritableFile::AppendSome is a
// SINGLE write attempt that may make partial progress (a short write) or no
// progress at all (EINTR returns 0 bytes). Transient stalls are absorbed by
// AppendFully, the bounded retry-with-backoff loop every persistence write
// routes through; terminal failures (ENOSPC, EIO, EACCES) surface as Status
// with the path and errno text in the message. Backoff sleeps go through
// Env::SleepForMs — the injectable clock — so fault tests never actually
// sleep, and absorbed retries are counted on the Env for the serving tier's
// ServiceHealth report.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ms {

class MmapFile;

/// A file opened for (over)writing. One instance is single-writer; the
/// persistence layer never appends to a file from two threads.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// ONE write attempt. Returns the number of bytes actually written, which
  /// may be less than data.size() (short write — e.g. a nearly-full disk or
  /// an injected fault) or 0 (nothing written: EINTR). Terminal failures
  /// return a Status whose message carries the path and errno text. Callers
  /// that need the whole buffer written use AppendFully.
  virtual Result<size_t> AppendSome(std::string_view data) = 0;

  /// fsync: the file's bytes are durable after an OK return.
  virtual Status Sync() = 0;

  /// Closes the descriptor. Further Append/Sync calls are invalid.
  virtual Status Close() = 0;

  /// The path the file was opened with (for error messages).
  virtual const std::string& path() const = 0;
};

/// Bounded retry policy for transient write stalls. Partial progress
/// (a short write) retries immediately; zero progress (EINTR) backs off
/// exponentially through Env::SleepForMs up to `max_zero_progress_retries`
/// consecutive stalls before giving up with IOError.
struct RetryPolicy {
  int max_zero_progress_retries = 8;
  int initial_backoff_ms = 1;
  int max_backoff_ms = 100;
};

/// The IO environment. All methods are thread-safe on PosixEnv; fault
/// injection envs serialize internally.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide real-syscall environment (PosixEnv).
  static Env* Default();

  /// Creates (or truncates) `path` for writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Maps `path` read-only (MmapFile::Open) — the container read path.
  virtual Result<std::shared_ptr<MmapFile>> MapReadOnly(
      const std::string& path) = 0;

  /// Reads the whole file into a string — the text (TSV) read path.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;

  /// fsyncs the directory itself, making renames/unlinks inside it durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Entry names in `dir` (no "."/".."), unsorted. NotFound when the
  /// directory does not exist.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  virtual Status CreateDirIfMissing(const std::string& dir) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// The injectable clock used for retry backoff. PosixEnv sleeps;
  /// FaultInjectionEnv only counts, so fault sweeps run at full speed.
  virtual void SleepForMs(int ms) = 0;

  /// Monotonic microsecond clock — the injectable time source the tracing
  /// layer (obs/trace.h) stamps spans with. The default implementation
  /// reads std::chrono::steady_clock; fake-clock test envs override it for
  /// deterministic durations.
  virtual uint64_t NowMicros();

  // ---------------------------------------------- IO-fault observability
  // Absorbed transient-write retries (short writes, EINTR stalls) are
  // counted here by AppendFully so the serving tier can report them
  // (ServiceHealth::retries_performed) — a disk that needs retries to
  // accept a snapshot is a disk an operator wants to know about. Terminal
  // IO failures (everything except expected NotFound probes) are counted
  // alongside. Both feed the per-env counters read by ServiceHealth AND
  // the process-global metrics registry (ms_env_retries_total /
  // ms_env_io_failures_total), so a MetricsText scrape reports them
  // without any per-service plumbing.

  void NoteRetry();
  void NoteIoFailure();
  uint64_t retries_performed() const {
    return retries_.load(std::memory_order_relaxed);
  }
  uint64_t io_failures() const {
    return io_failures_.load(std::memory_order_relaxed);
  }

  /// Counts a terminal failure status on its way out (NotFound is an
  /// expected probe result, not a failure) — `return NotedFailure(...)` is
  /// the one-line error path used by env implementations and the retrying
  /// helpers below.
  Status NotedFailure(Status st) {
    if (!st.ok() && st.code() != StatusCode::kNotFound) NoteIoFailure();
    return st;
  }

 private:
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> io_failures_{0};
};

/// Writes all of `data`, absorbing short writes and EINTR stalls with the
/// bounded backoff in `policy`. IOError (path + errno in the message) on a
/// terminal failure or when the stall budget is exhausted.
Status AppendFully(Env& env, WritableFile& file, std::string_view data,
                   const RetryPolicy& policy = {});

/// The atomic-save protocol shared by every container and pointer file:
/// write `chunks` to `path + ".tmp"`, fsync the file, rename over `path`,
/// fsync the parent directory. A crash or failure at any point leaves
/// either the old complete file or the new complete file at `path`, never a
/// torn hybrid; the fixed tmp name means a crashed writer's debris is
/// reclaimed (truncated) by the next successful save. On failure the tmp
/// file is removed best-effort and `path` is untouched.
Status AtomicWriteFile(Env& env, const std::string& path,
                       const std::vector<std::string_view>& chunks,
                       const RetryPolicy& policy = {});

/// Plain (non-atomic) whole-file write through the env with retry
/// absorption — the text-format save path.
Status WriteStringToFile(Env& env, const std::string& path,
                         std::string_view contents,
                         const RetryPolicy& policy = {});

/// "/a/b/c" -> "/a/b"; "name" -> "."; "/name" -> "/".
std::string ParentDir(const std::string& path);

}  // namespace ms
