#include "common/fault_env.h"

#include <cerrno>
#include <cstring>
#include <utility>

namespace ms {

namespace {

/// Mirrors the PosixEnv message shape — "<op> failed for <path>:
/// <strerror>" — with an [injected] marker, so the path/errno message audit
/// holds for injected failures exactly as for real ones.
Status InjectedError(const char* op, const std::string& path, int err) {
  return Status::IOError(std::string(op) + " failed for " + path + ": " +
                         std::strerror(err) + " [injected]");
}

int TerminalErrno(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEnospc:
      return ENOSPC;
    case FaultKind::kEacces:
      return EACCES;
    case FaultKind::kEio:
    case FaultKind::kShortWrite:  // degraded on non-write-attempt ops
    case FaultKind::kEintr:
      return EIO;
  }
  return EIO;
}

}  // namespace

/// Wraps a real WritableFile so each write attempt is a counted, injectable
/// op. Short-write injection persists a genuine prefix through the base
/// file — the bytes really land on disk, as a real short write's would.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Result<size_t> AppendSome(std::string_view data) override {
    FaultInjectionEnv::Decision d = env_->NextOp(
        "write", base_->path(), /*write_class=*/true, /*is_write_attempt=*/true);
    if (!d.failure.ok()) return d.failure;
    if (d.eintr) return size_t{0};
    if (d.short_write) {
      // Persist a strict prefix (half, at least 1 byte when possible) and
      // report the short count — AppendFully must resume from the middle.
      const size_t n = data.size() <= 1 ? 0 : data.size() / 2;
      if (n == 0) return size_t{0};
      return base_->AppendSome(data.substr(0, n));
    }
    return base_->AppendSome(data);
  }

  Status Sync() override {
    FaultInjectionEnv::Decision d = env_->NextOp(
        "fsync", base_->path(), /*write_class=*/true, /*is_write_attempt=*/false);
    if (!d.failure.ok()) return d.failure;
    return base_->Sync();
  }

  Status Close() override {
    FaultInjectionEnv::Decision d = env_->NextOp(
        "close", base_->path(), /*write_class=*/true, /*is_write_attempt=*/false);
    if (!d.failure.ok()) {
      base_->Close();  // really release the descriptor either way
      return d.failure;
    }
    return base_->Close();
  }

  const std::string& path() const override { return base_->path(); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEnospc:
      return "ENOSPC";
    case FaultKind::kEio:
      return "EIO";
    case FaultKind::kEacces:
      return "EACCES";
    case FaultKind::kShortWrite:
      return "short-write";
    case FaultKind::kEintr:
      return "EINTR";
  }
  return "unknown";
}

FaultInjectionEnv::FaultInjectionEnv(Env* base) : base_(base) {}

void FaultInjectionEnv::FailOp(uint64_t index, FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_plan_ = {index, kind};
  crash_after_.reset();
  fault_fired_ = false;
}

void FaultInjectionEnv::CrashAfterOp(uint64_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_after_ = index;
  fail_plan_.reset();
  crashed_ = false;
}

void FaultInjectionEnv::ClearPlan() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_plan_.reset();
  crash_after_.reset();
}

void FaultInjectionEnv::ResetOpCount() {
  std::lock_guard<std::mutex> lock(mu_);
  ops_ = 0;
}

uint64_t FaultInjectionEnv::ops_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool FaultInjectionEnv::fault_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fault_fired_;
}

bool FaultInjectionEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t FaultInjectionEnv::sleeps_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sleeps_;
}

FaultInjectionEnv::Decision FaultInjectionEnv::NextOp(const char* op,
                                                      const std::string& path,
                                                      bool write_class,
                                                      bool is_write_attempt) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t index = ops_++;
  Decision d;
  if (crash_after_.has_value() && index > *crash_after_ && write_class) {
    crashed_ = true;
    // Frozen ops count as IO failures on this env — the registry fold sees
    // injected faults exactly as it would real ones.
    NoteIoFailure();
    d.failure = Status::IOError(
        std::string(op) + " failed for " + path +
        ": writes frozen [simulated crash]");
    return d;
  }
  if (fail_plan_.has_value() && index == fail_plan_->first) {
    fault_fired_ = true;
    const FaultKind kind = fail_plan_->second;
    if (is_write_attempt && kind == FaultKind::kShortWrite) {
      d.short_write = true;
      return d;
    }
    if (is_write_attempt && kind == FaultKind::kEintr) {
      d.eintr = true;
      return d;
    }
    NoteIoFailure();
    d.failure = InjectedError(op, path, TerminalErrno(kind));
    return d;
  }
  return d;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  Decision d = NextOp("open for write", path, /*write_class=*/true,
                      /*is_write_attempt=*/false);
  if (!d.failure.ok()) return d.failure;
  Result<std::unique_ptr<WritableFile>> base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, std::move(base).value()));
}

Result<std::shared_ptr<MmapFile>> FaultInjectionEnv::MapReadOnly(
    const std::string& path) {
  Decision d = NextOp("mmap open", path, /*write_class=*/false,
                      /*is_write_attempt=*/false);
  if (!d.failure.ok()) return d.failure;
  return base_->MapReadOnly(path);
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  Decision d = NextOp("open for read", path, /*write_class=*/false,
                      /*is_write_attempt=*/false);
  if (!d.failure.ok()) return d.failure;
  return base_->ReadFileToString(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  Decision d = NextOp("rename", from + " -> " + to, /*write_class=*/true,
                      /*is_write_attempt=*/false);
  if (!d.failure.ok()) return d.failure;
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  Decision d = NextOp("unlink", path, /*write_class=*/true,
                      /*is_write_attempt=*/false);
  if (!d.failure.ok()) return d.failure;
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  Decision d = NextOp("fsync", dir, /*write_class=*/true,
                      /*is_write_attempt=*/false);
  if (!d.failure.ok()) return d.failure;
  return base_->SyncDir(dir);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) {
  Decision d = NextOp("opendir", dir, /*write_class=*/false,
                      /*is_write_attempt=*/false);
  if (!d.failure.ok()) return d.failure;
  return base_->ListDir(dir);
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& dir) {
  Decision d = NextOp("mkdir", dir, /*write_class=*/true,
                      /*is_write_attempt=*/false);
  if (!d.failure.ok()) return d.failure;
  return base_->CreateDirIfMissing(dir);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

void FaultInjectionEnv::SleepForMs(int) {
  std::lock_guard<std::mutex> lock(mu_);
  ++sleeps_;  // the injectable clock: count, never sleep
}

}  // namespace ms
