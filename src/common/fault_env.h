// Deterministic fault injection for the persistence layer: wraps a real Env
// and assigns every fallible IO call a global op index, so a test can make
// exactly the Nth syscall fail — with ENOSPC, EIO, EACCES, a short write,
// or EINTR — or simulate a crash by freezing every write-class op after op
// N. The torture suite (tests/fault_test.cc) enumerates every op index of a
// save→restore→append→save schedule and asserts the recovery invariant for
// both variants at each index; targeted tests use single injections
// (disk-full saves, read-only directories, short-write absorption).
//
// Model notes:
//  - Ops are counted in call order across the whole env: file opens, each
//    write attempt, fsyncs, closes, renames, unlinks, directory syncs and
//    reads all get consecutive indices. FileExists and SleepForMs are
//    infallible and uncounted.
//  - A fail-op injection fires exactly once (the op with that index); a
//    retry of the same logical operation gets a fresh index and passes,
//    which is exactly how a transient EINTR/short-write is absorbed by
//    AppendFully's retry loop.
//  - kShortWrite and kEintr only have meaning on a write attempt; when the
//    target op is anything else they degrade to a terminal EIO-style
//    failure (the sweep cycles kinds over op indices, so every op still
//    sees every kind that can apply to it).
//  - Crash simulation freezes WRITE-class ops only (the bytes already on
//    disk stay readable, as they would for a recovering process); every
//    frozen op fails with IOError mentioning the simulated crash. Reads
//    continue to serve the post-crash filesystem state.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/env.h"

namespace ms {

enum class FaultKind {
  kEnospc,      ///< terminal: No space left on device
  kEio,         ///< terminal: Input/output error
  kEacces,      ///< terminal: Permission denied
  kShortWrite,  ///< transient: the write attempt persists only a prefix
  kEintr,       ///< transient: the write attempt persists nothing
};

const char* FaultKindName(FaultKind kind);

class FaultInjectionEnv final : public Env {
 public:
  explicit FaultInjectionEnv(Env* base = Env::Default());

  // -------------------------------------------------------- fault plans
  // At most one plan is active; setting a new one replaces the old. The op
  // counter keeps running across plan changes unless ResetOpCount is
  // called, so a plan set mid-run targets upcoming ops.

  /// The op with global index `index` fails with `kind` (fires once).
  void FailOp(uint64_t index, FaultKind kind);

  /// Every write-class op with index > `index` fails ("writes frozen") —
  /// the crash point. Ops up to and including `index` run normally.
  void CrashAfterOp(uint64_t index);

  /// Clears any plan (thaws a crash) without touching the op counter.
  void ClearPlan();

  void ResetOpCount();

  // ------------------------------------------------------ observability

  /// Total fallible ops seen so far — run a schedule once with no plan to
  /// learn the sweep bound.
  uint64_t ops_seen() const;

  /// Whether the active/last FailOp plan actually fired.
  bool fault_fired() const;

  /// Whether the crash point has been passed (some op was frozen).
  bool crashed() const;

  // ------------------------------------------------------ Env interface

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::shared_ptr<MmapFile>> MapReadOnly(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDirIfMissing(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  /// Counts the backoff request but never sleeps — the injectable clock.
  void SleepForMs(int ms) override;

  uint64_t sleeps_requested() const;

 private:
  friend class FaultWritableFile;

  /// What the current op should do. Write attempts additionally handle the
  /// transient kinds; all other ops treat any injection as terminal.
  struct Decision {
    bool short_write = false;
    bool eintr = false;
    Status failure;  ///< non-OK = terminal failure for this op
  };
  Decision NextOp(const char* op, const std::string& path, bool write_class,
                  bool is_write_attempt);

  Env* base_;
  mutable std::mutex mu_;
  uint64_t ops_ = 0;
  uint64_t sleeps_ = 0;
  std::optional<std::pair<uint64_t, FaultKind>> fail_plan_;
  std::optional<uint64_t> crash_after_;
  bool fault_fired_ = false;
  bool crashed_ = false;
};

}  // namespace ms
