// Minimal open-addressing hash map for 64-bit keys. The blocking hot path
// increments millions of per-id-pair counters; libstdc++'s node-based
// unordered_map spends most of its time in malloc and pointer chasing there.
// This map stores slots contiguously (one cache line covers several slots),
// grows by doubling, and never allocates per entry.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hashing.h"

namespace ms {

/// Open-addressing (linear probe) map from a non-zero uint64 key to T.
/// Key 0 is reserved as the empty-slot sentinel; inserting it is UB.
/// T must be default-constructible and cheap to move.
template <typename T>
class FlatMap64 {
 public:
  struct Slot {
    uint64_t key = 0;  ///< 0 == empty
    T value{};
  };

  FlatMap64() = default;
  explicit FlatMap64(size_t expected) { Reserve(expected); }

  /// Returns the value for `key`, default-constructing it on first access.
  T& operator[](uint64_t key) {
    if (slots_.empty() || size_ + 1 > grow_at_) Grow();
    size_t i = static_cast<size_t>(Mix64(key)) & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == 0) {
        s.key = key;
        ++size_;
        return s.value;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  const T* Find(uint64_t key) const {
    if (slots_.empty()) return nullptr;
    size_t i = static_cast<size_t>(Mix64(key)) & mask_;
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == 0) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Removes every entry, keeping the slot array capacity.
  void Clear() {
    if (size_ == 0) return;
    std::fill(slots_.begin(), slots_.end(), Slot{});
    size_ = 0;
  }

  /// Ensures capacity for `n` entries without rehashing mid-stream.
  void Reserve(size_t n) {
    size_t cap = 16;
    // 62.5% max load: linear probing stays at ~2 expected probes. Memory is
    // cheaper than probe chains on the counting hot path.
    while (cap * 5 / 8 < n) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
  }

  /// Visits every occupied slot (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != 0) fn(s.key, s.value);
    }
  }

 private:
  void Grow() { Rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void Rehash(size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    grow_at_ = cap * 5 / 8;
    for (Slot& s : old) {
      if (s.key == 0) continue;
      size_t i = static_cast<size_t>(Mix64(s.key)) & mask_;
      while (slots_[i].key != 0) i = (i + 1) & mask_;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t mask_ = 0;
  size_t grow_at_ = 0;
};

}  // namespace ms
