// Hashing utilities shared by the bloom filter, inverted indexes, and the
// mini MapReduce shuffle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>

namespace ms {

/// 64-bit FNV-1a over a byte string. Stable across platforms/runs, which the
/// MapReduce shuffle and bloom filter rely on for reproducibility.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mixes a 64-bit value (finalizer from MurmurHash3).
inline uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// Combines two hashes (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Hash for a pair of 32-bit ids (e.g. a (left,right) value pair).
inline uint64_t HashIdPair(uint32_t a, uint32_t b) {
  return Mix64((static_cast<uint64_t>(a) << 32) | b);
}

/// std-compatible hasher for pair<uint32_t,uint32_t> keys.
struct IdPairHash {
  size_t operator()(const std::pair<uint32_t, uint32_t>& p) const {
    return static_cast<size_t>(HashIdPair(p.first, p.second));
  }
};

}  // namespace ms
