#include "common/logging.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <mutex>

namespace ms {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_mu;

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

bool NeedsQuoting(std::string_view v) {
  if (v.empty()) return true;
  for (const char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n' ||
        c == '\t') {
      return true;
    }
  }
  return false;
}

std::string KvPrefix(std::string_view key) {
  std::string out;
  out.reserve(key.size() + 2);
  out.push_back(' ');
  out.append(key);
  out.push_back('=');
  return out;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = static_cast<int>(level); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

std::string LogKv(std::string_view key, std::string_view value) {
  std::string out = KvPrefix(key);
  if (!NeedsQuoting(value)) {
    out.append(value);
    return out;
  }
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '"':
        out.append("\\\"");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string LogKv(std::string_view key, const char* value) {
  return LogKv(key, std::string_view(value));
}
std::string LogKv(std::string_view key, uint64_t value) {
  return KvPrefix(key) + std::to_string(value);
}
std::string LogKv(std::string_view key, int64_t value) {
  return KvPrefix(key) + std::to_string(value);
}
std::string LogKv(std::string_view key, int value) {
  return KvPrefix(key) + std::to_string(value);
}
std::string LogKv(std::string_view key, double value) {
  return KvPrefix(key) + std::to_string(value);
}
std::string LogKv(std::string_view key, bool value) {
  return KvPrefix(key) + (value ? "true" : "false");
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_level.load()) return;
  // One write(2) per line: assembling the full line first and holding the
  // mutex across the (possibly partial-write-resuming) flush guarantees
  // lines from concurrent threads never interleave mid-line.
  std::string line;
  const std::string body = stream_.str();
  line.reserve(body.size() + 16);
  line.push_back('[');
  line.append(LevelName(level_));
  line.append("] ");
  line.append(body);
  line.push_back('\n');
  const std::lock_guard<std::mutex> lock(g_mu);
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(STDERR_FILENO, line.data() + off,
                              line.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // stderr gone — drop the rest rather than spin
  }
}

}  // namespace internal
}  // namespace ms
