#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ms {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_mu;

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = static_cast<int>(level); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mu);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level_), stream_.str().c_str());
}

}  // namespace internal
}  // namespace ms
