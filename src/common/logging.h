// Minimal leveled logging. Benchmarks and the pipeline use INFO-level
// progress lines; tests run with logging suppressed by default.
#pragma once

#include <sstream>
#include <string>

namespace ms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ms

#define MS_LOG(level)                                              \
  ::ms::internal::LogMessage(::ms::LogLevel::k##level, __FILE__, \
                             __LINE__)
