// Minimal leveled logging. Benchmarks and the pipeline use INFO-level
// progress lines; tests run with logging suppressed by default.
//
// Emission is thread-safe and atomic per line: the whole formatted line
// (prefix, message, newline) is flushed with a single write(2) under a
// process-wide mutex, so concurrent workers can never interleave fragments
// of their lines — not even with other writers sharing the stderr fd, for
// lines within PIPE_BUF.
//
// Structured suffixes: LogKv renders one " key=value" pair (values with
// spaces/quotes/'=' get quoted), the convention the observability layer's
// slow-span log uses so lines stay machine-splittable:
//
//   MS_LOG(Warning) << "slow span" << LogKv("span", name)
//                   << LogKv("duration_us", us);
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace ms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// " key=value" — a structured log-line suffix. Values containing spaces,
/// quotes, or '=' are double-quoted with internal quotes/backslashes
/// escaped; empty values always quote ("key=\"\"" stays parseable).
std::string LogKv(std::string_view key, std::string_view value);
std::string LogKv(std::string_view key, const char* value);
std::string LogKv(std::string_view key, uint64_t value);
std::string LogKv(std::string_view key, int64_t value);
std::string LogKv(std::string_view key, int value);
std::string LogKv(std::string_view key, double value);
std::string LogKv(std::string_view key, bool value);

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ms

#define MS_LOG(level)                                              \
  ::ms::internal::LogMessage(::ms::LogLevel::k##level, __FILE__, \
                             __LINE__)
