#include "common/random.h"

#include <cassert>
#include <cmath>

namespace ms {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::Zipf(size_t n, double s) {
  assert(n > 0);
  // Inverse-CDF over a truncated harmonic series; fine for generator use.
  double h = 0.0;
  // Cache-free incremental computation keeps this O(n) worst case but the
  // generator calls it with modest n; callers needing speed should bucket.
  for (size_t i = 1; i <= n; ++i) h += 1.0 / std::pow(static_cast<double>(i), s);
  double u = UniformDouble() * h;
  double acc = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (acc >= u) return i - 1;
  }
  return n - 1;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  if (k > n) k = n;
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher–Yates: first k slots become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Uniform(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace ms
