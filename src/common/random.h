// Deterministic, fast pseudo-random number generation used across corpus
// generation, sampling, and randomized tests. All randomness in the project
// flows through Rng so experiments are reproducible from a single seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ms {

/// xoshiro256** generator seeded via SplitMix64. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Approximate Zipf(s) sample over [0, n): heavier mass on small indices.
  /// Used to give values realistic popularity skew in the corpus generator.
  size_t Zipf(size_t n, double s = 1.0);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k clamped to n), in random
  /// order.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Picks one element uniformly from a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(Uniform(v.size()))];
  }

 private:
  uint64_t s_[4];
};

}  // namespace ms
