// Lightweight Status / Result error-handling primitives, modeled on the
// Status idiom used by large C++ database codebases (Arrow, RocksDB).
//
// Functions that can fail return Status (or Result<T> when they also produce
// a value). Callers must inspect ok() before using a Result's value.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ms {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kInternal,
  /// Persisted bytes are unreadable as written: truncated file, failed
  /// checksum, bad magic. Distinct from kIOError (the OS refused the read)
  /// and kFailedPrecondition (the file is intact but incompatible).
  kDataLoss,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy when ok (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder. Accessing value() on an error aborts in debug
/// builds; always check ok() (or status()) first.
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ms

/// Propagates a non-OK Status from the evaluated expression to the caller.
#define MS_RETURN_IF_ERROR(expr)          \
  do {                                    \
    ::ms::Status _st = (expr);            \
    if (!_st.ok()) return _st;            \
  } while (0)
