// Generic string helpers (split/join/trim/case). Cell-value normalization
// specific to table matching lives in text/normalize.h.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ms {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (copies).
std::string ToLower(std::string_view s);

/// ASCII upper-casing (copies).
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style float formatting with fixed precision, for report tables.
std::string FormatDouble(double v, int precision = 3);

}  // namespace ms
