#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace ms {

namespace {
thread_local size_t tls_worker_index = ThreadPool::kNotAWorker;
}  // namespace

size_t ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(n, workers_.size() * 4);
  std::atomic<size_t> next{0};
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    Submit([&, c] {
      const size_t begin = c * chunk_size;
      const size_t end = std::min(n, begin + chunk_size);
      for (size_t i = begin; i < end; ++i) fn(i);
      (void)next;
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace ms
