// Fixed-size worker pool used by the mini MapReduce engine and the pair-wise
// compatibility computation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ms {

/// A simple FIFO thread pool. Submit() enqueues a task; WaitIdle() blocks
/// until all submitted tasks have finished. Destruction joins all workers.
class ThreadPool {
 public:
  /// `num_threads` == 0 uses the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void WaitIdle();

  /// Runs fn(i) for every i in [0, n), partitioned across the pool, and
  /// blocks until all chunks complete. Exceptions in fn are not supported.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// Index of the calling thread within its owning pool ([0, num_threads)),
  /// or kNotAWorker for threads no pool owns (e.g. the submitting thread).
  /// Lets callers keep per-worker scratch state (pattern-mask caches, score
  /// buffers) that survives across tasks without locking.
  static size_t CurrentWorkerIndex();
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);

 private:
  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace ms
