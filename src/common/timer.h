// Wall-clock timing for the runtime/scalability experiments (Figures 8, 9).
#pragma once

#include <chrono>

namespace ms {

/// Monotonic stopwatch. Starts on construction; Restart() resets it.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ms
