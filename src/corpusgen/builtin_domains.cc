#include "corpusgen/builtin_domains.h"

#include <array>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace ms {
namespace {

/// Country master record. Empty synonym slots are skipped. Codes are real;
/// the ISO/IOC/FIFA divergences (DZA/ALG, DEU/GER, ...) are the negative-
/// signal stress test at the heart of the paper's Example 7/9.
struct CountryRow {
  const char* name;
  const char* syn1;
  const char* syn2;
  const char* iso3;
  const char* iso2;
  const char* ioc;
  const char* fifa;
};

constexpr std::array<CountryRow, 60> kCountries = {{
    {"United States", "United States of America", "USA (United States)", "USA", "US", "USA", "USA"},
    {"Canada", "", "", "CAN", "CA", "CAN", "CAN"},
    {"Mexico", "", "", "MEX", "MX", "MEX", "MEX"},
    {"Brazil", "Brasil", "", "BRA", "BR", "BRA", "BRA"},
    {"Argentina", "", "", "ARG", "AR", "ARG", "ARG"},
    {"Chile", "", "", "CHL", "CL", "CHI", "CHI"},
    {"Uruguay", "", "", "URY", "UY", "URU", "URU"},
    {"Colombia", "", "", "COL", "CO", "COL", "COL"},
    {"Peru", "", "", "PER", "PE", "PER", "PER"},
    {"United Kingdom", "Great Britain", "UK", "GBR", "GB", "GBR", "ENG"},
    {"France", "", "", "FRA", "FR", "FRA", "FRA"},
    {"Germany", "Federal Republic of Germany", "", "DEU", "DE", "GER", "GER"},
    {"Italy", "", "", "ITA", "IT", "ITA", "ITA"},
    {"Spain", "", "", "ESP", "ES", "ESP", "ESP"},
    {"Portugal", "", "", "PRT", "PT", "POR", "POR"},
    {"Netherlands", "The Netherlands", "Holland", "NLD", "NL", "NED", "NED"},
    {"Belgium", "", "", "BEL", "BE", "BEL", "BEL"},
    {"Switzerland", "Swiss Confederation", "", "CHE", "CH", "SUI", "SUI"},
    {"Austria", "", "", "AUT", "AT", "AUT", "AUT"},
    {"Sweden", "", "", "SWE", "SE", "SWE", "SWE"},
    {"Norway", "", "", "NOR", "NO", "NOR", "NOR"},
    {"Denmark", "", "", "DNK", "DK", "DEN", "DEN"},
    {"Finland", "", "", "FIN", "FI", "FIN", "FIN"},
    {"Iceland", "", "", "ISL", "IS", "ISL", "ISL"},
    {"Ireland", "Republic of Ireland", "", "IRL", "IE", "IRL", "IRL"},
    {"Poland", "", "", "POL", "PL", "POL", "POL"},
    {"Czech Republic", "Czechia", "", "CZE", "CZ", "CZE", "CZE"},
    {"Slovakia", "Slovak Republic", "", "SVK", "SK", "SVK", "SVK"},
    {"Hungary", "", "", "HUN", "HU", "HUN", "HUN"},
    {"Romania", "", "", "ROU", "RO", "ROU", "ROU"},
    {"Bulgaria", "", "", "BGR", "BG", "BUL", "BUL"},
    {"Greece", "Hellenic Republic", "", "GRC", "GR", "GRE", "GRE"},
    {"Croatia", "", "", "HRV", "HR", "CRO", "CRO"},
    {"Serbia", "", "", "SRB", "RS", "SRB", "SRB"},
    {"Slovenia", "", "", "SVN", "SI", "SLO", "SVN"},
    {"Ukraine", "", "", "UKR", "UA", "UKR", "UKR"},
    {"Russia", "Russian Federation", "", "RUS", "RU", "RUS", "RUS"},
    {"Turkey", "Turkiye", "", "TUR", "TR", "TUR", "TUR"},
    {"China", "People's Republic of China", "PR China", "CHN", "CN", "CHN", "CHN"},
    {"Japan", "", "", "JPN", "JP", "JPN", "JPN"},
    {"South Korea", "Korea, Republic of", "Republic of Korea", "KOR", "KR", "KOR", "KOR"},
    {"North Korea", "Korea, DPR", "DPR Korea", "PRK", "KP", "PRK", "PRK"},
    {"India", "", "", "IND", "IN", "IND", "IND"},
    {"Indonesia", "", "", "IDN", "ID", "INA", "IDN"},
    {"Malaysia", "", "", "MYS", "MY", "MAS", "MAS"},
    {"Singapore", "", "", "SGP", "SG", "SGP", "SGP"},
    {"Thailand", "", "", "THA", "TH", "THA", "THA"},
    {"Vietnam", "Viet Nam", "", "VNM", "VN", "VIE", "VIE"},
    {"Philippines", "The Philippines", "", "PHL", "PH", "PHI", "PHI"},
    {"Australia", "", "", "AUS", "AU", "AUS", "AUS"},
    {"New Zealand", "", "", "NZL", "NZ", "NZL", "NZL"},
    {"South Africa", "Republic of South Africa", "", "ZAF", "ZA", "RSA", "RSA"},
    {"Nigeria", "", "", "NGA", "NG", "NGR", "NGA"},
    {"Egypt", "Arab Republic of Egypt", "", "EGY", "EG", "EGY", "EGY"},
    {"Morocco", "", "", "MAR", "MA", "MAR", "MAR"},
    {"Algeria", "People's Democratic Republic of Algeria", "", "DZA", "DZ", "ALG", "ALG"},
    {"Kenya", "", "", "KEN", "KE", "KEN", "KEN"},
    {"Ghana", "", "", "GHA", "GH", "GHA", "GHA"},
    {"Saudi Arabia", "Kingdom of Saudi Arabia", "", "SAU", "SA", "KSA", "KSA"},
    {"Israel", "State of Israel", "", "ISR", "IL", "ISR", "ISR"},
}};

struct StateRow {
  const char* name;
  const char* abbrev;
  const char* capital;
  const char* largest;
};

constexpr std::array<StateRow, 50> kStates = {{
    {"Alabama", "AL", "Montgomery", "Huntsville"},
    {"Alaska", "AK", "Juneau", "Anchorage"},
    {"Arizona", "AZ", "Phoenix", "Phoenix"},
    {"Arkansas", "AR", "Little Rock", "Little Rock"},
    {"California", "CA", "Sacramento", "Los Angeles"},
    {"Colorado", "CO", "Denver", "Denver"},
    {"Connecticut", "CT", "Hartford", "Bridgeport"},
    {"Delaware", "DE", "Dover", "Wilmington"},
    {"Florida", "FL", "Tallahassee", "Jacksonville"},
    {"Georgia", "GA", "Atlanta", "Atlanta"},
    {"Hawaii", "HI", "Honolulu", "Honolulu"},
    {"Idaho", "ID", "Boise", "Boise"},
    {"Illinois", "IL", "Springfield", "Chicago"},
    {"Indiana", "IN", "Indianapolis", "Indianapolis"},
    {"Iowa", "IA", "Des Moines", "Des Moines"},
    {"Kansas", "KS", "Topeka", "Wichita"},
    {"Kentucky", "KY", "Frankfort", "Louisville"},
    {"Louisiana", "LA", "Baton Rouge", "New Orleans"},
    {"Maine", "ME", "Augusta", "Portland"},
    {"Maryland", "MD", "Annapolis", "Baltimore"},
    {"Massachusetts", "MA", "Boston", "Boston"},
    {"Michigan", "MI", "Lansing", "Detroit"},
    {"Minnesota", "MN", "Saint Paul", "Minneapolis"},
    {"Mississippi", "MS", "Jackson", "Jackson"},
    {"Missouri", "MO", "Jefferson City", "Kansas City"},
    {"Montana", "MT", "Helena", "Billings"},
    {"Nebraska", "NE", "Lincoln", "Omaha"},
    {"Nevada", "NV", "Carson City", "Las Vegas"},
    {"New Hampshire", "NH", "Concord", "Manchester"},
    {"New Jersey", "NJ", "Trenton", "Newark"},
    {"New Mexico", "NM", "Santa Fe", "Albuquerque"},
    {"New York", "NY", "Albany", "New York City"},
    {"North Carolina", "NC", "Raleigh", "Charlotte"},
    {"North Dakota", "ND", "Bismarck", "Fargo"},
    {"Ohio", "OH", "Columbus", "Columbus"},
    {"Oklahoma", "OK", "Oklahoma City", "Oklahoma City"},
    {"Oregon", "OR", "Salem", "Portland"},
    {"Pennsylvania", "PA", "Harrisburg", "Philadelphia"},
    {"Rhode Island", "RI", "Providence", "Providence"},
    {"South Carolina", "SC", "Columbia", "Charleston"},
    {"South Dakota", "SD", "Pierre", "Sioux Falls"},
    {"Tennessee", "TN", "Nashville", "Nashville"},
    {"Texas", "TX", "Austin", "Houston"},
    {"Utah", "UT", "Salt Lake City", "Salt Lake City"},
    {"Vermont", "VT", "Montpelier", "Burlington"},
    {"Virginia", "VA", "Richmond", "Virginia Beach"},
    {"Washington", "WA", "Olympia", "Seattle"},
    {"West Virginia", "WV", "Charleston", "Charleston"},
    {"Wisconsin", "WI", "Madison", "Milwaukee"},
    {"Wyoming", "WY", "Cheyenne", "Cheyenne"},
}};

struct AirportRow {
  const char* name;
  const char* syn;
  const char* iata;
  const char* icao;
};

constexpr std::array<AirportRow, 32> kAirports = {{
    {"Los Angeles International Airport", "Los Angeles Intl", "LAX", "KLAX"},
    {"San Francisco International Airport", "San Francisco Intl", "SFO", "KSFO"},
    {"John F. Kennedy International Airport", "New York JFK", "JFK", "KJFK"},
    {"O'Hare International Airport", "Chicago O'Hare", "ORD", "KORD"},
    {"Hartsfield-Jackson Atlanta International Airport", "Atlanta Intl", "ATL", "KATL"},
    {"Dallas/Fort Worth International Airport", "Dallas Fort Worth", "DFW", "KDFW"},
    {"Denver International Airport", "Denver Intl", "DEN", "KDEN"},
    {"Seattle-Tacoma International Airport", "SeaTac", "SEA", "KSEA"},
    {"Miami International Airport", "Miami Intl", "MIA", "KMIA"},
    {"Boston Logan International Airport", "Logan Airport", "BOS", "KBOS"},
    {"London Heathrow Airport", "Heathrow", "LHR", "EGLL"},
    {"London Gatwick Airport", "Gatwick", "LGW", "EGKK"},
    {"Paris Charles de Gaulle Airport", "Charles de Gaulle", "CDG", "LFPG"},
    {"Frankfurt Airport", "Frankfurt am Main", "FRA", "EDDF"},
    {"Amsterdam Airport Schiphol", "Schiphol", "AMS", "EHAM"},
    {"Madrid-Barajas Airport", "Barajas", "MAD", "LEMD"},
    {"Rome Fiumicino Airport", "Leonardo da Vinci Airport", "FCO", "LIRF"},
    {"Zurich Airport", "Zurich Kloten", "ZRH", "LSZH"},
    {"Vienna International Airport", "Vienna Schwechat", "VIE", "LOWW"},
    {"Copenhagen Airport", "Kastrup", "CPH", "EKCH"},
    {"Tokyo Haneda Airport", "Tokyo International Airport", "HND", "RJTT"},
    {"Narita International Airport", "Tokyo Narita", "NRT", "RJAA"},
    {"Beijing Capital International Airport", "Beijing Capital", "PEK", "ZBAA"},
    {"Shanghai Pudong International Airport", "Shanghai Pudong", "PVG", "ZSPD"},
    {"Hong Kong International Airport", "Chek Lap Kok", "HKG", "VHHH"},
    {"Singapore Changi Airport", "Changi", "SIN", "WSSS"},
    {"Incheon International Airport", "Seoul Incheon", "ICN", "RKSI"},
    {"Sydney Kingsford Smith Airport", "Sydney Airport", "SYD", "YSSY"},
    {"Dubai International Airport", "Dubai Intl", "DXB", "OMDB"},
    {"Indira Gandhi International Airport", "Delhi Airport", "DEL", "VIDP"},
    {"Toronto Pearson International Airport", "Toronto Pearson", "YYZ", "CYYZ"},
    {"Mexico City International Airport", "Benito Juarez Airport", "MEX", "MMMX"},
}};

struct ElementRow {
  const char* name;
  const char* symbol;
  int number;
};

constexpr std::array<ElementRow, 40> kElements = {{
    {"Hydrogen", "H", 1},    {"Helium", "He", 2},    {"Lithium", "Li", 3},
    {"Beryllium", "Be", 4},  {"Boron", "B", 5},      {"Carbon", "C", 6},
    {"Nitrogen", "N", 7},    {"Oxygen", "O", 8},     {"Fluorine", "F", 9},
    {"Neon", "Ne", 10},      {"Sodium", "Na", 11},   {"Magnesium", "Mg", 12},
    {"Aluminium", "Al", 13}, {"Silicon", "Si", 14},  {"Phosphorus", "P", 15},
    {"Sulfur", "S", 16},     {"Chlorine", "Cl", 17}, {"Argon", "Ar", 18},
    {"Potassium", "K", 19},  {"Calcium", "Ca", 20},  {"Titanium", "Ti", 22},
    {"Chromium", "Cr", 24},  {"Manganese", "Mn", 25}, {"Iron", "Fe", 26},
    {"Cobalt", "Co", 27},    {"Nickel", "Ni", 28},   {"Copper", "Cu", 29},
    {"Zinc", "Zn", 30},      {"Arsenic", "As", 33},  {"Bromine", "Br", 35},
    {"Silver", "Ag", 47},    {"Tin", "Sn", 50},      {"Iodine", "I", 53},
    {"Tellurium", "Te", 52}, {"Gold", "Au", 79},     {"Mercury", "Hg", 80},
    {"Lead", "Pb", 82},      {"Platinum", "Pt", 78}, {"Uranium", "U", 92},
    {"Tungsten", "W", 74},
}};

struct TickerRow {
  const char* company;
  const char* syn;
  const char* ticker;
};

constexpr std::array<TickerRow, 30> kTickers = {{
    {"Microsoft Corporation", "Microsoft Corp", "MSFT"},
    {"Apple Inc.", "Apple", "AAPL"},
    {"Alphabet Inc.", "Google", "GOOGL"},
    {"Amazon.com Inc.", "Amazon", "AMZN"},
    {"Oracle Corporation", "Oracle", "ORCL"},
    {"Intel Corporation", "Intel", "INTC"},
    {"International Business Machines", "IBM", "IBM"},
    {"General Electric Company", "General Electric", "GE"},
    {"United Parcel Service", "UPS Inc", "UPS"},
    {"Walmart Inc.", "Walmart", "WMT"},
    {"The Coca-Cola Company", "Coca-Cola", "KO"},
    {"PepsiCo Inc.", "Pepsi", "PEP"},
    {"Johnson & Johnson", "", "JNJ"},
    {"Procter & Gamble", "P&G", "PG"},
    {"JPMorgan Chase & Co.", "JP Morgan", "JPM"},
    {"Bank of America", "BofA", "BAC"},
    {"Goldman Sachs Group", "Goldman Sachs", "GS"},
    {"Exxon Mobil Corporation", "ExxonMobil", "XOM"},
    {"Chevron Corporation", "Chevron", "CVX"},
    {"Boeing Company", "Boeing", "BA"},
    {"Caterpillar Inc.", "Caterpillar", "CAT"},
    {"Ford Motor Company", "Ford", "F"},
    {"General Motors Company", "General Motors", "GM"},
    {"AT&T Inc.", "ATT", "T"},
    {"Verizon Communications", "Verizon", "VZ"},
    {"Cisco Systems Inc.", "Cisco", "CSCO"},
    {"Nvidia Corporation", "Nvidia", "NVDA"},
    {"Netflix Inc.", "Netflix", "NFLX"},
    {"The Walt Disney Company", "Disney", "DIS"},
    {"Nike Inc.", "Nike", "NKE"},
}};

struct CarRow {
  const char* model;
  const char* make;
};

constexpr std::array<CarRow, 28> kCars = {{
    {"F-150", "Ford"},      {"Mustang", "Ford"},    {"Escape", "Ford"},
    {"Explorer", "Ford"},   {"Accord", "Honda"},    {"Civic", "Honda"},
    {"CR-V", "Honda"},      {"Pilot", "Honda"},     {"Camry", "Toyota"},
    {"Corolla", "Toyota"},  {"RAV4", "Toyota"},     {"Highlander", "Toyota"},
    {"Charger", "Dodge"},   {"Durango", "Dodge"},   {"Altima", "Nissan"},
    {"Rogue", "Nissan"},    {"Sentra", "Nissan"},   {"Silverado", "Chevrolet"},
    {"Malibu", "Chevrolet"}, {"Equinox", "Chevrolet"}, {"Model 3", "Tesla"},
    {"Model S", "Tesla"},   {"Outback", "Subaru"},  {"Forester", "Subaru"},
    {"Wrangler", "Jeep"},   {"Cherokee", "Jeep"},   {"3 Series", "BMW"},
    {"C-Class", "Mercedes-Benz"},
}};

struct CityRow {
  const char* city;
  const char* state;
};

constexpr std::array<CityRow, 30> kCities = {{
    {"Chicago", "Illinois"},        {"San Francisco", "California"},
    {"Los Angeles", "California"},  {"San Diego", "California"},
    {"San Jose", "California"},     {"Houston", "Texas"},
    {"Dallas", "Texas"},            {"San Antonio", "Texas"},
    {"Austin", "Texas"},            {"Seattle", "Washington"},
    {"Spokane", "Washington"},      {"New York City", "New York"},
    {"Buffalo", "New York"},        {"Miami", "Florida"},
    {"Orlando", "Florida"},         {"Tampa", "Florida"},
    {"Atlanta", "Georgia"},         {"Savannah", "Georgia"},
    {"Boston", "Massachusetts"},    {"Philadelphia", "Pennsylvania"},
    {"Pittsburgh", "Pennsylvania"}, {"Phoenix", "Arizona"},
    {"Tucson", "Arizona"},          {"Denver", "Colorado"},
    {"Detroit", "Michigan"},        {"Minneapolis", "Minnesota"},
    {"Portland", "Oregon"},         {"Nashville", "Tennessee"},
    {"Memphis", "Tennessee"},       {"New Orleans", "Louisiana"},
}};

struct CurrencyRow {
  const char* name;
  const char* code;
  const char* num;
};

constexpr std::array<CurrencyRow, 20> kCurrencies = {{
    {"US Dollar", "USD", "840"},     {"Euro", "EUR", "978"},
    {"British Pound", "GBP", "826"}, {"Japanese Yen", "JPY", "392"},
    {"Swiss Franc", "CHF", "756"},   {"Canadian Dollar", "CAD", "124"},
    {"Australian Dollar", "AUD", "036"}, {"Chinese Yuan", "CNY", "156"},
    {"Indian Rupee", "INR", "356"},  {"Brazilian Real", "BRL", "986"},
    {"Mexican Peso", "MXN", "484"},  {"South Korean Won", "KRW", "410"},
    {"Singapore Dollar", "SGD", "702"}, {"Norwegian Krone", "NOK", "578"},
    {"Swedish Krona", "SEK", "752"}, {"Danish Krone", "DKK", "208"},
    {"Polish Zloty", "PLN", "985"},  {"Turkish Lira", "TRY", "949"},
    {"Russian Ruble", "RUB", "643"}, {"South African Rand", "ZAR", "710"},
}};

constexpr std::array<const char*, 12> kMonths = {
    "January", "February", "March",     "April",   "May",      "June",
    "July",    "August",   "September", "October", "November", "December"};

constexpr std::array<std::pair<const char*, const char*>, 13> kBeaufort = {{
    {"calm", "0"}, {"light air", "1"}, {"light breeze", "2"},
    {"gentle breeze", "3"}, {"moderate breeze", "4"}, {"fresh breeze", "5"},
    {"strong breeze", "6"}, {"near gale", "7"}, {"gale", "8"},
    {"strong gale", "9"}, {"storm", "10"}, {"violent storm", "11"},
    {"hurricane", "12"},
}};

struct F1Row {
  const char* driver;
  const char* team;
};

constexpr std::array<F1Row, 16> kF1 = {{
    {"Sebastian Vettel", "Ferrari"},   {"Lewis Hamilton", "Mercedes"},
    {"Valtteri Bottas", "Mercedes"},   {"Kimi Raikkonen", "Ferrari"},
    {"Max Verstappen", "Red Bull"},    {"Daniel Ricciardo", "Red Bull"},
    {"Sergio Perez", "Force India"},   {"Esteban Ocon", "Force India"},
    {"Fernando Alonso", "McLaren"},    {"Stoffel Vandoorne", "McLaren"},
    {"Nico Hulkenberg", "Renault"},    {"Carlos Sainz", "Renault"},
    {"Romain Grosjean", "Haas"},       {"Kevin Magnussen", "Haas"},
    {"Felipe Massa", "Williams"},      {"Lance Stroll", "Williams"},
}};

void AddEntity(RelationshipSpec* spec, std::vector<std::string> forms,
               std::string right) {
  EntitySpec e;
  e.left_forms = std::move(forms);
  e.right = std::move(right);
  spec->entities.push_back(std::move(e));
}

std::vector<std::string> CountryForms(const CountryRow& c) {
  std::vector<std::string> forms = {c.name};
  if (c.syn1 && *c.syn1) forms.push_back(c.syn1);
  if (c.syn2 && *c.syn2) forms.push_back(c.syn2);
  return forms;
}

RelationshipSpec CountryCodeSpec(const char* name, const char* right_header,
                                 const char* CountryRow::*code) {
  RelationshipSpec spec;
  spec.name = name;
  spec.left_header = "Country";
  spec.right_header = right_header;
  spec.generic_left_headers = {"name", "country name", "nation"};
  spec.generic_right_headers = {"code", "abbr"};
  spec.popularity = 36;
  spec.in_yago = false;
  spec.in_freebase = true;
  for (const auto& c : kCountries) {
    AddEntity(&spec, CountryForms(c), c.*code);
  }
  return spec;
}

}  // namespace

std::vector<RelationshipSpec> BuiltinWebRelationships() {
  std::vector<RelationshipSpec> specs;

  // --- Country code systems (mutually conflicting siblings).
  {
    RelationshipSpec iso3 =
        CountryCodeSpec("country_iso3", "ISO", &CountryRow::iso3);
    iso3.sibling_relations = {"country_ioc", "country_fifa"};
    RelationshipSpec ioc =
        CountryCodeSpec("country_ioc", "IOC", &CountryRow::ioc);
    ioc.sibling_relations = {"country_iso3", "country_fifa"};
    ioc.in_freebase = false;
    RelationshipSpec fifa =
        CountryCodeSpec("country_fifa", "FIFA", &CountryRow::fifa);
    fifa.sibling_relations = {"country_iso3", "country_ioc"};
    fifa.in_freebase = false;
    RelationshipSpec iso2 =
        CountryCodeSpec("country_iso2", "ISO2", &CountryRow::iso2);
    iso2.popularity = 24;
    specs.push_back(std::move(iso3));
    specs.push_back(std::move(ioc));
    specs.push_back(std::move(fifa));
    specs.push_back(std::move(iso2));
  }

  // --- ISO3 -> ISO2 (code-to-code mapping, Figure 12 flavor).
  {
    RelationshipSpec s;
    s.name = "iso3_iso2";
    s.left_header = "Alpha-3";
    s.right_header = "Alpha-2";
    s.generic_left_headers = {"code"};
    s.generic_right_headers = {"code"};
    s.popularity = 14;
    s.in_freebase = false;
    for (const auto& c : kCountries) AddEntity(&s, {c.iso3}, c.iso2);
    specs.push_back(std::move(s));
  }

  // --- US states: abbreviation, capital, largest city. Capital and largest
  // city agree on many states and disagree on others, reproducing the
  // (state->capital) vs (state->largest-city) confusion of Section 5.6.
  {
    RelationshipSpec ab;
    ab.name = "state_abbrev";
    ab.left_header = "State";
    ab.right_header = "Abbrev.";
    ab.generic_left_headers = {"name", "state name"};
    ab.generic_right_headers = {"code", "abbr", "postal"};
    ab.popularity = 34;
    ab.in_freebase = true;
    ab.in_yago = true;
    for (const auto& st : kStates) AddEntity(&ab, {st.name}, st.abbrev);
    specs.push_back(std::move(ab));

    RelationshipSpec cap;
    cap.name = "state_capital";
    cap.left_header = "State";
    cap.right_header = "Capital";
    cap.generic_left_headers = {"name"};
    cap.generic_right_headers = {"city"};
    cap.sibling_relations = {"state_largest_city"};
    cap.popularity = 22;
    cap.in_freebase = true;
    cap.in_yago = true;
    for (const auto& st : kStates) AddEntity(&cap, {st.name}, st.capital);
    specs.push_back(std::move(cap));

    RelationshipSpec lc;
    lc.name = "state_largest_city";
    lc.left_header = "State";
    lc.right_header = "Largest City";
    lc.generic_left_headers = {"name"};
    lc.generic_right_headers = {"city"};
    lc.sibling_relations = {"state_capital"};
    lc.popularity = 14;
    lc.in_freebase = false;
    for (const auto& st : kStates) AddEntity(&lc, {st.name}, st.largest);
    specs.push_back(std::move(lc));
  }

  // --- Airports (large relation; trusted feed exists for expansion).
  {
    RelationshipSpec iata;
    iata.name = "airport_iata";
    iata.left_header = "Airport Name";
    iata.right_header = "IATA";
    iata.generic_left_headers = {"name", "airport"};
    iata.generic_right_headers = {"code"};
    iata.sibling_relations = {"airport_icao"};
    iata.popularity = 26;
    iata.has_trusted_feed = true;
    iata.in_freebase = false;
    for (const auto& a : kAirports) {
      std::vector<std::string> forms = {a.name};
      if (a.syn && *a.syn) forms.push_back(a.syn);
      iata.entities.push_back({std::move(forms), a.iata});
    }
    specs.push_back(std::move(iata));

    RelationshipSpec icao;
    icao.name = "airport_icao";
    icao.left_header = "Airport Name";
    icao.right_header = "ICAO";
    icao.generic_left_headers = {"name", "airport"};
    icao.generic_right_headers = {"code"};
    icao.sibling_relations = {"airport_iata"};
    icao.popularity = 14;
    icao.has_trusted_feed = true;
    icao.in_freebase = false;
    for (const auto& a : kAirports) {
      std::vector<std::string> forms = {a.name};
      if (a.syn && *a.syn) forms.push_back(a.syn);
      icao.entities.push_back({std::move(forms), a.icao});
    }
    specs.push_back(std::move(icao));
  }

  // --- Chemical elements.
  {
    RelationshipSpec sym;
    sym.name = "element_symbol";
    sym.left_header = "Element";
    sym.right_header = "Symbol";
    sym.generic_left_headers = {"name"};
    sym.generic_right_headers = {"sym"};
    sym.popularity = 26;
    sym.in_freebase = true;
    sym.in_yago = true;
    for (const auto& e : kElements) AddEntity(&sym, {e.name}, e.symbol);
    specs.push_back(std::move(sym));

    RelationshipSpec num;
    num.name = "element_number";
    num.left_header = "Element";
    num.right_header = "Atomic Number";
    num.generic_left_headers = {"name"};
    num.generic_right_headers = {"number", "no"};
    num.popularity = 16;
    num.in_freebase = true;
    for (const auto& e : kElements) {
      AddEntity(&num, {e.name}, std::to_string(e.number));
    }
    specs.push_back(std::move(num));
  }

  // --- Stock tickers (Table 1b).
  {
    RelationshipSpec tick;
    tick.name = "company_ticker";
    tick.left_header = "Company";
    tick.right_header = "Ticker";
    tick.generic_left_headers = {"name", "company name"};
    tick.generic_right_headers = {"symbol", "code"};
    tick.popularity = 30;
    tick.in_freebase = false;
    tick.in_yago = false;
    for (const auto& t : kTickers) {
      std::vector<std::string> forms = {t.company};
      if (t.syn && *t.syn) forms.push_back(t.syn);
      tick.entities.push_back({std::move(forms), t.ticker});
    }
    specs.push_back(std::move(tick));
  }

  // --- Car model -> make (Table 2a; N:1).
  {
    RelationshipSpec car;
    car.name = "car_make";
    car.left_header = "Model";
    car.right_header = "Make";
    car.generic_left_headers = {"name", "model name"};
    car.generic_right_headers = {"brand", "manufacturer"};
    car.one_to_one = false;
    car.popularity = 22;
    car.in_freebase = true;
    for (const auto& c : kCars) AddEntity(&car, {c.model}, c.make);
    specs.push_back(std::move(car));
  }

  // --- City -> state (Table 2b; N:1 with the Portland ambiguity baked in
  // via state_largest_city's Portland, Oregon vs Maine's Portland). State
  // capitals and largest cities are cities too: synthesis legitimately
  // discovers capital->state fragments as city->state facts, so the ground
  // truth includes them (unambiguous names only — Portland/Charleston map
  // to two states and are excluded, matching Definition 2's θ-tolerance).
  {
    RelationshipSpec city;
    city.name = "city_state";
    city.left_header = "City";
    city.right_header = "State";
    city.generic_left_headers = {"name"};
    city.generic_right_headers = {"state name"};
    city.one_to_one = false;
    city.popularity = 28;
    city.in_freebase = true;
    city.in_yago = true;
    std::vector<std::pair<std::string, std::string>> ordered;
    std::unordered_map<std::string, std::string> seen;
    std::unordered_set<std::string> ambiguous;
    auto consider = [&](const std::string& name, const std::string& state) {
      auto [it, inserted] = seen.emplace(name, state);
      if (inserted) {
        ordered.emplace_back(name, state);
      } else if (it->second != state) {
        ambiguous.insert(name);
      }
    };
    for (const auto& c : kCities) consider(c.city, c.state);
    for (const auto& st : kStates) {
      consider(st.capital, st.name);
      consider(st.largest, st.name);
    }
    for (const auto& [name, state] : ordered) {
      if (!ambiguous.count(name)) AddEntity(&city, {name}, state);
    }
    specs.push_back(std::move(city));
  }

  // --- Currencies.
  {
    RelationshipSpec cur;
    cur.name = "currency_code";
    cur.left_header = "Currency";
    cur.right_header = "Code";
    cur.generic_left_headers = {"name"};
    cur.generic_right_headers = {"code"};
    cur.popularity = 18;
    cur.in_freebase = true;
    for (const auto& c : kCurrencies) AddEntity(&cur, {c.name}, c.code);
    specs.push_back(std::move(cur));

    RelationshipSpec num;
    num.name = "currency_num";
    num.left_header = "ISO-4217";
    num.right_header = "Num";
    num.generic_left_headers = {"code"};
    num.generic_right_headers = {"number"};
    num.popularity = 10;
    num.in_freebase = false;
    for (const auto& c : kCurrencies) AddEntity(&num, {c.code}, c.num);
    specs.push_back(std::move(num));
  }

  // --- Beaufort wind scale (Figure 12).
  {
    RelationshipSpec b;
    b.name = "wind_beaufort";
    b.left_header = "Wind";
    b.right_header = "Beaufort Scale";
    b.generic_left_headers = {"description"};
    b.generic_right_headers = {"force", "number"};
    b.popularity = 10;
    b.in_freebase = false;
    for (const auto& [wind, force] : kBeaufort) AddEntity(&b, {wind}, force);
    specs.push_back(std::move(b));
  }

  // --- Month -> number (static, mildly numeric).
  {
    RelationshipSpec m;
    m.name = "month_number";
    m.left_header = "Month";
    m.right_header = "No.";
    m.generic_left_headers = {"name"};
    m.generic_right_headers = {"number"};
    m.popularity = 12;
    m.in_freebase = true;
    for (size_t i = 0; i < kMonths.size(); ++i) {
      AddEntity(&m, {kMonths[i]}, std::to_string(i + 1));
    }
    specs.push_back(std::move(m));
  }

  // --- Temporal relation: F1 driver -> team (Figure 13; meaningful but
  // only for a season).
  {
    RelationshipSpec f1;
    f1.name = "f1_driver_team";
    f1.left_header = "Driver";
    f1.right_header = "Team";
    f1.generic_left_headers = {"name"};
    f1.generic_right_headers = {"constructor"};
    f1.kind = RelationKind::kTemporal;
    f1.one_to_one = false;
    f1.popularity = 16;
    f1.in_freebase = false;
    f1.has_wiki_table = false;
    for (const auto& d : kF1) AddEntity(&f1, {d.driver}, d.team);
    specs.push_back(std::move(f1));
  }

  // --- Meaningless formatting relation: month -> month + 6 (two-column
  // calendar layouts, Figure 13's (month, month) example).
  {
    RelationshipSpec mm;
    mm.name = "month_month";
    mm.left_header = "Month";
    mm.right_header = "Month";
    mm.kind = RelationKind::kMeaningless;
    mm.popularity = 8;
    mm.has_wiki_table = false;
    mm.in_freebase = false;
    for (size_t i = 0; i < 6; ++i) {
      AddEntity(&mm, {kMonths[i]}, kMonths[i + 6]);
    }
    specs.push_back(std::move(mm));
  }

  return specs;
}

std::vector<RelationshipSpec> BuiltinEnterpriseRelationships() {
  std::vector<RelationshipSpec> specs;

  auto make = [](const char* name, const char* lh, const char* rh,
                 std::vector<std::pair<std::string, std::string>> rows,
                 size_t popularity) {
    RelationshipSpec s;
    s.name = name;
    s.left_header = lh;
    s.right_header = rh;
    s.generic_left_headers = {"name"};
    s.generic_right_headers = {"code", "id"};
    s.popularity = popularity;
    s.has_wiki_table = false;
    s.in_freebase = false;
    s.in_yago = false;
    for (auto& [l, r] : rows) {
      EntitySpec e;
      e.left_forms = {l};
      e.right = r;
      s.entities.push_back(std::move(e));
    }
    return s;
  };

  specs.push_back(make(
      "product_family_code", "Product Family", "Code",
      {{"Access", "ACCES"},      {"Consumer Productivity", "CORPO"},
       {"Cloud Platform", "CLPLT"}, {"Developer Tools", "DVTLS"},
       {"Gaming Studio", "GMSTD"},  {"Search Ads", "SRADS"},
       {"Device Hardware", "DVHWD"}, {"Security Suite", "SCSTE"},
       {"Data Warehouse", "DTWHS"},  {"Collaboration", "CLLAB"},
       {"Machine Learning", "MCLRN"}, {"Support Services", "SPSVC"}},
      18));

  specs.push_back(make(
      "profit_center_code", "Profit Center", "Description",
      {{"P10018", "EQ-RU - Partner Support"}, {"P10021", "EQ-NA - PFE CPM"},
       {"P10034", "EQ-EU - Field Sales"},     {"P10042", "EQ-AP - Consulting"},
       {"P10057", "EQ-NA - Cloud Ops"},       {"P10063", "EQ-LA - Retail"},
       {"P10071", "EQ-EU - OEM Licensing"},   {"P10088", "EQ-AP - Education"},
       {"P10092", "EQ-NA - Federal"},         {"P10099", "EQ-RU - Distribution"}},
      14));

  specs.push_back(make(
      "industry_vertical", "Industry", "Vertical",
      {{"Accommodation", "Hospitality"},   {"Accounting", "Professional Services"},
       {"Agriculture", "Primary"},         {"Airlines", "Transportation"},
       {"Banking", "Financial Services"},  {"Biotech", "Healthcare"},
       {"Construction", "Industrial"},     {"Education", "Public Sector"},
       {"Insurance", "Financial Services"}, {"Logistics", "Transportation"},
       {"Mining", "Primary"},              {"Pharmaceuticals", "Healthcare"},
       {"Retail Grocery", "Retail"},       {"Telecom", "Communications"}},
      16));

  specs.push_back(make(
      "atu_country", "ATU", "Country",
      {{"Australia.01.EPG", "Australia"},   {"Australia.02.Commercial", "Australia"},
       {"Canada.01.Enterprise", "Canada"},  {"Canada.02.SMB", "Canada"},
       {"France.01.Public", "France"},      {"France.02.Enterprise", "France"},
       {"Germany.01.Auto", "Germany"},      {"Germany.02.Finance", "Germany"},
       {"Japan.01.Enterprise", "Japan"},    {"Japan.02.Gov", "Japan"},
       {"UK.01.Retail", "United Kingdom"},  {"UK.02.Banking", "United Kingdom"}},
      12));

  specs.push_back(make(
      "data_center_region", "Data Center", "Region",
      {{"Singapore IDC", "APAC"},   {"Dublin IDC3", "EMEA"},
       {"Amsterdam IDC1", "EMEA"},  {"Quincy DC2", "NORAM"},
       {"San Antonio DC1", "NORAM"}, {"Tokyo IDC2", "APAC"},
       {"Sydney IDC1", "APAC"},     {"Sao Paulo DC1", "LATAM"},
       {"Chicago DC4", "NORAM"},    {"Hong Kong IDC1", "APAC"},
       {"Frankfurt IDC2", "EMEA"},  {"Des Moines DC1", "NORAM"}},
      14));

  specs.push_back(make(
      "cost_center_code", "Cost Center", "Code",
      {{"Engineering Core", "CC-4410"},   {"Engineering Infra", "CC-4420"},
       {"Marketing Digital", "CC-5210"},  {"Marketing Events", "CC-5220"},
       {"Sales East", "CC-6110"},         {"Sales West", "CC-6120"},
       {"HR Operations", "CC-7010"},      {"Finance Planning", "CC-7110"},
       {"Legal Compliance", "CC-7210"},   {"Facilities", "CC-7310"},
       {"IT Helpdesk", "CC-7410"},        {"Research Lab", "CC-4510"}},
      16));

  specs.push_back(make(
      "building_campus", "Building", "Campus",
      {{"B16", "Redmond Main"},  {"B17", "Redmond Main"},
       {"B25", "Redmond Main"},  {"B40", "Redmond West"},
       {"B41", "Redmond West"},  {"Studio A", "Studio Campus"},
       {"Studio B", "Studio Campus"}, {"City Center 1", "Bellevue"},
       {"City Center 2", "Bellevue"}, {"Lincoln Square", "Bellevue"}},
      10));

  specs.push_back(make(
      "sku_product", "SKU", "Product",
      {{"SKU-0010", "Office Standard"},  {"SKU-0011", "Office Professional"},
       {"SKU-0020", "Windows Home"},     {"SKU-0021", "Windows Pro"},
       {"SKU-0030", "SQL Server Std"},   {"SKU-0031", "SQL Server Ent"},
       {"SKU-0040", "Azure Credits 100"}, {"SKU-0041", "Azure Credits 500"},
       {"SKU-0050", "Surface Laptop"},   {"SKU-0051", "Surface Pro"}},
      12));

  return specs;
}

}  // namespace ms
