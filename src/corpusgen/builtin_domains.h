// Curated real-world relationship specs: country code systems (ISO-3166 /
// IOC / FIFA, with their genuine divergences — Algeria is DZA in ISO but ALG
// in IOC), US states (abbreviation / capital / largest city, with the
// Washington: Olympia-vs-Seattle style near-conflicts Section 5.6
// discusses), airports (IATA/ICAO), chemical elements, stock tickers, car
// models, cities, currencies, and a few deliberately temporal or
// meaningless relations for the Appendix J triage.
#pragma once

#include <vector>

#include "corpusgen/domain.h"

namespace ms {

/// All hand-curated web-domain relationships.
std::vector<RelationshipSpec> BuiltinWebRelationships();

/// Hand-curated enterprise-style relationships (Figure 11 flavor).
std::vector<RelationshipSpec> BuiltinEnterpriseRelationships();

}  // namespace ms
