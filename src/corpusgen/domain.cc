#include "corpusgen/domain.h"

namespace ms {

size_t RelationshipSpec::GroundTruthSize() const {
  size_t n = 0;
  for (const auto& e : entities) n += e.left_forms.size();
  return n;
}

}  // namespace ms
