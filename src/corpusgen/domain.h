// Ground-truth relationship specifications used by the corpus generator.
//
// A RelationshipSpec describes one conceptual mapping relationship M(X, Y)
// (Definition 1): its entities, the synonymous surface forms of each left
// entity (the paper's Table 6 phenomenon), typical column headers (often
// deliberately generic — "name", "code" — which is what defeats
// column-name-based union baselines), and generation knobs such as
// popularity. The generator samples web/enterprise tables from these specs;
// the benchmark derives exact ground truth from them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ms {

/// One left-hand entity of a relationship with all its surface forms.
struct EntitySpec {
  /// Surface forms of the entity; the first is canonical (used by Wiki/KB
  /// style sources that carry exactly one mention per entity).
  std::vector<std::string> left_forms;
  /// The single right-hand value this entity maps to.
  std::string right;
};

/// How a relationship behaves over time — drives the Appendix J triage
/// (static vs temporal vs meaningless shares of top clusters).
enum class RelationKind {
  kStatic = 0,   ///< country->code, element->symbol, ...
  kTemporal,     ///< driver->team, club->points, ...
  kMeaningless,  ///< formatting artifacts (month->month calendars)
};

/// One conceptual mapping relationship plus generation knobs.
struct RelationshipSpec {
  std::string name;          ///< unique id, e.g. "country_iso3"
  std::string left_header;   ///< typical header of the left column
  std::string right_header;  ///< typical header of the right column
  /// Alternative generic headers the generator substitutes with some
  /// probability ("name", "code"), emulating undescriptive web headers.
  std::vector<std::string> generic_left_headers;
  std::vector<std::string> generic_right_headers;

  std::vector<EntitySpec> entities;

  RelationKind kind = RelationKind::kStatic;
  bool one_to_one = true;  ///< Table 1 style vs Table 2 (N:1) style

  /// How many web tables the generator derives from this relationship.
  size_t popularity = 24;
  /// Whether a comprehensive Wikipedia-style table exists for it.
  bool has_wiki_table = true;
  /// Whether Freebase / YAGO cover this relation (canonical forms only).
  bool in_freebase = true;
  bool in_yago = false;
  /// Whether a trusted (data.gov-style) full feed exists for expansion.
  bool has_trusted_feed = false;

  /// Conflicting sibling relations: names of other specs sharing left
  /// entities but mapping them to different rights (ISO vs IOC vs FIFA).
  /// Informational; the conflict arises naturally from shared left forms.
  std::vector<std::string> sibling_relations;

  size_t num_entities() const { return entities.size(); }

  /// Total distinct (left-form, right) ground-truth pairs.
  size_t GroundTruthSize() const;
};

}  // namespace ms
