#include "corpusgen/generator.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "corpusgen/builtin_domains.h"
#include "corpusgen/procedural.h"

namespace ms {
namespace {

constexpr const char* kNoiseHeaders[] = {"Notes", "Comment", "Details"};
constexpr const char* kNumericHeaders[] = {"Population", "Founded", "Score",
                                           "Total"};

class WorldBuilder {
 public:
  WorldBuilder(std::vector<RelationshipSpec> specs,
               const GeneratorOptions& options)
      : opts_(options), rng_(options.seed) {
    world_.specs = std::move(specs);
    for (const auto& s : world_.specs) spec_by_name_[s.name] = &s;
    BuildDomainPools();
  }

  GeneratedWorld Build() {
    size_t relation_tables = 0;
    for (const auto& spec : world_.specs) {
      relation_tables += GenerateRelationTables(spec);
      if (spec.has_wiki_table && !opts_.enterprise_profile) {
        GenerateWikiTable(spec);
      }
    }
    const size_t noise_count = static_cast<size_t>(
        static_cast<double>(relation_tables) * opts_.noise_table_fraction);
    GenerateNoiseTables(noise_count);
    BuildGroundTruthAndFeeds();
    return std::move(world_);
  }

 private:
  void BuildDomainPools() {
    for (size_t i = 0; i < opts_.shared_domains; ++i) {
      shared_domains_.push_back(
          (opts_.enterprise_profile ? "share-" : "data") + std::to_string(i) +
          (opts_.enterprise_profile ? ".corp.local" : ".example.org"));
    }
    for (const auto& spec : world_.specs) {
      auto& pool = relation_domains_[spec.name];
      for (size_t i = 0; i < opts_.domains_per_relation; ++i) {
        pool.push_back(spec.name + "-" + std::to_string(i) +
                       (opts_.enterprise_profile ? ".corp.local"
                                                 : ".example.com"));
      }
    }
  }

  std::string PickDomain(const std::string& relation_name) {
    const auto& pool = relation_domains_[relation_name];
    if (rng_.Bernoulli(0.3)) return rng_.Pick(shared_domains_);
    return rng_.Pick(pool);
  }

  std::string CellWithArtifacts(std::string cell) {
    if (rng_.Bernoulli(opts_.footnote_probability)) {
      cell += "[" + std::to_string(1 + rng_.Uniform(9)) + "]";
    }
    return cell;
  }

  std::string LeftForm(const EntitySpec& e) {
    if (e.left_forms.size() > 1 &&
        rng_.Bernoulli(opts_.synonym_use_probability)) {
      return e.left_forms[1 + rng_.Uniform(e.left_forms.size() - 1)];
    }
    return e.left_forms[0];
  }

  std::string HeaderFor(const std::string& specific,
                        const std::vector<std::string>& generics) {
    if (!generics.empty() &&
        rng_.Bernoulli(opts_.generic_header_probability)) {
      return generics[rng_.Uniform(generics.size())];
    }
    return specific;
  }

  /// Samples k distinct entity indices with Zipf popularity skew.
  std::vector<size_t> SampleEntities(size_t n, size_t k) {
    k = std::min(k, n);
    std::set<size_t> chosen;
    size_t attempts = 0;
    while (chosen.size() < k && attempts < k * 20) {
      chosen.insert(rng_.Zipf(n, 0.7));
      ++attempts;
    }
    // Fill deterministically if rejection sampling stalled.
    for (size_t i = 0; i < n && chosen.size() < k; ++i) chosen.insert(i);
    return {chosen.begin(), chosen.end()};
  }

  size_t GenerateRelationTables(const RelationshipSpec& spec) {
    const size_t count = std::max<size_t>(
        2, static_cast<size_t>(static_cast<double>(spec.popularity) *
                               opts_.popularity_scale));
    for (size_t t = 0; t < count; ++t) {
      GenerateOneTable(spec);
    }
    return count;
  }

  void GenerateOneTable(const RelationshipSpec& spec) {
    const size_t n = spec.num_entities();
    const size_t rows = std::min(
        n, static_cast<size_t>(rng_.UniformInt(
               static_cast<int64_t>(opts_.min_rows),
               static_cast<int64_t>(opts_.max_rows))));
    auto picked = SampleEntities(n, rows);

    std::vector<std::string> names;
    std::vector<std::vector<std::string>> cols;

    // Left column.
    names.push_back(HeaderFor(spec.left_header, spec.generic_left_headers));
    cols.emplace_back();
    for (size_t ei : picked) {
      std::string cell = LeftForm(spec.entities[ei]);
      if (opts_.enterprise_profile &&
          rng_.Bernoulli(opts_.pivot_pollution_probability)) {
        cell = rng_.Bernoulli(0.5) ? "Total" : spec.left_header;
      }
      cols.back().push_back(CellWithArtifacts(std::move(cell)));
    }

    // Right column (with rare dirty values, Figure 4).
    names.push_back(HeaderFor(spec.right_header, spec.generic_right_headers));
    cols.emplace_back();
    for (size_t ei : picked) {
      std::string right = spec.entities[ei].right;
      if (rng_.Bernoulli(opts_.cell_error_probability) && n > 1) {
        right = spec.entities[rng_.Uniform(n)].right;
      }
      cols.back().push_back(CellWithArtifacts(std::move(right)));
    }

    // Occasionally include a sibling code system as a third column
    // (the Figure 2 comparison-table layout).
    if (!spec.sibling_relations.empty() &&
        rng_.Bernoulli(opts_.multi_system_table_probability)) {
      const std::string& sib_name =
          spec.sibling_relations[rng_.Uniform(spec.sibling_relations.size())];
      auto it = spec_by_name_.find(sib_name);
      if (it != spec_by_name_.end()) {
        const RelationshipSpec& sib = *it->second;
        // Align sibling entities by canonical left form.
        std::unordered_map<std::string, const EntitySpec*> by_canonical;
        for (const auto& e : sib.entities) by_canonical[e.left_forms[0]] = &e;
        std::vector<std::string> sib_col;
        bool complete = true;
        for (size_t ei : picked) {
          auto sit = by_canonical.find(spec.entities[ei].left_forms[0]);
          if (sit == by_canonical.end()) {
            complete = false;
            break;
          }
          sib_col.push_back(sit->second->right);
        }
        if (complete) {
          names.push_back(
              HeaderFor(sib.right_header, sib.generic_right_headers));
          cols.push_back(std::move(sib_col));
        }
      }
    }

    // Extra noise columns.
    if (rng_.Bernoulli(opts_.extra_column_probability)) {
      if (rng_.Bernoulli(0.5)) {
        // Numeric column: passes nothing useful, pruned by FD/numeric rules.
        names.push_back(rng_.Pick(std::vector<std::string>(
            std::begin(kNumericHeaders), std::end(kNumericHeaders))));
        cols.emplace_back();
        for (size_t r = 0; r < picked.size(); ++r) {
          cols.back().push_back(std::to_string(rng_.Uniform(1000000)));
        }
      } else {
        // Incoherent free-text column (the Table 7 "Location" analogue).
        names.push_back(rng_.Pick(std::vector<std::string>(
            std::begin(kNoiseHeaders), std::end(kNoiseHeaders))));
        cols.emplace_back();
        for (size_t r = 0; r < picked.size(); ++r) {
          cols.back().push_back(RandomWord(rng_) + " " + RandomWord(rng_) +
                                " " + std::to_string(rng_.Uniform(9999)));
        }
      }
    }

    world_.corpus.AddFromStrings(
        PickDomain(spec.name),
        opts_.enterprise_profile ? TableSource::kEnterprise
                                 : TableSource::kWeb,
        names, cols);
  }

  /// One comprehensive, clean, canonical-forms-only table (WikiTable style:
  /// high precision, limited synonym coverage).
  void GenerateWikiTable(const RelationshipSpec& spec) {
    const size_t n = spec.num_entities();
    const size_t rows = std::max<size_t>(4, (n * 3) / 5);
    auto picked = SampleEntities(n, rows);
    std::vector<std::string> names = {spec.left_header, spec.right_header};
    std::vector<std::vector<std::string>> cols(2);
    for (size_t ei : picked) {
      cols[0].push_back(spec.entities[ei].left_forms[0]);
      cols[1].push_back(spec.entities[ei].right);
    }
    world_.corpus.AddFromStrings("en.wikipedia.org", TableSource::kWiki,
                                 names, cols);
  }

  void GenerateNoiseTables(size_t count) {
    const TableSource noise_source = opts_.enterprise_profile
                                         ? TableSource::kEnterprise
                                         : TableSource::kWeb;
    // Shared pools so noise values co-occur realistically.
    std::vector<std::string> teams, stadiums, dates;
    for (size_t i = 0; i < 24; ++i) {
      teams.push_back(RandomWord(rng_) + " " + RandomWord(rng_, 1, 2) + "s");
      stadiums.push_back(RandomWord(rng_) + " Field");
    }
    for (size_t i = 0; i < 30; ++i) {
      dates.push_back(std::to_string(1 + rng_.Uniform(12)) + "-" +
                      std::to_string(1 + rng_.Uniform(28)));
    }

    for (size_t t = 0; t < count; ++t) {
      const size_t rows = 5 + rng_.Uniform(10);
      switch (rng_.Uniform(3)) {
        case 0: {
          // Schedule table (Table 7): home/away/date/stadium + mixed
          // location column. (home team -> stadium) is a true local FD;
          // (home -> away) and (home -> date) are spurious.
          std::vector<std::string> names = {"Home Team", "Away Team", "Date",
                                            "Stadium", "Location"};
          std::vector<std::vector<std::string>> cols(5);
          for (size_t r = 0; r < rows; ++r) {
            size_t home = rng_.Uniform(teams.size());
            size_t away = rng_.Uniform(teams.size());
            cols[0].push_back(teams[home]);
            cols[1].push_back(teams[away]);
            cols[2].push_back(rng_.Pick(dates));
            cols[3].push_back(stadiums[home]);  // consistent per home team
            // Mixed-format location cell: incoherent by construction.
            cols[4].push_back(rng_.Bernoulli(0.5)
                                  ? RandomWord(rng_) + ", " +
                                        std::to_string(rng_.Uniform(99999))
                                  : std::to_string(rng_.Uniform(9999)) + " " +
                                        RandomWord(rng_) + " Ave");
          }
          world_.corpus.AddFromStrings("sports" + std::to_string(t % 7) +
                                           ".example.net",
                                       noise_source, names, cols);
          break;
        }
        case 1: {
          // Fully incoherent table: random words (never repeats, so no
          // co-occurrence signal — the PMI filter's prey).
          std::vector<std::string> names = {"name", "value"};
          std::vector<std::vector<std::string>> cols(2);
          for (size_t r = 0; r < rows; ++r) {
            cols[0].push_back(RandomWord(rng_) + " " + RandomWord(rng_) +
                              std::to_string(rng_.Uniform(100000)));
            cols[1].push_back(RandomWord(rng_) +
                              std::to_string(rng_.Uniform(100000)));
          }
          world_.corpus.AddFromStrings("misc" + std::to_string(t % 11) +
                                           ".example.org",
                                       noise_source, names, cols);
          break;
        }
        default: {
          // Numeric id table.
          std::vector<std::string> names = {"id", "amount", "rank"};
          std::vector<std::vector<std::string>> cols(3);
          for (size_t r = 0; r < rows; ++r) {
            cols[0].push_back(std::to_string(100000 + rng_.Uniform(900000)));
            cols[1].push_back(std::to_string(rng_.Uniform(100000)));
            cols[2].push_back(std::to_string(r + 1));
          }
          world_.corpus.AddFromStrings("finance" + std::to_string(t % 5) +
                                           ".example.org",
                                       noise_source, names, cols);
          break;
        }
      }
    }
  }

  BinaryTable NormalizedPairs(
      const std::vector<EntitySpec>& entities) {
    StringPool& pool = world_.corpus.pool();
    std::vector<ValuePair> pairs;
    for (const auto& e : entities) {
      const std::string right = NormalizeCell(e.right, opts_.normalize);
      if (right.empty()) continue;
      ValueId rid = pool.Intern(right);
      for (const auto& form : e.left_forms) {
        const std::string left = NormalizeCell(form, opts_.normalize);
        if (left.empty() || left == right) continue;
        pairs.push_back({pool.Intern(left), rid});
      }
    }
    return BinaryTable::FromPairs(std::move(pairs));
  }

  void BuildGroundTruthAndFeeds() {
    Rng tail_rng(opts_.seed ^ 0xabcdef);
    for (const auto& spec : world_.specs) {
      std::vector<EntitySpec> truth_entities = spec.entities;
      if (spec.has_trusted_feed && opts_.trusted_tail_factor > 0) {
        auto tail = LongTailEntities(
            spec,
            static_cast<size_t>(static_cast<double>(spec.num_entities()) *
                                opts_.trusted_tail_factor),
            tail_rng);
        truth_entities.insert(truth_entities.end(), tail.begin(), tail.end());
      }

      if (spec.kind != RelationKind::kMeaningless) {
        BenchmarkCase c;
        c.name = spec.name;
        c.kind = spec.kind;
        c.in_freebase = spec.in_freebase;
        c.in_yago = spec.in_yago;
        c.has_wiki_table = spec.has_wiki_table;
        c.ground_truth = NormalizedPairs(truth_entities);
        world_.cases.push_back(std::move(c));
      }

      if (spec.has_trusted_feed) {
        BinaryTable feed = NormalizedPairs(truth_entities);
        feed.domain = "trusted.data.gov";
        feed.source = TableSource::kTrusted;
        feed.left_name = spec.left_header;
        feed.right_name = spec.right_header;
        world_.trusted.push_back(std::move(feed));
      }
    }
  }

  GeneratorOptions opts_;
  Rng rng_;
  GeneratedWorld world_;
  std::unordered_map<std::string, const RelationshipSpec*> spec_by_name_;
  std::vector<std::string> shared_domains_;
  std::unordered_map<std::string, std::vector<std::string>> relation_domains_;
};

}  // namespace

int GeneratedWorld::CaseIndex(const std::string& name) const {
  for (size_t i = 0; i < cases.size(); ++i) {
    if (cases[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

GeneratedWorld GenerateWorld(std::vector<RelationshipSpec> specs,
                             const GeneratorOptions& options) {
  WorldBuilder builder(std::move(specs), options);
  return builder.Build();
}

GeneratedWorld GenerateWebWorld(const GeneratorOptions& options) {
  auto specs = BuiltinWebRelationships();
  ProceduralOptions popts;
  popts.seed = options.seed ^ 0x5eed;
  auto procedural = ProceduralRelationships(popts);
  specs.insert(specs.end(), std::make_move_iterator(procedural.begin()),
               std::make_move_iterator(procedural.end()));
  return GenerateWorld(std::move(specs), options);
}

GeneratedWorld GenerateEnterpriseWorld(GeneratorOptions options) {
  options.enterprise_profile = true;
  options.domains_per_relation = 3;  // intranets have few "domains"
  options.shared_domains = 8;
  auto specs = BuiltinEnterpriseRelationships();
  ProceduralOptions popts;
  popts.num_families = 12;
  popts.seed = options.seed ^ 0xe17e;
  auto procedural = ProceduralRelationships(popts);
  specs.insert(specs.end(), std::make_move_iterator(procedural.begin()),
               std::make_move_iterator(procedural.end()));
  for (auto& s : specs) s.has_wiki_table = false;
  return GenerateWorld(std::move(specs), options);
}

}  // namespace ms
