// The corpus/world generator: turns relationship specs into a realistic
// table corpus plus exactly-known ground truth. See DESIGN.md §1 for why
// this substitutes faithfully for the paper's proprietary 100M-table crawl:
// it reproduces partial per-table coverage, synonym dispersion, dirty cells,
// footnote marks, generic headers, sibling code-system conflicts, spurious
// local FDs, incoherent columns, and domain provenance.
#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "corpusgen/domain.h"
#include "table/binary_table.h"
#include "table/corpus.h"
#include "text/normalize.h"

namespace ms {

struct GeneratorOptions {
  uint64_t seed = 42;

  /// Rows per generated web table (uniform range, clamped by entity count).
  size_t min_rows = 6;
  size_t max_rows = 22;

  /// Probability that a table's headers are replaced by generic ones
  /// ("name", "code") — this is what breaks UnionWeb-style grouping (the
  /// paper: "column names are often undescriptive" [15]).
  double generic_header_probability = 0.65;
  /// Per-cell probability of using a non-canonical synonym form.
  double synonym_use_probability = 0.4;
  /// Per-cell probability of a wrong right value (dirty data, Figure 4).
  double cell_error_probability = 0.008;
  /// Per-cell probability of a "[1]"-style footnote artifact (Figure 2).
  double footnote_probability = 0.04;
  /// Probability that a table carries 1-2 extra noise columns.
  double extra_column_probability = 0.45;
  /// For sibling code systems: probability a single table lists the left
  /// column with several systems at once (Figure 2 layout).
  double multi_system_table_probability = 0.2;
  /// Number of pure-noise tables per relationship table (spurious FDs,
  /// incoherent columns, schedules).
  double noise_table_fraction = 0.35;

  /// Web domains: each relation draws from `domains_per_relation` dedicated
  /// domains plus a shared pool, so popularity stats are meaningful.
  size_t domains_per_relation = 8;
  size_t shared_domains = 24;

  /// Scales every spec's popularity (table count); the Fig. 9 scalability
  /// sweep raises this.
  double popularity_scale = 1.0;

  /// Long-tail entities added to trusted feeds (× spec size), invisible to
  /// web tables — exercises Appendix I expansion.
  double trusted_tail_factor = 1.0;

  /// Enterprise profile: intranet domains, spreadsheet source tag, pivot
  /// pollution (meta-data rows mixed into columns, Section 5.5).
  bool enterprise_profile = false;
  double pivot_pollution_probability = 0.06;

  NormalizeOptions normalize;  ///< used when materializing ground truth
};

/// One benchmark case: a relationship plus its exact ground truth (pairs of
/// *normalized* values interned in the world's pool).
struct BenchmarkCase {
  std::string name;
  RelationKind kind = RelationKind::kStatic;
  bool in_freebase = false;
  bool in_yago = false;
  bool has_wiki_table = false;
  BinaryTable ground_truth;
};

/// Everything the experiments need: corpus + truth + side feeds.
struct GeneratedWorld {
  TableCorpus corpus;
  std::vector<RelationshipSpec> specs;
  std::vector<BenchmarkCase> cases;      ///< excludes meaningless relations
  std::vector<BinaryTable> trusted;      ///< normalized trusted feeds
  /// Index into `cases` by relationship name.
  int CaseIndex(const std::string& name) const;
};

/// Generates a world from explicit specs.
GeneratedWorld GenerateWorld(std::vector<RelationshipSpec> specs,
                             const GeneratorOptions& options = {});

/// The standard web world: built-in + procedural specs (≈80 cases).
GeneratedWorld GenerateWebWorld(const GeneratorOptions& options = {});

/// The standard enterprise world (≈30 cases; Section 5.5).
GeneratedWorld GenerateEnterpriseWorld(GeneratorOptions options = {});

}  // namespace ms
