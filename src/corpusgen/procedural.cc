#include "corpusgen/procedural.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <string>

namespace ms {
namespace {

constexpr const char* kSyllables[] = {
    "ka", "to", "ri", "vel", "mar", "sun", "bel", "dor", "fen", "gal",
    "hul", "jin", "kor", "lum", "nor", "pra", "quil", "ras", "tan", "ur",
    "ven", "wex", "yor", "zan", "mil", "sor", "tev", "ond", "ash", "bru"};

std::string Capitalize(std::string s) {
  if (!s.empty()) s[0] = static_cast<char>(std::toupper(s[0]));
  return s;
}

/// A distinct 2-4 letter code derived from a name plus salt, unique within
/// `used`.
std::string MakeCode(const std::string& name, uint64_t salt, Rng& rng,
                     std::set<std::string>* used) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::string code;
    size_t len = 3 + (salt % 2);
    for (size_t i = 0; i < len; ++i) {
      char c;
      if (attempt == 0 && i < name.size() &&
          std::isalpha(static_cast<unsigned char>(name[i]))) {
        c = static_cast<char>(std::toupper(name[i]));
      } else {
        c = static_cast<char>('A' + rng.Uniform(26));
      }
      code.push_back(c);
    }
    if (used->insert(code).second) return code;
  }
  // Fallback: numeric suffix guarantees uniqueness.
  std::string code = "Z" + std::to_string(used->size());
  used->insert(code);
  return code;
}

}  // namespace

std::string RandomWord(Rng& rng, size_t min_syllables, size_t max_syllables) {
  const size_t n = static_cast<size_t>(
      rng.UniformInt(static_cast<int64_t>(min_syllables),
                     static_cast<int64_t>(max_syllables)));
  std::string w;
  for (size_t i = 0; i < n; ++i) {
    w += kSyllables[rng.Uniform(std::size(kSyllables))];
  }
  return Capitalize(w);
}

std::vector<EntitySpec> LongTailEntities(const RelationshipSpec& spec,
                                         size_t count, Rng& rng) {
  std::set<std::string> used_codes;
  for (const auto& e : spec.entities) used_codes.insert(e.right);
  std::vector<EntitySpec> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    EntitySpec e;
    std::string name = RandomWord(rng) + " " + RandomWord(rng);
    e.left_forms = {name};
    e.right = MakeCode(name, i, rng, &used_codes);
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<RelationshipSpec> ProceduralRelationships(
    const ProceduralOptions& options) {
  Rng rng(options.seed);
  std::vector<RelationshipSpec> specs;

  for (size_t f = 0; f < options.num_families; ++f) {
    const std::string family = RandomWord(rng, 2, 2);
    const size_t n_entities = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(options.min_entities),
        static_cast<int64_t>(options.max_entities)));

    // --- Left entities, shared by all sibling systems of this family.
    struct LeftEntity {
      std::vector<std::string> forms;
    };
    std::vector<LeftEntity> lefts(n_entities);
    std::set<std::string> seen_names;
    for (auto& le : lefts) {
      std::string base;
      do {
        base = RandomWord(rng) + " " + RandomWord(rng);
      } while (!seen_names.insert(base).second);
      le.forms.push_back(base);
      if (rng.Bernoulli(options.synonym_probability)) {
        // Synonymous surface forms in the style of Table 6.
        auto space = base.find(' ');
        std::string first = base.substr(0, space);
        std::string second = base.substr(space + 1);
        switch (rng.Uniform(3)) {
          case 0:
            le.forms.push_back(second + ", " + first);
            break;
          case 1:
            le.forms.push_back(base + " (" + family + ")");
            break;
          default:
            le.forms.push_back(first + " " + second.substr(0, 1) + ".");
            break;
        }
        if (rng.Bernoulli(0.3)) {
          le.forms.push_back("The " + base);
        }
      }
    }

    const bool many_to_one = rng.Bernoulli(options.many_to_one_probability);
    size_t n_systems = 1;
    if (!many_to_one) {
      double r = rng.UniformDouble();
      if (r < options.sibling3_probability) {
        n_systems = 3;
      } else if (r < options.sibling3_probability +
                         options.sibling2_probability) {
        n_systems = 2;
      }
    }

    if (many_to_one) {
      // Entity -> group (like city -> state): few groups, many entities.
      RelationshipSpec s;
      s.name = "proc" + std::to_string(f) + "_group";
      s.left_header = family + " Name";
      s.right_header = family + " Group";
      s.generic_left_headers = {"name"};
      s.generic_right_headers = {"group", "category"};
      s.one_to_one = false;
      s.popularity = 10 + rng.Uniform(20);
      s.in_freebase = rng.Bernoulli(0.5);
      s.in_yago = rng.Bernoulli(0.25);
      s.has_wiki_table = rng.Bernoulli(0.7);
      const size_t n_groups = 3 + rng.Uniform(5);
      std::vector<std::string> groups;
      for (size_t g = 0; g < n_groups; ++g) {
        groups.push_back(RandomWord(rng, 2, 2) + " Division");
      }
      for (auto& le : lefts) {
        EntitySpec e;
        e.left_forms = le.forms;
        e.right = groups[rng.Uniform(groups.size())];
        s.entities.push_back(std::move(e));
      }
      specs.push_back(std::move(s));
      continue;
    }

    // 1:1 code systems. System 0's codes are the reference; each further
    // system reuses the reference code for most entities and diverges on a
    // controlled fraction (the ISO/IOC pattern).
    std::set<std::string> used_codes;
    std::vector<std::string> ref_codes(n_entities);
    for (size_t i = 0; i < n_entities; ++i) {
      ref_codes[i] = MakeCode(lefts[i].forms[0], f, rng, &used_codes);
    }

    std::vector<std::string> sibling_names;
    for (size_t sys = 0; sys < n_systems; ++sys) {
      sibling_names.push_back("proc" + std::to_string(f) + "_sys" +
                              std::to_string(sys));
    }

    for (size_t sys = 0; sys < n_systems; ++sys) {
      RelationshipSpec s;
      s.name = sibling_names[sys];
      s.left_header = family + " Name";
      s.right_header =
          Capitalize(std::string(1, static_cast<char>('A' + sys))) + "-Code";
      s.generic_left_headers = {"name"};
      s.generic_right_headers = {"code", "abbr"};
      s.popularity = 10 + rng.Uniform(24);
      s.in_freebase = sys == 0 && rng.Bernoulli(0.5);
      s.in_yago = sys == 0 && rng.Bernoulli(0.2);
      s.has_wiki_table = rng.Bernoulli(0.6);
      s.has_trusted_feed = rng.Bernoulli(0.15);
      for (size_t other = 0; other < n_systems; ++other) {
        if (other != sys) s.sibling_relations.push_back(sibling_names[other]);
      }
      std::set<std::string> sys_codes = used_codes;
      for (size_t i = 0; i < n_entities; ++i) {
        EntitySpec e;
        e.left_forms = lefts[i].forms;
        if (sys == 0 || !rng.Bernoulli(options.divergence_fraction)) {
          e.right = ref_codes[i];
        } else {
          e.right = MakeCode(lefts[i].forms[0], f * 31 + sys, rng, &sys_codes);
        }
        s.entities.push_back(std::move(e));
      }
      specs.push_back(std::move(s));
    }
  }
  return specs;
}

}  // namespace ms
