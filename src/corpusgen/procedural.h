// Procedurally generated relationship families. The paper's web benchmark
// has 80 cases; the hand-curated specs cover the headline domains and these
// families scale the benchmark to the same size with controlled structure:
// each family is a set of left entities shared by 1-3 sibling "code systems"
// whose right values agree on most entities but diverge on a controlled
// fraction — the exact ISO-vs-IOC-vs-FIFA adversarial pattern that makes
// positive-only methods over-merge.
#pragma once

#include <vector>

#include "common/random.h"
#include "corpusgen/domain.h"

namespace ms {

struct ProceduralOptions {
  size_t num_families = 38;
  size_t min_entities = 16;
  size_t max_entities = 48;
  /// Probability that a family has 2 or 3 sibling code systems.
  double sibling2_probability = 0.35;
  double sibling3_probability = 0.15;
  /// Fraction of entities whose codes diverge between sibling systems.
  double divergence_fraction = 0.35;
  /// Probability an entity gets extra synonym forms.
  double synonym_probability = 0.45;
  /// Probability a family is N:1 (entity -> group) instead of 1:1 codes.
  double many_to_one_probability = 0.25;
  uint64_t seed = 20170705;
};

/// Generates the families. Relation names are "proc<k>_sys<j>".
std::vector<RelationshipSpec> ProceduralRelationships(
    const ProceduralOptions& options = {});

/// Generates `count` extra "long tail" entities in the style of `spec`
/// (used to extend trusted feeds beyond web coverage for Appendix I).
std::vector<EntitySpec> LongTailEntities(const RelationshipSpec& spec,
                                         size_t count, Rng& rng);

/// Random pseudo-word ("Velkori", "Tansum") used for entity names.
std::string RandomWord(Rng& rng, size_t min_syllables = 2,
                       size_t max_syllables = 3);

}  // namespace ms
