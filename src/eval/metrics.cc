#include "eval/metrics.h"

namespace ms {

PrfScore ScoreRelation(const BinaryTable& predicted,
                       const BinaryTable& truth) {
  PrfScore s;
  if (predicted.empty() || truth.empty()) return s;
  const size_t inter = predicted.IntersectSize(truth);
  s.precision = static_cast<double>(inter) /
                static_cast<double>(predicted.size());
  s.recall = static_cast<double>(inter) / static_cast<double>(truth.size());
  if (s.precision + s.recall > 0) {
    s.fscore = 2 * s.precision * s.recall / (s.precision + s.recall);
  }
  return s;
}

BestRelation FindBestRelation(const std::vector<BinaryTable>& relations,
                              const BinaryTable& truth) {
  BestRelation best;
  for (size_t i = 0; i < relations.size(); ++i) {
    PrfScore s = ScoreRelation(relations[i], truth);
    if (s.fscore > best.score.fscore) {
      best.index = static_cast<int>(i);
      best.score = s;
    }
  }
  return best;
}

AggregateScore Aggregate(const std::vector<PrfScore>& per_case,
                         double precision_floor) {
  AggregateScore agg;
  agg.cases_total = per_case.size();
  if (per_case.empty()) return agg;
  double psum = 0, rsum = 0, fsum = 0;
  for (const auto& s : per_case) {
    rsum += s.recall;
    fsum += s.fscore;
    if (s.precision >= precision_floor) {
      psum += s.precision;
      ++agg.cases_with_hit;
    }
  }
  agg.avg_precision =
      agg.cases_with_hit ? psum / static_cast<double>(agg.cases_with_hit) : 0;
  agg.avg_recall = rsum / static_cast<double>(per_case.size());
  agg.avg_fscore = fsum / static_cast<double>(per_case.size());
  return agg;
}

}  // namespace ms
