// Benchmark metrics (Section 5.1): for a ground-truth mapping B* and a
// synthesized relation B,
//   precision = |B ∩ B*| / |B|,  recall = |B ∩ B*| / |B*|,
//   f-score = harmonic mean.
// Every method is scored by its best relation per benchmark case — the
// paper's deliberately method-favorable protocol ("a human who wishes to
// pick the best relationship ... would effectively pick the same tables").
#pragma once

#include <string>
#include <vector>

#include "table/binary_table.h"

namespace ms {

struct PrfScore {
  double precision = 0.0;
  double recall = 0.0;
  double fscore = 0.0;
};

/// Exact pair-set precision/recall/f of `predicted` against `truth`.
PrfScore ScoreRelation(const BinaryTable& predicted, const BinaryTable& truth);

/// Index + score of the best-f relation for one ground truth; index -1 when
/// `relations` is empty (score all-zero).
struct BestRelation {
  int index = -1;
  PrfScore score;
};

BestRelation FindBestRelation(const std::vector<BinaryTable>& relations,
                              const BinaryTable& truth);

/// Aggregate scores across cases. Following the paper's footnote 5, cases
/// with precision below `precision_floor` (method missed the relationship
/// entirely) are excluded from the precision average only; recall and
/// f-score average over all cases.
struct AggregateScore {
  double avg_precision = 0.0;
  double avg_recall = 0.0;
  double avg_fscore = 0.0;
  size_t cases_total = 0;
  size_t cases_with_hit = 0;  ///< cases contributing to avg_precision
};

AggregateScore Aggregate(const std::vector<PrfScore>& per_case,
                         double precision_floor = 0.01);

}  // namespace ms
