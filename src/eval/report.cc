#include "eval/report.h"

#include <algorithm>
#include <ostream>

namespace ms {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void TextTable::Print(std::ostream& out) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c ? "  " : "");
      out << row[c];
      out << std::string(width[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(std::ostream& out, const std::string& title) {
  out << "\n== " << title << " ==\n";
}

}  // namespace ms
