// Plain-text report tables for the benchmark binaries. Produces the
// fixed-width rows the EXPERIMENTS.md transcripts quote.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ms {

/// Simple fixed-width text table: collect rows, print aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> row);

  /// Writes the aligned table to `out`.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner: "== title ==".
void PrintBanner(std::ostream& out, const std::string& title);

}  // namespace ms
