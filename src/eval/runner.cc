#include "eval/runner.h"

namespace ms {

MethodEvaluation EvaluateMethod(const MethodOutput& output,
                                const GeneratedWorld& world) {
  MethodEvaluation eval;
  eval.method_name = output.method_name;
  eval.runtime_seconds = output.runtime_seconds;
  eval.per_case.reserve(world.cases.size());
  eval.best_relation.reserve(world.cases.size());
  for (const auto& c : world.cases) {
    BestRelation best = FindBestRelation(output.relations, c.ground_truth);
    eval.per_case.push_back(best.score);
    eval.best_relation.push_back(best.index);
  }
  eval.aggregate = Aggregate(eval.per_case);
  return eval;
}

}  // namespace ms
