// Benchmark runner: evaluates any method's output relations against a
// generated world's ground-truth cases and produces the per-case and
// aggregate rows the paper's Figures 7/10/14 report.
#pragma once

#include <string>
#include <vector>

#include "corpusgen/generator.h"
#include "eval/metrics.h"

namespace ms {

/// What a method hands to the evaluator: a name, its candidate relations,
/// and the wall-clock it took to produce them (for Figure 8).
struct MethodOutput {
  std::string method_name;
  std::vector<BinaryTable> relations;
  double runtime_seconds = 0.0;
};

/// Per-case evaluation of one method.
struct MethodEvaluation {
  std::string method_name;
  std::vector<PrfScore> per_case;   ///< aligned with world.cases
  std::vector<int> best_relation;   ///< index into MethodOutput::relations
  AggregateScore aggregate;
  double runtime_seconds = 0.0;
};

/// Scores `output` on every benchmark case of `world`.
MethodEvaluation EvaluateMethod(const MethodOutput& output,
                                const GeneratedWorld& world);

}  // namespace ms
