#include "eval/suite.h"

#include <utility>

#include "baselines/correlation.h"
#include "baselines/knowledge_base.h"
#include "baselines/schema_cc.h"
#include "baselines/single_table.h"
#include "baselines/union_tables.h"
#include "baselines/wise_integrator.h"
#include "common/logging.h"
#include "common/timer.h"

namespace ms {
namespace {

std::vector<BinaryTable> MappingsToRelations(
    const std::vector<SynthesizedMapping>& mappings) {
  std::vector<BinaryTable> out;
  out.reserve(mappings.size());
  for (const auto& m : mappings) out.push_back(m.merged);
  return out;
}

/// Picks the best-scoring sweep variant per the paper's protocol ("We tested
/// different thresholds in [0, 1] and report the best result").
SuiteEntry BestOfSweep(std::string name,
                       std::vector<std::vector<BinaryTable>> variants,
                       double seconds, const GeneratedWorld& world) {
  SuiteEntry best;
  best.output.method_name = name;
  best.output.runtime_seconds = seconds;
  bool first = true;
  for (auto& rels : variants) {
    MethodOutput out;
    out.method_name = name;
    out.relations = std::move(rels);
    out.runtime_seconds = seconds;
    MethodEvaluation eval = EvaluateMethod(out, world);
    if (first || eval.aggregate.avg_fscore >
                     best.evaluation.aggregate.avg_fscore) {
      best.output = std::move(out);
      best.evaluation = std::move(eval);
      first = false;
    }
  }
  return best;
}

SuiteEntry Entry(std::string name, std::vector<BinaryTable> relations,
                 double seconds, const GeneratedWorld& world) {
  SuiteEntry e;
  e.output.method_name = std::move(name);
  e.output.relations = std::move(relations);
  e.output.runtime_seconds = seconds;
  e.evaluation = EvaluateMethod(e.output, world);
  return e;
}

}  // namespace

SuiteResult RunMethodSuite(const GeneratedWorld& world,
                           const SuiteOptions& options) {
  SuiteResult result;

  // --- One staged session drives every graph-based method: extraction,
  // blocking, and pair scoring run exactly once, and Synthesis plus its
  // ablations are partition/resolve re-runs over the identical ScoredGraph
  // artifact (previously each synthesis variant silently re-blocked and
  // re-scored the same candidates).
  SynthesisSession session(options.synthesis);
  if (!session.status().ok()) {
    MS_LOG(Error) << "RunMethodSuite: invalid synthesis options: "
                  << session.status().ToString();
    return result;
  }

  Timer prep_timer;
  Result<CandidateSet> cands_r = session.ExtractCandidates(world.corpus);
  if (!cands_r.ok()) {
    MS_LOG(Error) << "RunMethodSuite: extraction failed: "
                  << cands_r.status().ToString();
    return result;
  }
  CandidateSet cands = std::move(cands_r).value();
  const double prep_seconds = prep_timer.ElapsedSeconds();
  result.extraction_stats = cands.stats.extraction;
  result.num_candidates = cands.tables().size();
  const auto& candidates = cands.tables();
  const StringPool& pool = world.corpus.pool();

  // --- Shared compatibility graph for Synthesis + schema/correlation
  // baselines.
  Timer graph_timer;
  Result<BlockedPairs> blocked_r = session.BlockPairs(cands);
  if (!blocked_r.ok()) {
    MS_LOG(Error) << "RunMethodSuite: blocking failed: "
                  << blocked_r.status().ToString();
    return result;
  }
  Result<ScoredGraph> scored_r = session.ScorePairs(cands, blocked_r.value());
  if (!scored_r.ok()) {
    MS_LOG(Error) << "RunMethodSuite: scoring failed: "
                  << scored_r.status().ToString();
    return result;
  }
  ScoredGraph scored = std::move(scored_r).value();
  const CompatibilityGraph& graph = scored.graph;
  const double graph_seconds = graph_timer.ElapsedSeconds();
  result.graph_edges = graph.num_edges();

  // Partition + resolve over the shared graph artifact under the session's
  // current options; byte-identical to a monolithic run by construction.
  auto synthesize = [&](const char* name) {
    Timer t;
    Result<Partitions> parts = session.Partition(scored);
    if (!parts.ok()) {
      MS_LOG(Error) << "RunMethodSuite: " << name
                    << " partitioning failed: " << parts.status().ToString();
      return Entry(name, {}, 0.0, world);
    }
    Result<SynthesisResult> r = session.Resolve(cands, scored, parts.value());
    if (!r.ok()) {
      MS_LOG(Error) << "RunMethodSuite: " << name
                    << " resolution failed: " << r.status().ToString();
      return Entry(name, {}, 0.0, world);
    }
    return Entry(name, MappingsToRelations(r.value().mappings),
                 prep_seconds + graph_seconds + t.ElapsedSeconds(), world);
  };

  // --- Synthesis (full).
  result.entries.push_back(synthesize("Synthesis"));

  // --- Single-table methods.
  if (options.run_single_table) {
    if (options.enterprise) {
      Timer t;
      auto rels =
          SingleTableRelations(candidates, TableSource::kEnterprise);
      result.entries.push_back(Entry("EntTable", std::move(rels),
                                     prep_seconds + t.ElapsedSeconds(),
                                     world));
    } else {
      Timer t1;
      auto wiki = SingleTableRelations(candidates, TableSource::kWiki);
      result.entries.push_back(Entry("WikiTable", std::move(wiki),
                                     prep_seconds + t1.ElapsedSeconds(),
                                     world));
      Timer t2;
      auto web = SingleTableRelations(candidates, std::nullopt);
      result.entries.push_back(Entry("WebTable", std::move(web),
                                     prep_seconds + t2.ElapsedSeconds(),
                                     world));
    }
  }

  // --- Union baselines.
  if (options.run_union) {
    Timer t1;
    auto ud = UnionDomainRelations(candidates);
    result.entries.push_back(Entry("UnionDomain", std::move(ud),
                                   prep_seconds + t1.ElapsedSeconds(),
                                   world));
    Timer t2;
    auto uw = UnionWebRelations(candidates);
    result.entries.push_back(Entry("UnionWeb", std::move(uw),
                                   prep_seconds + t2.ElapsedSeconds(),
                                   world));
  }

  // --- SynthesisPos ablation (no FD-induced negative signals): an
  // option-swap on the same session, re-running partition/resolve only —
  // scoring does not depend on partitioner options.
  {
    SynthesisOptions pos = options.synthesis;
    pos.partitioner.use_negative_signals = false;
    if (session.UpdateOptions(pos).ok()) {
      result.entries.push_back(synthesize("SynthesisPos"));
      (void)session.UpdateOptions(options.synthesis);  // restore
    }
  }

  // --- Correlation clustering on the same graph.
  if (options.run_correlation) {
    Timer t;
    CorrelationOptions copts;
    copts.tau = options.synthesis.partitioner.tau;
    copts.positive_threshold = options.synthesis.partitioner.theta_edge;
    auto rels = CorrelationRelations(graph, candidates, copts);
    result.entries.push_back(
        Entry("Correlation", std::move(rels),
              prep_seconds + graph_seconds + t.ElapsedSeconds(), world));
  }

  // --- SchemaPosCC / SchemaCC threshold sweeps on the same graph.
  {
    Timer t1;
    auto pos_variants = SchemaCcThresholdSweep(
        graph, candidates, options.schema_cc_thresholds, false);
    result.entries.push_back(
        BestOfSweep("SchemaPosCC", std::move(pos_variants),
                    prep_seconds + graph_seconds + t1.ElapsedSeconds(),
                    world));
    Timer t2;
    auto neg_variants = SchemaCcThresholdSweep(
        graph, candidates, options.schema_cc_thresholds, true);
    result.entries.push_back(
        BestOfSweep("SchemaCC", std::move(neg_variants),
                    prep_seconds + graph_seconds + t2.ElapsedSeconds(),
                    world));
  }

  // --- WiseIntegrator (join-threshold sweep, best reported).
  if (options.run_wise_integrator) {
    Timer t;
    std::vector<std::vector<BinaryTable>> variants;
    for (double thr : options.wise_thresholds) {
      WiseIntegratorOptions wopts;
      wopts.join_threshold = thr;
      variants.push_back(WiseIntegratorRelations(candidates, pool, wopts));
    }
    result.entries.push_back(
        BestOfSweep("WiseIntegrator", std::move(variants),
                    prep_seconds + t.ElapsedSeconds(), world));
  }

  // --- Knowledge bases (lookup-only; near-zero runtime by construction).
  if (options.run_knowledge_bases) {
    StringPool* mutable_pool =
        const_cast<StringPool*>(&world.corpus.pool());
    Timer t1;
    auto fb = KnowledgeBaseRelations(world.specs, KbKind::kFreebase,
                                     mutable_pool);
    result.entries.push_back(
        Entry("Freebase", std::move(fb), t1.ElapsedSeconds(), world));
    Timer t2;
    auto yg = KnowledgeBaseRelations(world.specs, KbKind::kYago,
                                     mutable_pool);
    result.entries.push_back(
        Entry("YAGO", std::move(yg), t2.ElapsedSeconds(), world));
  }

  return result;
}

}  // namespace ms
