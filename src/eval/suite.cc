#include "eval/suite.h"

#include <utility>

#include "baselines/correlation.h"
#include "baselines/knowledge_base.h"
#include "baselines/schema_cc.h"
#include "baselines/single_table.h"
#include "baselines/union_tables.h"
#include "baselines/wise_integrator.h"
#include "common/timer.h"
#include "stats/inverted_index.h"

namespace ms {
namespace {

std::vector<BinaryTable> MappingsToRelations(
    const std::vector<SynthesizedMapping>& mappings) {
  std::vector<BinaryTable> out;
  out.reserve(mappings.size());
  for (const auto& m : mappings) out.push_back(m.merged);
  return out;
}

/// Picks the best-scoring sweep variant per the paper's protocol ("We tested
/// different thresholds in [0, 1] and report the best result").
SuiteEntry BestOfSweep(std::string name,
                       std::vector<std::vector<BinaryTable>> variants,
                       double seconds, const GeneratedWorld& world) {
  SuiteEntry best;
  best.output.method_name = name;
  best.output.runtime_seconds = seconds;
  bool first = true;
  for (auto& rels : variants) {
    MethodOutput out;
    out.method_name = name;
    out.relations = std::move(rels);
    out.runtime_seconds = seconds;
    MethodEvaluation eval = EvaluateMethod(out, world);
    if (first || eval.aggregate.avg_fscore >
                     best.evaluation.aggregate.avg_fscore) {
      best.output = std::move(out);
      best.evaluation = std::move(eval);
      first = false;
    }
  }
  return best;
}

SuiteEntry Entry(std::string name, std::vector<BinaryTable> relations,
                 double seconds, const GeneratedWorld& world) {
  SuiteEntry e;
  e.output.method_name = std::move(name);
  e.output.relations = std::move(relations);
  e.output.runtime_seconds = seconds;
  e.evaluation = EvaluateMethod(e.output, world);
  return e;
}

}  // namespace

SuiteResult RunMethodSuite(const GeneratedWorld& world,
                           const SuiteOptions& options) {
  SuiteResult result;
  ThreadPool threads(options.synthesis.num_threads);

  // --- Shared preprocessing: index + candidate extraction (Step 1). Its
  // cost is charged to every corpus-scanning method.
  Timer prep_timer;
  ColumnInvertedIndex index;
  index.Build(world.corpus);
  ExtractionResult extracted = ExtractCandidates(
      world.corpus, index, options.synthesis.extraction, &threads);
  const double prep_seconds = prep_timer.ElapsedSeconds();
  result.extraction_stats = extracted.stats;
  result.num_candidates = extracted.candidates.size();
  const auto& candidates = extracted.candidates;
  const StringPool& pool = world.corpus.pool();

  // --- Shared compatibility graph for Synthesis + schema/correlation
  // baselines.
  Timer graph_timer;
  PipelineStats graph_stats;
  CompatibilityGraph graph =
      BuildCompatibilityGraph(candidates, pool, options.synthesis.blocking,
                              options.synthesis.compat, &threads,
                              &graph_stats);
  const double graph_seconds = graph_timer.ElapsedSeconds();
  result.graph_edges = graph.num_edges();

  // --- Synthesis (full).
  {
    Timer t;
    SynthesisPipeline pipeline(options.synthesis);
    SynthesisResult r = pipeline.RunOnCandidates(candidates, pool);
    result.entries.push_back(Entry("Synthesis",
                                   MappingsToRelations(r.mappings),
                                   prep_seconds + t.ElapsedSeconds(), world));
  }

  // --- Single-table methods.
  if (options.run_single_table) {
    if (options.enterprise) {
      Timer t;
      auto rels =
          SingleTableRelations(candidates, TableSource::kEnterprise);
      result.entries.push_back(Entry("EntTable", std::move(rels),
                                     prep_seconds + t.ElapsedSeconds(),
                                     world));
    } else {
      Timer t1;
      auto wiki = SingleTableRelations(candidates, TableSource::kWiki);
      result.entries.push_back(Entry("WikiTable", std::move(wiki),
                                     prep_seconds + t1.ElapsedSeconds(),
                                     world));
      Timer t2;
      auto web = SingleTableRelations(candidates, std::nullopt);
      result.entries.push_back(Entry("WebTable", std::move(web),
                                     prep_seconds + t2.ElapsedSeconds(),
                                     world));
    }
  }

  // --- Union baselines.
  if (options.run_union) {
    Timer t1;
    auto ud = UnionDomainRelations(candidates);
    result.entries.push_back(Entry("UnionDomain", std::move(ud),
                                   prep_seconds + t1.ElapsedSeconds(),
                                   world));
    Timer t2;
    auto uw = UnionWebRelations(candidates);
    result.entries.push_back(Entry("UnionWeb", std::move(uw),
                                   prep_seconds + t2.ElapsedSeconds(),
                                   world));
  }

  // --- SynthesisPos ablation (no FD-induced negative signals).
  {
    Timer t;
    SynthesisOptions o = options.synthesis;
    o.partitioner.use_negative_signals = false;
    SynthesisPipeline pipeline(o);
    SynthesisResult r = pipeline.RunOnCandidates(candidates, pool);
    result.entries.push_back(
        Entry("SynthesisPos", MappingsToRelations(r.mappings),
              prep_seconds + t.ElapsedSeconds(), world));
  }

  // --- Correlation clustering on the same graph.
  if (options.run_correlation) {
    Timer t;
    CorrelationOptions copts;
    copts.tau = options.synthesis.partitioner.tau;
    copts.positive_threshold = options.synthesis.partitioner.theta_edge;
    auto rels = CorrelationRelations(graph, candidates, copts);
    result.entries.push_back(
        Entry("Correlation", std::move(rels),
              prep_seconds + graph_seconds + t.ElapsedSeconds(), world));
  }

  // --- SchemaPosCC / SchemaCC threshold sweeps on the same graph.
  {
    Timer t1;
    auto pos_variants = SchemaCcThresholdSweep(
        graph, candidates, options.schema_cc_thresholds, false);
    result.entries.push_back(
        BestOfSweep("SchemaPosCC", std::move(pos_variants),
                    prep_seconds + graph_seconds + t1.ElapsedSeconds(),
                    world));
    Timer t2;
    auto neg_variants = SchemaCcThresholdSweep(
        graph, candidates, options.schema_cc_thresholds, true);
    result.entries.push_back(
        BestOfSweep("SchemaCC", std::move(neg_variants),
                    prep_seconds + graph_seconds + t2.ElapsedSeconds(),
                    world));
  }

  // --- WiseIntegrator (join-threshold sweep, best reported).
  if (options.run_wise_integrator) {
    Timer t;
    std::vector<std::vector<BinaryTable>> variants;
    for (double thr : options.wise_thresholds) {
      WiseIntegratorOptions wopts;
      wopts.join_threshold = thr;
      variants.push_back(WiseIntegratorRelations(candidates, pool, wopts));
    }
    result.entries.push_back(
        BestOfSweep("WiseIntegrator", std::move(variants),
                    prep_seconds + t.ElapsedSeconds(), world));
  }

  // --- Knowledge bases (lookup-only; near-zero runtime by construction).
  if (options.run_knowledge_bases) {
    StringPool* mutable_pool =
        const_cast<StringPool*>(&world.corpus.pool());
    Timer t1;
    auto fb = KnowledgeBaseRelations(world.specs, KbKind::kFreebase,
                                     mutable_pool);
    result.entries.push_back(
        Entry("Freebase", std::move(fb), t1.ElapsedSeconds(), world));
    Timer t2;
    auto yg = KnowledgeBaseRelations(world.specs, KbKind::kYago,
                                     mutable_pool);
    result.entries.push_back(
        Entry("YAGO", std::move(yg), t2.ElapsedSeconds(), world));
  }

  return result;
}

}  // namespace ms
