// The full method suite of Figure 7: runs Synthesis, its ablations, and all
// baselines on one generated world with per-method wall-clock timing. All
// graph-based methods (SchemaCC, SchemaPosCC, Correlation) consume the very
// same compatibility graph as Synthesis, matching the paper's setup.
#pragma once

#include <string>
#include <vector>

#include "corpusgen/generator.h"
#include "eval/runner.h"
#include "synth/pipeline.h"

namespace ms {

struct SuiteOptions {
  SynthesisOptions synthesis;
  /// Thresholds swept for SchemaCC / SchemaPosCC (best result reported, as
  /// in the paper).
  std::vector<double> schema_cc_thresholds = {0.2, 0.4, 0.6, 0.8};
  /// Join thresholds swept for WiseIntegrator (best reported).
  std::vector<double> wise_thresholds = {0.55, 0.7, 0.85};
  bool run_correlation = true;
  bool run_wise_integrator = true;
  bool run_knowledge_bases = true;
  bool run_single_table = true;
  bool run_union = true;
  bool enterprise = false;  ///< EntTable instead of WikiTable/WebTable
};

/// Everything a quality/runtime figure needs for one method.
struct SuiteEntry {
  MethodOutput output;
  MethodEvaluation evaluation;
};

struct SuiteResult {
  std::vector<SuiteEntry> entries;   ///< ordered as in Figure 7
  ExtractionStats extraction_stats;
  size_t num_candidates = 0;
  size_t graph_edges = 0;
};

/// Runs every enabled method on `world` and evaluates it.
SuiteResult RunMethodSuite(const GeneratedWorld& world,
                           const SuiteOptions& options = {});

}  // namespace ms
