#include "extract/candidate_extraction.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_set>

#include "extract/normalization_cache.h"

namespace ms {
namespace {

bool MostlyNumeric(const StringPool& pool, const BinaryTable& b) {
  size_t numeric = 0;
  for (const auto& p : b.pairs()) {
    if (LooksNumeric(pool.Get(p.left))) ++numeric;
  }
  return numeric * 2 > b.size();
}

/// The coherence half of Algorithm 1 for one table: width gate + per-column
/// PMI filter. Fills `kept` with the surviving column indices (left empty
/// for width-skipped tables) and the per-table counters. When `profiles`
/// is non-null and the filter is enabled, records one margin-cache profile
/// per column of a width-passed table.
void ComputeKeptColumns(const Table& t, const ColumnInvertedIndex& index,
                        const ExtractionOptions& options, ExtractionStats* st,
                        std::vector<uint32_t>* kept,
                        std::vector<CoherenceProfile>* profiles = nullptr) {
  st->tables_seen += 1;
  st->columns_seen += t.num_columns();
  if (t.num_columns() < 2 || t.num_columns() > options.max_columns) return;
  const bool record =
      profiles != nullptr && options.coherence_threshold > -1.0;
  for (size_t c = 0; c < t.columns.size(); ++c) {
    CoherenceProfile profile;
    if (ColumnPassesCoherence(index, t.columns[c], options,
                              record ? &profile : nullptr)) {
      kept->push_back(static_cast<uint32_t>(c));
    }
    if (record) profiles->push_back(profile);
  }
  st->columns_kept += kept->size();
}

/// The index-independent half of Algorithm 1 for one table: normalization
/// plus the FD filter over the kept columns. Depends only on the table's
/// own cells and the options, never on corpus-global statistics — the
/// invariant incremental appends rely on.
void ExtractFromKept(const Table& t, const std::vector<uint32_t>& kept,
                     const StringPool& pool, ShardedNormalizationCache* norm,
                     const ExtractionOptions& options, ExtractionStats* st,
                     std::vector<BinaryTable>* out) {
  if (kept.size() < 2) return;

  // Normalize the kept columns once, one sharded-cache batch per column.
  std::vector<std::vector<ValueId>> norm_cols(kept.size());
  for (size_t k = 0; k < kept.size(); ++k) {
    norm->NormalizeBatch(t.columns[kept[k]].cells, &norm_cols[k]);
  }

  // --- FD filter over all ordered pairs (Algorithm 1 lines 7-10).
  for (size_t a = 0; a < kept.size(); ++a) {
    for (size_t b = 0; b < kept.size(); ++b) {
      if (a == b) continue;
      ++st->pairs_considered;
      std::vector<ValuePair> pairs;
      const size_t rows = std::min(norm_cols[a].size(), norm_cols[b].size());
      pairs.reserve(rows);
      for (size_t r = 0; r < rows; ++r) {
        ValueId l = norm_cols[a][r];
        ValueId rv = norm_cols[b][r];
        if (l == kInvalidValueId || rv == kInvalidValueId) continue;
        if (l == rv) continue;  // self-mapping rows carry no signal
        pairs.push_back({l, rv});
      }
      BinaryTable cand = BinaryTable::FromPairs(std::move(pairs));
      if (cand.size() < options.min_pairs) continue;
      if (!cand.IsApproximateMapping(options.fd_theta)) continue;
      if (options.drop_numeric_left && MostlyNumeric(pool, cand)) {
        continue;
      }
      cand.source_table = t.id;
      cand.domain = t.domain;
      cand.source = t.source;
      cand.left_name = t.columns[kept[a]].name;
      cand.right_name = t.columns[kept[b]].name;
      ++st->pairs_kept;
      out->push_back(std::move(cand));
    }
  }
}

template <typename T>
void BuildCsr(const std::vector<std::vector<T>>& per_table,
              std::vector<uint32_t>* offsets, std::vector<T>* flat) {
  offsets->clear();
  flat->clear();
  offsets->reserve(per_table.size() + 1);
  offsets->push_back(0);
  size_t total = 0;
  for (const auto& k : per_table) total += k.size();
  flat->reserve(total);
  for (const auto& k : per_table) {
    flat->insert(flat->end(), k.begin(), k.end());
    offsets->push_back(static_cast<uint32_t>(flat->size()));
  }
}

}  // namespace

Status ExtractionOptions::Validate() const {
  if (!std::isfinite(coherence_threshold)) {
    return Status::InvalidArgument(
        "extraction.coherence_threshold must be finite");
  }
  if (!std::isfinite(fd_theta) || fd_theta <= 0.0 || fd_theta > 1.0) {
    return Status::InvalidArgument(
        "extraction.fd_theta must be in (0, 1]: it is the fraction of rows "
        "the approximate FD must hold over (Definition 2), got " +
        std::to_string(fd_theta));
  }
  if (min_pairs == 0) {
    return Status::InvalidArgument(
        "extraction.min_pairs must be >= 1: empty candidate tables divide "
        "by zero in every containment score downstream");
  }
  if (max_columns < 2) {
    return Status::InvalidArgument(
        "extraction.max_columns must be >= 2: a table needs two columns to "
        "yield a binary relationship");
  }
  return Status::OK();
}

bool ColumnPassesCoherence(const ColumnInvertedIndex& index,
                           const Column& column,
                           const ExtractionOptions& options,
                           CoherenceProfile* profile) {
  // Pairwise NPMI lives in [-1, 1] (and the empty/single-value columns
  // score 0/1), so a threshold at or below the floor passes every column
  // by definition — skip the sampled co-occurrence scoring entirely. This
  // is the filter-disabled configuration; the short-circuit makes its cost
  // actually zero, which is what lets incremental appends skip the
  // corpus-global re-check tax (docs/performance.md).
  if (options.coherence_threshold <= -1.0) return true;
  const double s =
      ColumnCoherence(index, column.cells, options.coherence, profile);
  return s >= options.coherence_threshold;
}

ExtractionResult ExtractCandidates(const TableCorpus& corpus,
                                   const ColumnInvertedIndex& index,
                                   const ExtractionOptions& options,
                                   ThreadPool* pool) {
  ExtractionResult result;
  auto shared_pool = corpus.shared_pool();
  ShardedNormalizationCache norm(shared_pool.get(), options.normalize);

  const auto& tables = corpus.tables();
  std::vector<std::vector<BinaryTable>> per_table(tables.size());
  std::vector<std::vector<uint32_t>> per_kept(tables.size());
  std::vector<std::vector<CoherenceProfile>> per_margin(tables.size());
  std::vector<ExtractionStats> per_stats(tables.size());
  const bool margins_on = options.coherence_threshold > -1.0;

  auto process = [&](size_t ti) {
    const Table& t = tables[ti];
    ExtractionStats& st = per_stats[ti];
    ComputeKeptColumns(t, index, options, &st, &per_kept[ti],
                       margins_on ? &per_margin[ti] : nullptr);
    ExtractFromKept(t, per_kept[ti], corpus.pool(), &norm, options, &st,
                    &per_table[ti]);
  };

  if (pool) {
    pool->ParallelFor(tables.size(), process);
  } else {
    for (size_t i = 0; i < tables.size(); ++i) process(i);
  }

  result.stats.normalize_cache_hits = norm.hits();
  result.stats.normalize_cache_misses = norm.misses();
  for (size_t i = 0; i < tables.size(); ++i) {
    result.stats.tables_seen += per_stats[i].tables_seen;
    result.stats.columns_seen += per_stats[i].columns_seen;
    result.stats.columns_kept += per_stats[i].columns_kept;
    result.stats.pairs_considered += per_stats[i].pairs_considered;
    result.stats.pairs_kept += per_stats[i].pairs_kept;
    for (auto& cand : per_table[i]) {
      cand.id = static_cast<BinaryTableId>(result.candidates.size());
      result.candidates.push_back(std::move(cand));
    }
  }
  BuildCsr(per_kept, &result.kept_offsets, &result.kept_columns);
  if (margins_on) {
    BuildCsr(per_margin, &result.margin_offsets, &result.margins);
  }
  return result;
}

DeltaExtractionResult ExtractCandidatesDelta(
    const TableCorpus& corpus, const ColumnInvertedIndex& index,
    const DeltaExtractionRequest& request, const ExtractionOptions& options,
    ThreadPool* pool) {
  DeltaExtractionResult result;
  auto shared_pool = corpus.shared_pool();
  ShardedNormalizationCache norm(shared_pool.get(), options.normalize);

  const size_t first_new_table = request.first_new_table;
  const auto& tables = corpus.tables();
  std::vector<std::vector<BinaryTable>> per_table(tables.size());
  std::vector<std::vector<uint32_t>> per_kept(tables.size());
  std::vector<std::vector<CoherenceProfile>> per_margin(tables.size());
  std::vector<ExtractionStats> per_stats(tables.size());
  std::vector<uint8_t> flipped(first_new_table, 0);
  std::atomic<size_t> skips{0};
  std::atomic<size_t> rechecks{0};
  const bool margins_on = options.coherence_threshold > -1.0;

  // The touched-value set: values whose column frequency (and hence any
  // co-occurrence involving them) may have moved under this mutation —
  // everything the removed tables held plus everything the appended tables
  // hold. A live old column containing none of them kept all its counts,
  // so its cached margin bound applies.
  std::unordered_set<ValueId> touched(request.removed_values.begin(),
                                      request.removed_values.end());
  for (size_t ti = first_new_table; ti < tables.size(); ++ti) {
    for (const Column& c : tables[ti].columns) {
      touched.insert(c.cells.begin(), c.cells.end());
    }
  }
  auto column_touched = [&](const Column& c) {
    if (touched.empty()) return false;
    for (ValueId v : c.cells) {
      if (touched.count(v) > 0) return true;
    }
    return false;
  };

  // Base margin slices are usable only when the base run recorded them in
  // the expected CSR shape (pre-v3 snapshots restore without any).
  const bool have_margins =
      margins_on && request.base_margin_offsets != nullptr &&
      request.base_margins != nullptr &&
      request.base_margin_offsets->size() == first_new_table + 1;

  auto process_old = [&](size_t ti) {
    const Table& t = tables[ti];
    auto& kept = per_kept[ti];
    auto& margin = per_margin[ti];
    if (t.num_columns() < 2 || t.num_columns() > options.max_columns) {
      // Width-skipped (including freshly tombstoned shells): the kept set
      // is empty by construction and index-independent.
      return;
    }
    const uint32_t mbegin =
        have_margins ? (*request.base_margin_offsets)[ti] : 0;
    const uint32_t mend =
        have_margins ? (*request.base_margin_offsets)[ti + 1] : 0;
    const bool slice_ok =
        have_margins && mend - mbegin == t.num_columns();
    const size_t n_now = index.num_columns();
    for (size_t c = 0; c < t.columns.size(); ++c) {
      bool pass;
      if (!margins_on) {
        pass = true;
      } else if (slice_ok && !column_touched(t.columns[c]) &&
                 CoherenceVerdictStable(
                     (*request.base_margins)[mbegin + c],
                     options.coherence_threshold, n_now)) {
        // Counts provably unchanged + bound says the verdict cannot have
        // flipped: reuse it without touching a posting list.
        const CoherenceProfile& p = (*request.base_margins)[mbegin + c];
        pass = p.score >= options.coherence_threshold;
        margin.push_back(p);
        skips.fetch_add(1, std::memory_order_relaxed);
      } else {
        CoherenceProfile fresh;
        pass = ColumnPassesCoherence(index, t.columns[c], options, &fresh);
        margin.push_back(fresh);
        rechecks.fetch_add(1, std::memory_order_relaxed);
      }
      if (pass) kept.push_back(static_cast<uint32_t>(c));
    }
    // Signature comparison: a changed kept set means the base candidates
    // of this table no longer match what a cold rebuild would extract.
    const uint32_t begin = (*request.base_kept_offsets)[ti];
    const uint32_t end = (*request.base_kept_offsets)[ti + 1];
    if (kept.size() != end - begin ||
        !std::equal(kept.begin(), kept.end(),
                    request.base_kept_columns->begin() + begin)) {
      flipped[ti] = 1;
      ExtractionStats scratch;  // counters excluded from result.stats
      ExtractFromKept(t, kept, corpus.pool(), &norm, options, &scratch,
                      &per_table[ti]);
    }
  };

  auto process = [&](size_t ti) {
    if (ti < first_new_table) {
      if (std::binary_search(request.removed_tables.begin(),
                             request.removed_tables.end(),
                             static_cast<TableId>(ti))) {
        // Tombstoned this mutation: empty signature, no flip, no margins —
        // the caller retires its candidates directly.
        return;
      }
      process_old(ti);
      return;
    }
    const Table& t = tables[ti];
    ExtractionStats& st = per_stats[ti];
    ComputeKeptColumns(t, index, options, &st, &per_kept[ti],
                       margins_on ? &per_margin[ti] : nullptr);
    ExtractFromKept(t, per_kept[ti], corpus.pool(), &norm, options, &st,
                    &per_table[ti]);
  };

  if (pool) {
    pool->ParallelFor(tables.size(), process);
  } else {
    for (size_t i = 0; i < tables.size(); ++i) process(i);
  }

  for (size_t i = 0; i < first_new_table; ++i) {
    if (flipped[i]) result.flipped_tables.push_back(static_cast<TableId>(i));
  }
  result.unstable_tables = result.flipped_tables.size();
  result.stable = result.flipped_tables.empty();
  result.margin_skips = skips.load();
  result.margin_rechecks = rechecks.load();
  result.stats.normalize_cache_hits = norm.hits();
  result.stats.normalize_cache_misses = norm.misses();
  for (size_t i = first_new_table; i < tables.size(); ++i) {
    result.stats.tables_seen += per_stats[i].tables_seen;
    result.stats.columns_seen += per_stats[i].columns_seen;
    result.stats.columns_kept += per_stats[i].columns_kept;
    result.stats.pairs_considered += per_stats[i].pairs_considered;
    result.stats.pairs_kept += per_stats[i].pairs_kept;
  }
  for (size_t i = 0; i < tables.size(); ++i) {
    for (auto& cand : per_table[i]) {
      cand.id = static_cast<BinaryTableId>(request.first_new_id +
                                           result.new_candidates.size());
      result.new_candidates.push_back(std::move(cand));
    }
  }
  BuildCsr(per_kept, &result.kept_offsets, &result.kept_columns);
  if (margins_on) {
    BuildCsr(per_margin, &result.margin_offsets, &result.margins);
  }
  return result;
}

}  // namespace ms
