// Step 1 of the pipeline (Section 3, Algorithm 1): from each corpus table,
// extract ordered two-column candidate tables, dropping
//   (a) incoherent columns (PMI/NPMI coherence below threshold), and
//   (b) column pairs whose local relationship is not a θ-approximate FD.
// Cell values are normalized (text/normalize.h) before candidates are built,
// so all downstream matching operates on normalized values.
#pragma once

#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "stats/coherence.h"
#include "stats/inverted_index.h"
#include "table/binary_table.h"
#include "table/corpus.h"
#include "text/normalize.h"

namespace ms {

struct ExtractionOptions {
  /// Columns with coherence S(C) below this are removed (Section 3.1).
  double coherence_threshold = 0.10;
  /// θ for the approximate-FD check (Definition 2; the paper uses 95%).
  double fd_theta = 0.95;
  /// Candidate tables with fewer distinct pairs than this are dropped:
  /// tiny fragments provide no synthesis signal.
  size_t min_pairs = 3;
  /// Tables wider than this are skipped (guards pathological extractions).
  size_t max_columns = 16;
  /// Drop candidates whose left column is dominated by numeric values
  /// (Section 4.3 suggests pruning numeric/temporal relationships).
  bool drop_numeric_left = false;

  CoherenceOptions coherence;
  NormalizeOptions normalize;

  /// InvalidArgument on out-of-domain thresholds: fd_theta outside (0, 1]
  /// (Definition 2 is a fraction of rows), min_pairs == 0 (an empty
  /// candidate carries no synthesis signal and breaks downstream ratios),
  /// max_columns < 2 (no column pair can ever form), or a non-finite
  /// coherence threshold.
  Status Validate() const;

  bool operator==(const ExtractionOptions&) const = default;
};

/// Statistics reported alongside candidates (the paper notes ~78% of raw
/// column pairs are filtered out by these two steps).
struct ExtractionStats {
  size_t tables_seen = 0;
  size_t columns_seen = 0;
  size_t columns_kept = 0;        ///< survived the PMI coherence filter
  size_t pairs_considered = 0;    ///< ordered pairs among kept columns
  size_t pairs_kept = 0;          ///< survived the FD filter
  size_t normalize_cache_hits = 0;    ///< cell lookups served from the cache
  size_t normalize_cache_misses = 0;  ///< distinct values actually normalized

  double FilterRate() const {
    return pairs_considered == 0
               ? 0.0
               : 1.0 - static_cast<double>(pairs_kept) /
                           static_cast<double>(pairs_considered);
  }
};

struct ExtractionResult {
  std::vector<BinaryTable> candidates;  ///< ids assigned densely from 0
  ExtractionStats stats;
  /// Per-table kept-column signatures, CSR over corpus table index:
  /// kept_columns[kept_offsets[t] .. kept_offsets[t+1]) are the column
  /// indices of table t that passed the PMI coherence filter (empty for
  /// width-skipped tables). Column coherence is a corpus-global statistic
  /// (it reads |C(u)| and N from the inverted index), so growing the corpus
  /// can in principle flip a verdict; incremental appends re-check these
  /// signatures under the grown index — everything *downstream* of the kept
  /// set (normalization, the FD filter, candidate assembly) depends only on
  /// the table's own cells and is append-invariant.
  std::vector<uint32_t> kept_offsets;  ///< size tables + 1
  std::vector<uint32_t> kept_columns;
  /// Margin cache: one CoherenceProfile per column of every width-passed
  /// table (CSR over corpus table index, same shape discipline as kept_*;
  /// empty slices for width-skipped tables). Incremental maintenance uses
  /// these to prove a column's verdict cannot flip under the mutated index
  /// without re-touching the posting lists (CoherenceVerdictStable). Both
  /// vectors stay empty when the coherence filter is disabled
  /// (coherence_threshold <= -1), where verdicts are index-independent.
  std::vector<uint32_t> margin_offsets;  ///< size tables + 1, or empty
  std::vector<CoherenceProfile> margins;
};

/// Runs Algorithm 1 over the whole corpus. `index` must have been built on
/// `corpus`. Normalized values are interned into the corpus pool. Thread
/// pool optional (per-table parallelism).
ExtractionResult ExtractCandidates(const TableCorpus& corpus,
                                   const ColumnInvertedIndex& index,
                                   const ExtractionOptions& options = {},
                                   ThreadPool* pool = nullptr);

/// Inputs for one incremental extraction pass over a mutated corpus
/// (appended and/or tombstoned tables). The base signatures come from the
/// previous artifact generation; the margin cache is optional (snapshots
/// from before format v3 restore without one — every column then pays an
/// exact re-check once and the cache repopulates).
struct DeltaExtractionRequest {
  /// Tables [first_new_table, corpus.size()) are the appended delta.
  size_t first_new_table = 0;
  /// New candidates (appended tables' and flipped tables' re-extractions)
  /// get ids assigned densely from here, in corpus-table order.
  BinaryTableId first_new_id = 0;
  const std::vector<uint32_t>* base_kept_offsets = nullptr;
  const std::vector<uint32_t>* base_kept_columns = nullptr;
  const std::vector<uint32_t>* base_margin_offsets = nullptr;  ///< optional
  const std::vector<CoherenceProfile>* base_margins = nullptr; ///< optional
  /// Tables tombstoned by this mutation (sorted ids, already cleared in the
  /// corpus). Their signatures are reset to empty without counting as
  /// flips — the caller tombstones their candidates wholesale.
  std::vector<TableId> removed_tables;
  /// Every distinct cell value the removed tables held, captured before
  /// the tombstoning cleared them. Together with the appended tables'
  /// values this is the "touched" set: an old column containing none of
  /// these provably kept all its value counts, which is what lets the
  /// margin cache skip its coherence re-check.
  std::vector<ValueId> removed_values;
};

/// Output of one incremental extraction pass (SynthesisSession::
/// AppendTables / RemoveTables / ReplaceTables): candidates for the
/// appended tables — plus re-extractions for any old table whose
/// kept-column signature flipped under the mutated index — and the union
/// signatures for the merged artifact.
struct DeltaExtractionResult {
  /// Candidates of appended tables and of flipped old tables, ids assigned
  /// densely from `first_new_id` in corpus-table order (flipped tables
  /// sort before appended ones). When `stable` holds these are exactly the
  /// ids a cold run over the grown corpus would assign the appended
  /// tables' candidates.
  std::vector<BinaryTable> new_candidates;
  /// Counters for the appended tables only (add to the base run's to get
  /// the union totals; flipped re-extractions are deliberately excluded so
  /// the stable path stays byte-identical to a cold rebuild's counters).
  /// Normalize-cache counters cover this pass alone.
  ExtractionStats stats;
  /// True iff no live old table's kept-column set changed under the
  /// mutated index. When false, `flipped_tables` lists the tables whose
  /// base candidates the caller must tombstone in favor of the
  /// re-extractions included in `new_candidates`.
  bool stable = false;
  /// How many old tables' kept sets flipped (observability: a fleet whose
  /// appends keep re-extracting wants to know whether one borderline
  /// column or a corpus-wide drift is responsible).
  size_t unstable_tables = 0;
  std::vector<TableId> flipped_tables;  ///< sorted
  /// Margin-cache effectiveness: columns whose verdict the cached bound
  /// settled without touching the index vs columns that paid the exact
  /// sampled re-check.
  size_t margin_skips = 0;
  size_t margin_rechecks = 0;
  /// Union signatures (old tables re-checked + appended tables), ready to
  /// carry on the merged candidate artifact.
  std::vector<uint32_t> kept_offsets;
  std::vector<uint32_t> kept_columns;
  std::vector<uint32_t> margin_offsets;
  std::vector<CoherenceProfile> margins;
};

/// Incremental Algorithm 1: `index` must reflect the *mutated* corpus
/// (appended tables indexed, removed tables' columns dropped). Re-checks
/// coherence signatures of live tables [0, first_new_table) against the
/// base run's CSR — through the margin cache when the bound applies, via
/// exact sampled re-scoring when it does not — fully extracts tables
/// [first_new_table, corpus.size()), and re-extracts any old table whose
/// kept set flipped. The re-check tax is what the margin cache amortizes:
/// an untouched column with a comfortable margin never re-reads the index.
DeltaExtractionResult ExtractCandidatesDelta(
    const TableCorpus& corpus, const ColumnInvertedIndex& index,
    const DeltaExtractionRequest& request,
    const ExtractionOptions& options = {}, ThreadPool* pool = nullptr);

/// Exposed for tests: true when the column passes the coherence filter.
/// Fills `profile` (when given and the filter is enabled) with the margin
/// cache for the evaluation.
bool ColumnPassesCoherence(const ColumnInvertedIndex& index,
                           const Column& column,
                           const ExtractionOptions& options,
                           CoherenceProfile* profile = nullptr);

}  // namespace ms
