// Step 1 of the pipeline (Section 3, Algorithm 1): from each corpus table,
// extract ordered two-column candidate tables, dropping
//   (a) incoherent columns (PMI/NPMI coherence below threshold), and
//   (b) column pairs whose local relationship is not a θ-approximate FD.
// Cell values are normalized (text/normalize.h) before candidates are built,
// so all downstream matching operates on normalized values.
#pragma once

#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "stats/coherence.h"
#include "stats/inverted_index.h"
#include "table/binary_table.h"
#include "table/corpus.h"
#include "text/normalize.h"

namespace ms {

struct ExtractionOptions {
  /// Columns with coherence S(C) below this are removed (Section 3.1).
  double coherence_threshold = 0.10;
  /// θ for the approximate-FD check (Definition 2; the paper uses 95%).
  double fd_theta = 0.95;
  /// Candidate tables with fewer distinct pairs than this are dropped:
  /// tiny fragments provide no synthesis signal.
  size_t min_pairs = 3;
  /// Tables wider than this are skipped (guards pathological extractions).
  size_t max_columns = 16;
  /// Drop candidates whose left column is dominated by numeric values
  /// (Section 4.3 suggests pruning numeric/temporal relationships).
  bool drop_numeric_left = false;

  CoherenceOptions coherence;
  NormalizeOptions normalize;

  /// InvalidArgument on out-of-domain thresholds: fd_theta outside (0, 1]
  /// (Definition 2 is a fraction of rows), min_pairs == 0 (an empty
  /// candidate carries no synthesis signal and breaks downstream ratios),
  /// max_columns < 2 (no column pair can ever form), or a non-finite
  /// coherence threshold.
  Status Validate() const;

  bool operator==(const ExtractionOptions&) const = default;
};

/// Statistics reported alongside candidates (the paper notes ~78% of raw
/// column pairs are filtered out by these two steps).
struct ExtractionStats {
  size_t tables_seen = 0;
  size_t columns_seen = 0;
  size_t columns_kept = 0;        ///< survived the PMI coherence filter
  size_t pairs_considered = 0;    ///< ordered pairs among kept columns
  size_t pairs_kept = 0;          ///< survived the FD filter
  size_t normalize_cache_hits = 0;    ///< cell lookups served from the cache
  size_t normalize_cache_misses = 0;  ///< distinct values actually normalized

  double FilterRate() const {
    return pairs_considered == 0
               ? 0.0
               : 1.0 - static_cast<double>(pairs_kept) /
                           static_cast<double>(pairs_considered);
  }
};

struct ExtractionResult {
  std::vector<BinaryTable> candidates;  ///< ids assigned densely from 0
  ExtractionStats stats;
  /// Per-table kept-column signatures, CSR over corpus table index:
  /// kept_columns[kept_offsets[t] .. kept_offsets[t+1]) are the column
  /// indices of table t that passed the PMI coherence filter (empty for
  /// width-skipped tables). Column coherence is a corpus-global statistic
  /// (it reads |C(u)| and N from the inverted index), so growing the corpus
  /// can in principle flip a verdict; incremental appends re-check these
  /// signatures under the grown index — everything *downstream* of the kept
  /// set (normalization, the FD filter, candidate assembly) depends only on
  /// the table's own cells and is append-invariant.
  std::vector<uint32_t> kept_offsets;  ///< size tables + 1
  std::vector<uint32_t> kept_columns;
};

/// Runs Algorithm 1 over the whole corpus. `index` must have been built on
/// `corpus`. Normalized values are interned into the corpus pool. Thread
/// pool optional (per-table parallelism).
ExtractionResult ExtractCandidates(const TableCorpus& corpus,
                                   const ColumnInvertedIndex& index,
                                   const ExtractionOptions& options = {},
                                   ThreadPool* pool = nullptr);

/// Output of one incremental extraction pass (SynthesisSession::
/// AppendTables): candidates for the appended tables plus the verdict on
/// whether every pre-existing table's kept-column signature survived the
/// index growth.
struct DeltaExtractionResult {
  /// Candidates extracted from tables [first_new_table, corpus.size()),
  /// ids assigned densely from `first_new_id` in table order — exactly the
  /// ids a cold run over the grown corpus would assign them, provided
  /// `stable` holds.
  std::vector<BinaryTable> new_candidates;
  /// Counters for the appended tables only (add to the base run's to get
  /// the union totals). Normalize-cache counters cover this pass alone.
  ExtractionStats stats;
  /// True iff every old table's kept-column set under the grown index
  /// equals its base signature. When false the old candidate list itself
  /// would change under a cold rebuild and the caller must fall back to
  /// full re-extraction.
  bool stable = false;
  /// How many old tables' kept sets flipped (observability: a fleet whose
  /// appends keep falling back wants to know whether one borderline column
  /// or a corpus-wide drift is responsible).
  size_t unstable_tables = 0;
  /// Union signatures (old tables re-checked + appended tables), ready to
  /// carry on the merged candidate artifact.
  std::vector<uint32_t> kept_offsets;
  std::vector<uint32_t> kept_columns;
};

/// Incremental Algorithm 1: `index` must have been built over the *grown*
/// corpus. Re-checks coherence signatures of tables [0, first_new_table)
/// against the base run's CSR (base_kept_*) and fully extracts tables
/// [first_new_table, corpus.size()). The coherence re-check is the
/// exactness tax of incremental extraction — it is sampled and
/// FD-filter-free, a small fraction of full extraction.
DeltaExtractionResult ExtractCandidatesDelta(
    const TableCorpus& corpus, const ColumnInvertedIndex& index,
    size_t first_new_table, BinaryTableId first_new_id,
    const std::vector<uint32_t>& base_kept_offsets,
    const std::vector<uint32_t>& base_kept_columns,
    const ExtractionOptions& options = {}, ThreadPool* pool = nullptr);

/// Exposed for tests: true when the column passes the coherence filter.
bool ColumnPassesCoherence(const ColumnInvertedIndex& index,
                           const Column& column,
                           const ExtractionOptions& options);

}  // namespace ms
