#include "extract/normalization_cache.h"

#include <algorithm>

namespace ms {

ShardedNormalizationCache::ShardedNormalizationCache(
    StringPool* pool, const NormalizeOptions& opts, size_t num_shards)
    : pool_(pool), opts_(opts) {
  size_t n = 1;
  while (n < num_shards) n <<= 1;
  shard_mask_ = n - 1;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

ValueId ShardedNormalizationCache::MissLocked(Shard& shard, ValueId raw) {
  // Normalizing under the shard lock is deliberate: it closes the window in
  // which a second thread could also miss and normalize the same raw value.
  // Other shards stay fully concurrent.
  std::string norm = NormalizeCell(pool_->Get(raw), opts_);
  misses_.fetch_add(1, std::memory_order_relaxed);
  ValueId id = norm.empty() ? kInvalidValueId : pool_->Intern(norm);
  shard.map.emplace(raw, id);
  return id;
}

ValueId ShardedNormalizationCache::Normalized(ValueId raw) {
  Shard& shard = *shards_[ShardOf(raw)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(raw);
  if (it != shard.map.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  return MissLocked(shard, raw);
}

void ShardedNormalizationCache::NormalizeBatch(const std::vector<ValueId>& raw,
                                               std::vector<ValueId>* out) {
  out->assign(raw.size(), kInvalidValueId);
  if (raw.empty()) return;

  // Columns repeat values heavily; resolve each distinct raw id once and
  // fan the results back out with a binary search at the end.
  std::vector<ValueId> distinct(raw);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  std::vector<ValueId> norm(distinct.size(), kInvalidValueId);

  std::vector<std::vector<size_t>> buckets(shards_.size());
  for (size_t di = 0; di < distinct.size(); ++di) {
    buckets[ShardOf(distinct[di])].push_back(di);
  }

  // Duplicates collapsed by the distinct step never touch the cache, but
  // they are still lookups served without normalizing — count them as hits
  // so hit/miss totals stay comparable with the per-cell path.
  size_t local_hits = raw.size() - distinct.size();
  size_t local_misses = 0;
  std::vector<size_t> miss_idx;
  std::vector<std::string> miss_strs;
  std::vector<ValueId> miss_ids;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    miss_idx.clear();
    miss_strs.clear();
    for (size_t di : buckets[s]) {
      auto it = shard.map.find(distinct[di]);
      if (it != shard.map.end()) {
        norm[di] = it->second;
        ++local_hits;
        continue;
      }
      ++local_misses;
      std::string ns = NormalizeCell(pool_->Get(distinct[di]), opts_);
      if (ns.empty()) {
        shard.map.emplace(distinct[di], kInvalidValueId);
      } else {
        miss_idx.push_back(di);
        miss_strs.push_back(std::move(ns));
      }
    }
    if (!miss_strs.empty()) {
      // One pool lock for the whole shard's misses instead of one per cell.
      miss_ids.clear();
      pool_->InternBatch(miss_strs, &miss_ids);
      for (size_t i = 0; i < miss_idx.size(); ++i) {
        norm[miss_idx[i]] = miss_ids[i];
        shard.map.emplace(distinct[miss_idx[i]], miss_ids[i]);
      }
    }
  }
  hits_.fetch_add(local_hits, std::memory_order_relaxed);
  misses_.fetch_add(local_misses, std::memory_order_relaxed);

  for (size_t i = 0; i < raw.size(); ++i) {
    const size_t pos = static_cast<size_t>(
        std::lower_bound(distinct.begin(), distinct.end(), raw[i]) -
        distinct.begin());
    (*out)[i] = norm[pos];
  }
}

}  // namespace ms
