// Thread-safe cache of raw ValueId -> normalized ValueId used by candidate
// extraction. The seed implementation guarded one global map with one mutex
// and released it while normalizing, which (a) serialized every extraction
// worker on a single lock and (b) let two threads that both missed the same
// raw value normalize and intern it twice (the "double-normalize race" —
// harmless for correctness because interning is idempotent, but wasted work
// and a lock convoy at scale). This version stripes the cache across
// independently locked shards and holds the owning shard's lock across
// normalize+intern, so each raw value is normalized exactly once and
// workers only contend when they touch the same shard.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hashing.h"
#include "table/string_pool.h"
#include "text/normalize.h"

namespace ms {

class ShardedNormalizationCache {
 public:
  /// `num_shards` is rounded up to a power of two. 16 shards keeps the
  /// collision probability for typical worker counts (<= 16) low without
  /// bloating the footprint.
  ShardedNormalizationCache(StringPool* pool, const NormalizeOptions& opts,
                            size_t num_shards = 16);

  /// Returns the normalized id for `raw` (kInvalidValueId when the value
  /// normalizes to the empty string). Each distinct raw id is normalized
  /// exactly once across all threads.
  ValueId Normalized(ValueId raw);

  /// Normalizes a whole column at once: `out` is resized to `raw.size()`
  /// with out[i] = Normalized(raw[i]). Misses are grouped per shard and
  /// interned into the StringPool in one batch per shard, so a column costs
  /// O(#shards touched) lock acquisitions instead of O(#cells).
  void NormalizeBatch(const std::vector<ValueId>& raw,
                      std::vector<ValueId>* out);

  /// Number of NormalizeCell invocations == distinct raw values that missed.
  /// The double-normalize regression test asserts this equals the number of
  /// distinct raw values, regardless of thread count.
  size_t normalize_calls() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Cell lookups resolved without normalizing (cache hits plus intra-batch
  /// duplicates collapsed before the cache was consulted).
  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<ValueId, ValueId> map;
  };

  size_t ShardOf(ValueId raw) const {
    return static_cast<size_t>(Mix64(raw)) & shard_mask_;
  }

  /// Normalizes + interns `raw` into `shard`, which must be locked by the
  /// caller and be the owning shard of `raw`.
  ValueId MissLocked(Shard& shard, ValueId raw);

  StringPool* pool_;
  NormalizeOptions opts_;
  size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
};

}  // namespace ms
