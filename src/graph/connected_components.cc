#include "graph/connected_components.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "mr/mapreduce.h"

namespace ms {

std::vector<uint32_t> ConnectedComponentsBfs(const CompatibilityGraph& graph,
                                             double min_pos_weight) {
  const size_t n = graph.num_vertices();
  std::vector<uint32_t> comp(n, UINT32_MAX);
  uint32_t next = 0;
  std::deque<VertexId> queue;
  for (VertexId s = 0; s < n; ++s) {
    if (comp[s] != UINT32_MAX) continue;
    comp[s] = next;
    queue.push_back(s);
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop_front();
      for (uint32_t e : graph.IncidentEdges(v)) {
        const CompatEdge& edge = graph.edges()[e];
        if (edge.w_pos < min_pos_weight) continue;
        VertexId u = graph.Other(edge, v);
        if (comp[u] == UINT32_MAX) {
          comp[u] = next;
          queue.push_back(u);
        }
      }
    }
    ++next;
  }
  return comp;
}

std::vector<uint32_t> ConnectedComponentsHashToMin(
    const CompatibilityGraph& graph, double min_pos_weight,
    ThreadPool* pool) {
  const size_t n = graph.num_vertices();
  // label[v]: current minimum vertex id known to be in v's component.
  std::vector<uint32_t> label(n);
  for (uint32_t v = 0; v < n; ++v) label[v] = v;

  // Static adjacency restricted to qualifying edges.
  std::vector<std::vector<uint32_t>> adj(n);
  for (const auto& e : graph.edges()) {
    if (e.w_pos < min_pos_weight) continue;
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }

  std::vector<uint32_t> vertices(n);
  for (uint32_t v = 0; v < n; ++v) vertices[v] = v;

  // Each round: every vertex sends min(label of itself, labels heard last
  // round) to all neighbors and itself; reduce takes the min per vertex.
  // Converges in O(log n) rounds on typical graphs [13].
  bool changed = true;
  size_t round = 0;
  const size_t max_rounds = 64;  // safety; log2(n) rounds expected
  while (changed && round < max_rounds) {
    changed = false;
    ++round;
    using KV = std::pair<uint32_t, uint32_t>;  // (vertex, candidate label)
    std::function<void(const uint32_t&, Emitter<uint32_t, uint32_t>&)> map_fn =
        [&](const uint32_t& v, Emitter<uint32_t, uint32_t>& em) {
          const uint32_t lv = label[v];
          em.Emit(v, lv);
          for (uint32_t u : adj[v]) em.Emit(u, lv);
        };
    std::function<void(const uint32_t&, std::vector<uint32_t>&,
                       std::vector<KV>*)>
        reduce_fn = [](const uint32_t& v, std::vector<uint32_t>& labels,
                       std::vector<KV>* out) {
          uint32_t mn = labels[0];
          for (uint32_t l : labels) mn = std::min(mn, l);
          out->push_back({v, mn});
        };
    auto updates = RunMapReduce<uint32_t, uint32_t, uint32_t, KV>(
        vertices, map_fn, reduce_fn, pool);
    for (const auto& [v, mn] : updates) {
      if (mn < label[v]) {
        label[v] = mn;
        changed = true;
      }
    }
  }

  // Densify labels to 0..k-1.
  std::unordered_map<uint32_t, uint32_t> dense;
  std::vector<uint32_t> comp(n);
  for (uint32_t v = 0; v < n; ++v) {
    auto [it, inserted] = dense.emplace(label[v], static_cast<uint32_t>(dense.size()));
    comp[v] = it->second;
  }
  return comp;
}

std::vector<std::vector<VertexId>> GroupByComponent(
    const std::vector<uint32_t>& component_of) {
  uint32_t max_comp = 0;
  for (uint32_t c : component_of) max_comp = std::max(max_comp, c);
  std::vector<std::vector<VertexId>> groups(component_of.empty() ? 0
                                                                 : max_comp + 1);
  for (VertexId v = 0; v < component_of.size(); ++v) {
    groups[component_of[v]].push_back(v);
  }
  return groups;
}

}  // namespace ms
