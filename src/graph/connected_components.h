// Connected components over the positive edges of a compatibility graph.
// Two implementations:
//  - BFS: the straightforward in-memory algorithm.
//  - Hash-to-Min (Appendix F, [13]): the Map-Reduce formulation the paper
//    uses at scale, implemented on the mini MapReduce engine. Both produce
//    identical components; tests assert agreement.
// The synthesis pipeline's divide-and-conquer runs one of these first, then
// partitions each component independently.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "graph/weighted_graph.h"

namespace ms {

/// BFS components over edges with w_pos >= min_pos_weight.
/// Returns component id per vertex (dense, starting at 0).
std::vector<uint32_t> ConnectedComponentsBfs(const CompatibilityGraph& graph,
                                             double min_pos_weight = 0.0);

/// Hash-to-Min components (iterative min-label propagation on MapReduce).
/// Produces the same partition as BFS; exposed separately so tests and the
/// scalability benchmark can exercise the MR path.
std::vector<uint32_t> ConnectedComponentsHashToMin(
    const CompatibilityGraph& graph, double min_pos_weight = 0.0,
    ThreadPool* pool = nullptr);

/// Groups vertex ids by component id.
std::vector<std::vector<VertexId>> GroupByComponent(
    const std::vector<uint32_t>& component_of);

}  // namespace ms
