#include "graph/union_find.h"

#include <cassert>

namespace ms {

void UnionFind::Reset(size_t n) {
  parent_.resize(n);
  size_.assign(n, 1);
  for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  num_sets_ = n;
}

uint32_t UnionFind::Find(uint32_t x) {
  assert(x < parent_.size());
  uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[x] != root) {
    uint32_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

uint32_t UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return ra;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return ra;
}

uint32_t UnionFind::UnionInto(uint32_t child, uint32_t parent) {
  uint32_t rc = Find(child);
  uint32_t rp = Find(parent);
  if (rc == rp) return rp;
  parent_[rc] = rp;
  size_[rp] += size_[rc];
  --num_sets_;
  return rp;
}

size_t UnionFind::SetSize(uint32_t x) { return size_[Find(x)]; }

std::vector<std::vector<uint32_t>> UnionFind::Components() {
  std::unordered_map<uint32_t, size_t> root_to_idx;
  std::vector<std::vector<uint32_t>> out;
  for (uint32_t i = 0; i < parent_.size(); ++i) {
    uint32_t r = Find(i);
    auto [it, inserted] = root_to_idx.emplace(r, out.size());
    if (inserted) out.emplace_back();
    out[it->second].push_back(i);
  }
  return out;
}

}  // namespace ms
