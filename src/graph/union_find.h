// Disjoint-set forest (Appendix F: "we use a disjoint-set data structure to
// speed up the process" of iterative partition merging).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ms {

/// Union-find with union-by-size and path compression. Amortized near-O(1).
class UnionFind {
 public:
  explicit UnionFind(size_t n = 0) { Reset(n); }

  /// Re-initializes to n singleton sets {0}, {1}, ..., {n-1}.
  void Reset(size_t n);

  size_t size() const { return parent_.size(); }

  /// Representative of x's set.
  uint32_t Find(uint32_t x);

  /// Merges the sets of a and b; returns the new root. No-op if same set.
  uint32_t Union(uint32_t a, uint32_t b);

  /// Directed merge: attaches child's set under parent's root, guaranteeing
  /// Find(parent) stays the root. Needed when callers key side structures
  /// by root id (e.g. the greedy partitioner's adjacency maps).
  uint32_t UnionInto(uint32_t child, uint32_t parent);

  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Size of the set containing x.
  size_t SetSize(uint32_t x);

  /// Number of disjoint sets.
  size_t NumSets() const { return num_sets_; }

  /// Groups all elements by root: vector of components (unsorted members).
  std::vector<std::vector<uint32_t>> Components();

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t num_sets_ = 0;
};

}  // namespace ms
