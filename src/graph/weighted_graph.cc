#include "graph/weighted_graph.h"

#include <algorithm>
#include <cassert>

namespace ms {

void CompatibilityGraph::AddEdge(VertexId u, VertexId v, double w_pos,
                                 double w_neg) {
  assert(u != v);
  assert(u < num_vertices_ && v < num_vertices_);
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v, w_pos, w_neg});
  finalized_ = false;
}

void CompatibilityGraph::Finalize() {
  if (finalized_) return;
  adj_.assign(num_vertices_, {});
  for (uint32_t e = 0; e < edges_.size(); ++e) {
    adj_[edges_[e].u].push_back(e);
    adj_[edges_[e].v].push_back(e);
  }
  finalized_ = true;
}

const std::vector<uint32_t>& CompatibilityGraph::IncidentEdges(
    VertexId v) const {
  assert(finalized_);
  assert(v < adj_.size());
  return adj_[v];
}

}  // namespace ms
