// The compatibility graph G = (B, E) of Section 4.2: vertices are candidate
// binary tables; each edge carries a positive compatibility weight w+ and a
// negative incompatibility weight w-. Edges with both weights zero are
// never materialized (the blocking step guarantees sparsity).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ms {

using VertexId = uint32_t;

/// One undirected edge with both signals.
struct CompatEdge {
  VertexId u = 0;
  VertexId v = 0;
  double w_pos = 0.0;  ///< w+(u, v) in [0, 1]
  double w_neg = 0.0;  ///< w-(u, v) in [-1, 0]
};

/// Sparse undirected graph stored as an edge list plus CSR-style adjacency.
/// Build once via AddEdge()+Finalize(); adjacency queries after Finalize().
class CompatibilityGraph {
 public:
  explicit CompatibilityGraph(size_t num_vertices = 0)
      : num_vertices_(num_vertices) {}

  void set_num_vertices(size_t n) { num_vertices_ = n; }
  size_t num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }

  /// Adds an undirected edge (u != v). Call before Finalize().
  void AddEdge(VertexId u, VertexId v, double w_pos, double w_neg);

  /// Builds adjacency. Idempotent.
  void Finalize();

  const std::vector<CompatEdge>& edges() const { return edges_; }

  /// Indices into edges() incident to vertex v (valid after Finalize()).
  const std::vector<uint32_t>& IncidentEdges(VertexId v) const;

  /// The other endpoint of edge e relative to v.
  VertexId Other(const CompatEdge& e, VertexId v) const {
    return e.u == v ? e.v : e.u;
  }

 private:
  size_t num_vertices_;
  std::vector<CompatEdge> edges_;
  std::vector<std::vector<uint32_t>> adj_;
  bool finalized_ = false;
};

}  // namespace ms
