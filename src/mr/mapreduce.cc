#include "mr/mapreduce.h"

#include <algorithm>

namespace ms {

size_t DefaultPartitionCount(size_t input_size, size_t workers) {
  if (input_size == 0) return 1;
  // A few partitions per worker balances skew without drowning in overhead.
  return std::max<size_t>(1, std::min(input_size, workers * 4));
}

}  // namespace ms
