// Mini in-process MapReduce. The paper runs candidate-pair blocking and
// Hash-to-Min connected components as Map-Reduce jobs on a production
// cluster; we reproduce the same programming model on a thread pool:
//   map: Input -> (K, V) pairs
//   shuffle: hash-partition by K
//   reduce: (K, all V's) -> Outputs
// This keeps the blocking/regrouping logic written exactly as the paper
// describes it while staying single-machine.
#pragma once

#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"

namespace ms {

/// Picks a partition count for a given input size and worker count.
size_t DefaultPartitionCount(size_t input_size, size_t workers);

template <typename K, typename V>
class Emitter {
 public:
  Emitter(size_t partitions, std::hash<K> hasher = {})
      : buffers_(partitions), hasher_(hasher) {}

  void Emit(const K& key, V value) {
    size_t p = hasher_(key) % buffers_.size();
    buffers_[p].emplace_back(key, std::move(value));
  }

  std::vector<std::vector<std::pair<K, V>>>& buffers() { return buffers_; }

 private:
  std::vector<std::vector<std::pair<K, V>>> buffers_;
  std::hash<K> hasher_;
};

/// Runs just the map + shuffle phases: maps every input, hash-partitions the
/// emitted (K, V) pairs by key, and returns one buffer per partition. All
/// pairs for a given key land in the same partition, so callers can stream-
/// aggregate each partition independently (in parallel) without ever
/// materializing per-key groups or reduce outputs. Concatenation order
/// within a partition is deterministic (worker index, then emission order).
template <typename Input, typename K, typename V>
std::vector<std::vector<std::pair<K, V>>> RunMapShuffle(
    const std::vector<Input>& inputs,
    const std::function<void(const Input&, Emitter<K, V>&)>& map_fn,
    ThreadPool* pool) {
  const size_t workers = pool ? pool->num_threads() : 1;
  const size_t partitions = DefaultPartitionCount(inputs.size(), workers);

  // --- Map phase: each worker owns an Emitter; merge per partition after.
  std::vector<Emitter<K, V>> emitters;
  emitters.reserve(workers);
  for (size_t w = 0; w < workers; ++w) emitters.emplace_back(partitions);

  if (pool && workers > 1) {
    const size_t chunk = (inputs.size() + workers - 1) / workers;
    for (size_t w = 0; w < workers; ++w) {
      const size_t begin = w * chunk;
      const size_t end = std::min(inputs.size(), begin + chunk);
      if (begin >= end) break;
      pool->Submit([&, w, begin, end] {
        for (size_t i = begin; i < end; ++i) map_fn(inputs[i], emitters[w]);
      });
    }
    pool->WaitIdle();
  } else {
    for (const auto& in : inputs) map_fn(in, emitters[0]);
  }

  // --- Shuffle: concatenate all workers' buffers per partition.
  std::vector<std::vector<std::pair<K, V>>> parts(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    size_t total = 0;
    for (auto& em : emitters) total += em.buffers()[p].size();
    parts[p].reserve(total);
  }
  for (auto& em : emitters) {
    for (size_t p = 0; p < partitions; ++p) {
      auto& src = em.buffers()[p];
      auto& dst = parts[p];
      dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                 std::make_move_iterator(src.end()));
      src.clear();
      src.shrink_to_fit();
    }
  }
  return parts;
}

/// Runs a full map-shuffle-reduce round.
///  - `inputs`: the records to map over.
///  - `map_fn(input, emitter)`: emits intermediate (K, V) pairs.
///  - `reduce_fn(key, values, out)`: appends outputs for one key group.
/// Returns all reduce outputs (order unspecified across keys).
template <typename Input, typename K, typename V, typename Output>
std::vector<Output> RunMapReduce(
    const std::vector<Input>& inputs,
    const std::function<void(const Input&, Emitter<K, V>&)>& map_fn,
    const std::function<void(const K&, std::vector<V>&, std::vector<Output>*)>&
        reduce_fn,
    ThreadPool* pool) {
  const size_t workers = pool ? pool->num_threads() : 1;
  auto parts = RunMapShuffle<Input, K, V>(inputs, map_fn, pool);
  const size_t partitions = parts.size();

  // --- Reduce phase: group by key within each partition.
  std::vector<std::vector<Output>> partial(partitions);
  auto reduce_partition = [&](size_t p) {
    std::unordered_map<K, std::vector<V>> groups;
    for (auto& [k, v] : parts[p]) groups[k].push_back(std::move(v));
    for (auto& [k, vs] : groups) reduce_fn(k, vs, &partial[p]);
  };
  if (pool && workers > 1) {
    for (size_t p = 0; p < partitions; ++p) {
      pool->Submit([&, p] { reduce_partition(p); });
    }
    pool->WaitIdle();
  } else {
    for (size_t p = 0; p < partitions; ++p) reduce_partition(p);
  }

  std::vector<Output> out;
  size_t total = 0;
  for (auto& po : partial) total += po.size();
  out.reserve(total);
  for (auto& po : partial) {
    out.insert(out.end(), std::make_move_iterator(po.begin()),
               std::make_move_iterator(po.end()));
  }
  return out;
}

}  // namespace ms
