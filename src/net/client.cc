#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ms::net {

namespace {
std::string ErrnoText(const char* op) {
  return std::string(op) + " failed: " + std::strerror(errno);
}
}  // namespace

Result<MappingClient> MappingClient::Connect(const std::string& host,
                                             uint16_t port,
                                             ClientOptions options) {
  MappingClient c;
  c.options_ = options;
  c.fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (c.fd_ < 0) return Status::IOError(ErrnoText("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable host address: " + host);
  }
  if (options.io_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options.io_timeout_ms / 1000;
    tv.tv_usec = (options.io_timeout_ms % 1000) * 1000;
    (void)::setsockopt(c.fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::setsockopt(c.fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (::connect(c.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError("connect to " + host + ":" + std::to_string(port) +
                           " failed: " + std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(c.fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return c;
}

MappingClient::MappingClient(MappingClient&& other) noexcept {
  *this = std::move(other);
}

MappingClient& MappingClient::operator=(MappingClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
    next_request_id_ = other.next_request_id_;
    recv_buf_ = std::move(other.recv_buf_);
    last_header_ = std::move(other.last_header_);
    last_body_ = std::move(other.last_body_);
    max_snapshot_version_ = other.max_snapshot_version_;
    version_regressed_ = other.version_regressed_;
  }
  return *this;
}

MappingClient::~MappingClient() { Close(); }

void MappingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status MappingClient::SendAll(const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::IOError("send timed out");
    }
    return Status::IOError(ErrnoText("send"));
  }
  return Status::OK();
}

Status MappingClient::RecvSome() {
  char buf[65536];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      recv_buf_.append(buf, static_cast<size_t>(n));
      return Status::OK();
    }
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("receive timed out");
    }
    return Status::IOError(ErrnoText("recv"));
  }
}

Status MappingClient::Call(MsgType request_type,
                           const std::string& request_body,
                           std::string_view* response_body) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  const uint64_t request_id = next_request_id_++;
  std::string frame;
  if (!AppendFrame(request_type, request_id, request_body, &frame)) {
    return Status::InvalidArgument(
        "request body of " + std::to_string(request_body.size()) +
        " bytes exceeds the " + std::to_string(kMaxFrameBody) +
        "-byte frame limit");
  }
  MS_RETURN_IF_ERROR(SendAll(frame.data(), frame.size()));

  // One request in flight per connection, so the next complete frame is
  // our response (request ids are still verified — a server bug that
  // desequenced them must surface, not silently mismatch).
  while (true) {
    FrameHeader header;
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    const FrameDecodeStatus st =
        TryDecodeFrame(recv_buf_, options_.max_frame_body, &header, &body,
                       &consumed, &error);
    if (st == FrameDecodeStatus::kBadFrame) {
      Close();  // a corrupt stream has no frame boundaries left to trust
      return Status::DataLoss("unparseable response frame: " + error);
    }
    if (st == FrameDecodeStatus::kNeedMoreData) {
      const Status rs = RecvSome();
      if (!rs.ok()) {
        Close();
        return rs;
      }
      continue;
    }
    last_body_.assign(body.data(), body.size());
    recv_buf_.erase(0, consumed);
    if (header.request_id != request_id) {
      Close();
      return Status::DataLoss(
          "response for request " + std::to_string(header.request_id) +
          " while awaiting " + std::to_string(request_id));
    }
    const bool is_error =
        header.msg_type == static_cast<uint8_t>(MsgType::kErrorResp);
    const bool is_expected =
        header.msg_type ==
        static_cast<uint8_t>(ResponseTypeFor(request_type));
    if (!is_error && !is_expected) {
      Close();
      return Status::DataLoss("unexpected response type " +
                              std::to_string(header.msg_type));
    }
    // Both paths decode the common header; error responses have no payload.
    if (is_error) {
      if (!DecodeErrorResponse(last_body_, &last_header_)) {
        Close();
        return Status::DataLoss("malformed error response body");
      }
    } else {
      *response_body = last_body_;
    }
    return Status::OK();
  }
}

void MappingClient::TrackVersion() {
  const uint64_t v = last_header_.health.snapshot_version;
  if (v < max_snapshot_version_) version_regressed_ = true;
  if (v > max_snapshot_version_) max_snapshot_version_ = v;
}

Result<AutoCorrectResult> MappingClient::SuggestCorrections(
    const std::vector<std::string>& column, const AutoCorrectOptions& options) {
  SuggestCorrectionsRequest req;
  req.column = column;
  req.options = options;
  std::string_view body;
  MS_RETURN_IF_ERROR(Call(MsgType::kSuggestCorrectionsReq,
                          EncodeSuggestCorrectionsRequest(req), &body));
  AutoCorrectResult result;
  if (last_header_.ok() || !body.empty()) {
    if (!DecodeSuggestCorrectionsResponse(body, &last_header_, &result)) {
      return Status::DataLoss("malformed SuggestCorrections response body");
    }
  }
  TrackVersion();
  MS_RETURN_IF_ERROR(last_header_.ToStatus());
  return result;
}

Result<AutoFillResult> MappingClient::AutoFill(
    const std::vector<std::string>& keys,
    const std::vector<std::pair<size_t, std::string>>& examples,
    const AutoFillOptions& options) {
  AutoFillRequest req;
  req.keys = keys;
  req.examples.reserve(examples.size());
  for (const auto& [row, value] : examples) {
    req.examples.emplace_back(static_cast<uint64_t>(row), value);
  }
  req.options = options;
  std::string_view body;
  MS_RETURN_IF_ERROR(
      Call(MsgType::kAutoFillReq, EncodeAutoFillRequest(req), &body));
  AutoFillResult result;
  if (last_header_.ok() || !body.empty()) {
    if (!DecodeAutoFillResponse(body, &last_header_, &result)) {
      return Status::DataLoss("malformed AutoFill response body");
    }
  }
  TrackVersion();
  MS_RETURN_IF_ERROR(last_header_.ToStatus());
  return result;
}

Result<AutoJoinResult> MappingClient::AutoJoin(
    const std::vector<std::string>& left_keys,
    const std::vector<std::string>& right_keys,
    const AutoJoinOptions& options) {
  AutoJoinRequest req;
  req.left_keys = left_keys;
  req.right_keys = right_keys;
  req.options = options;
  std::string_view body;
  MS_RETURN_IF_ERROR(
      Call(MsgType::kAutoJoinReq, EncodeAutoJoinRequest(req), &body));
  AutoJoinResult result;
  if (last_header_.ok() || !body.empty()) {
    if (!DecodeAutoJoinResponse(body, &last_header_, &result)) {
      return Status::DataLoss("malformed AutoJoin response body");
    }
  }
  TrackVersion();
  MS_RETURN_IF_ERROR(last_header_.ToStatus());
  return result;
}

Result<std::vector<std::optional<std::string>>> MappingClient::LookupBatch(
    uint64_t mapping_index, const std::vector<std::string>& values,
    uint8_t direction) {
  LookupBatchRequest req;
  req.mapping_index = mapping_index;
  req.direction = direction;
  req.values = values;
  std::string_view body;
  MS_RETURN_IF_ERROR(
      Call(MsgType::kLookupBatchReq, EncodeLookupBatchRequest(req), &body));
  LookupBatchResponse result;
  if (last_header_.ok() || !body.empty()) {
    if (!DecodeLookupBatchResponse(body, &last_header_, &result)) {
      return Status::DataLoss("malformed LookupBatch response body");
    }
  }
  TrackVersion();
  MS_RETURN_IF_ERROR(last_header_.ToStatus());
  return std::move(result.values);
}

Result<HealthResponse> MappingClient::Health() {
  std::string_view body;
  MS_RETURN_IF_ERROR(Call(MsgType::kHealthReq, std::string(), &body));
  HealthResponse result;
  if (last_header_.ok() || !body.empty()) {
    if (!DecodeHealthResponse(body, &last_header_, &result)) {
      return Status::DataLoss("malformed Health response body");
    }
  }
  TrackVersion();
  MS_RETURN_IF_ERROR(last_header_.ToStatus());
  return result;
}

Result<StatsResponse> MappingClient::Stats() {
  std::string_view body;
  MS_RETURN_IF_ERROR(Call(MsgType::kStatsReq, std::string(), &body));
  StatsResponse result;
  if (last_header_.ok() || !body.empty()) {
    if (!DecodeStatsResponse(body, &last_header_, &result)) {
      return Status::DataLoss("malformed Stats response body");
    }
  }
  TrackVersion();
  MS_RETURN_IF_ERROR(last_header_.ToStatus());
  return result;
}

Result<std::string> MappingClient::MetricsText() {
  std::string_view body;
  MS_RETURN_IF_ERROR(Call(MsgType::kMetricsTextReq, std::string(), &body));
  MetricsTextResponse result;
  if (last_header_.ok() || !body.empty()) {
    if (!DecodeMetricsTextResponse(body, &last_header_, &result)) {
      return Status::DataLoss("malformed MetricsText response body");
    }
  }
  TrackVersion();
  MS_RETURN_IF_ERROR(last_header_.ToStatus());
  return std::move(result.text);
}

}  // namespace ms::net
