// Blocking client for the net/ wire protocol: one TCP connection, one
// request in flight at a time, Status-based errors. This is the reference
// consumer of the protocol — tests, bench_net, and examples/remote_serving
// all talk to MappingServer through it, and its decode path doubles as the
// specification a non-C++ client would implement.
//
// Every response carries a HealthAndVersion header taken from the server
// snapshot that answered it (wire.h); the client records it in
// last_header() and tracks the highest snapshot version seen, so a caller
// can both detect generation changes and assert per-connection version
// monotonicity (the concurrency tests do exactly that via
// version_regressed()).
//
// Not thread-safe: one MappingClient per thread (connections are cheap).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace ms::net {

struct ClientOptions {
  /// SO_RCVTIMEO/SO_SNDTIMEO on the socket; an elapsed timeout surfaces as
  /// IOError. <= 0 waits forever.
  int io_timeout_ms = 30'000;
  size_t max_frame_body = kMaxFrameBody;
};

class MappingClient {
 public:
  /// Connects to `host:port` (IPv4 dotted quad, e.g. "127.0.0.1").
  static Result<MappingClient> Connect(const std::string& host, uint16_t port,
                                       ClientOptions options = {});

  MappingClient(MappingClient&& other) noexcept;
  MappingClient& operator=(MappingClient&& other) noexcept;
  MappingClient(const MappingClient&) = delete;
  MappingClient& operator=(const MappingClient&) = delete;
  ~MappingClient();

  bool connected() const { return fd_ >= 0; }
  void Close();

  // ---------------------------------------------------- the five requests
  // Results are exactly what the equivalent in-process MappingService call
  // returns (the loopback differential test enforces byte identity).
  // Server-side errors come back as the error response's Status.

  Result<AutoCorrectResult> SuggestCorrections(
      const std::vector<std::string>& column,
      const AutoCorrectOptions& options = {});

  Result<AutoFillResult> AutoFill(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<size_t, std::string>>& examples,
      const AutoFillOptions& options = {});

  Result<AutoJoinResult> AutoJoin(const std::vector<std::string>& left_keys,
                                  const std::vector<std::string>& right_keys,
                                  const AutoJoinOptions& options = {});

  /// direction: 0 = left→right, 1 = right→left
  /// (MappingService::LookupDirection order).
  Result<std::vector<std::optional<std::string>>> LookupBatch(
      uint64_t mapping_index, const std::vector<std::string>& values,
      uint8_t direction = 0);

  Result<HealthResponse> Health();
  Result<StatsResponse> Stats();
  /// Scrapes the server's metrics exposition (process registry + ms_net_*
  /// series) as Prometheus-style text.
  Result<std::string> MetricsText();

  // ------------------------------------------------------- response state

  /// Header of the last successfully decoded response (including error
  /// responses): server status plus the snapshot-bound HealthAndVersion.
  const ResponseHeader& last_header() const { return last_header_; }
  /// Raw body bytes of the last response frame — the tests' byte-identity
  /// oracle.
  const std::string& last_response_body() const { return last_body_; }
  /// Highest snapshot version any response on this connection reported.
  uint64_t max_snapshot_version() const { return max_snapshot_version_; }
  /// True if any response ever reported a snapshot version LOWER than one
  /// previously seen on this connection — must never happen against a
  /// single server (RCU publication is monotone).
  bool version_regressed() const { return version_regressed_; }

 private:
  MappingClient() = default;

  /// Sends one framed request and blocks for its response frame. Fills
  /// last_header_/last_body_; returns the error response's Status when the
  /// server answered with kErrorResp, IOError on transport problems, and
  /// DataLoss on an unparseable response stream.
  Status Call(MsgType request_type, const std::string& request_body,
              std::string_view* response_body);

  Status SendAll(const char* data, size_t size);
  Status RecvSome();
  /// Folds last_header_'s snapshot version into the monotonicity tracking.
  void TrackVersion();

  int fd_ = -1;
  ClientOptions options_;
  uint64_t next_request_id_ = 1;
  std::string recv_buf_;
  ResponseHeader last_header_;
  std::string last_body_;
  uint64_t max_snapshot_version_ = 0;
  bool version_regressed_ = false;
};

}  // namespace ms::net
