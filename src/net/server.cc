#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "apps/auto_correct.h"
#include "apps/auto_fill.h"
#include "apps/auto_join.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ms::net {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string ErrnoText(const char* op) {
  return std::string(op) + " failed: " + std::strerror(errno);
}

}  // namespace

struct MappingServer::Connection {
  int fd = -1;
  std::string read_buf;
  size_t read_pos = 0;
  std::string write_buf;
  size_t write_pos = 0;
  /// Cumulative byte counters; response_ends holds the queued_total value
  /// at which each pending response finishes flushing, so in-flight =
  /// response_ends.size() without caring about buffer compaction.
  uint64_t queued_total = 0;
  uint64_t flushed_total = 0;
  std::deque<uint64_t> response_ends;
  bool want_read = true;
  bool close_after_flush = false;
  int64_t last_active_ms = 0;
  uint32_t armed_events = 0;
  /// Per-connection reuse (satellite: per-request arena, scoped to the
  /// server): the LookupBatch decode target and the store's normalize/dedup
  /// scratch keep their grown capacity across requests on this connection.
  LookupBatchRequest lookup_req;
  MappingStore::BatchScratch scratch;
};

struct MappingServer::Worker {
  /// Per-worker shard of the request metrics — the sharding pattern
  /// obs/metrics.h documents: each worker records into its own histogram
  /// with relaxed atomics, GetStats/BuildMetricsText merge the snapshots.
  struct TypeMetrics {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> errors{0};
    obs::Histogram lat;
  };

  int index = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;
  std::mutex inbox_mu;
  std::vector<int> inbox;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  TypeMetrics metrics[kNumRequestTypes];
  /// Errors not attributable to a known request type (bad frames, unknown
  /// types, protocol-version mismatches).
  std::atomic<uint64_t> other_errors{0};
  int64_t last_sweep_ms = 0;
};

MappingServer::MappingServer(MappingService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

MappingServer::~MappingServer() { Stop(); }

Status MappingServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  if (options_.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options_.max_in_flight_per_connection < 1) {
    return Status::InvalidArgument(
        "max_in_flight_per_connection must be >= 1");
  }
  if (options_.max_frame_body > kMaxFrameBody) {
    return Status::InvalidArgument("max_frame_body exceeds the protocol cap");
  }
  workers_.clear();  // drop joined workers kept alive for GetStats by Stop()

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IOError(ErrnoText("socket"));
  auto cleanup = [this] {
    for (auto& w : workers_) {
      if (w->epoll_fd >= 0) ::close(w->epoll_fd);
      if (w->event_fd >= 0) ::close(w->event_fd);
    }
    workers_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
  };
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    cleanup();
    return Status::InvalidArgument("unparseable bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Status::IOError(ErrnoText("bind"));
    cleanup();
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status st = Status::IOError(ErrnoText("listen"));
    cleanup();
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    const Status st = Status::IOError(ErrnoText("getsockname"));
    cleanup();
    return st;
  }
  port_ = ntohs(addr.sin_port);

  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    w->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->epoll_fd < 0 || w->event_fd < 0) {
      workers_.push_back(std::move(w));
      cleanup();
      return Status::IOError(ErrnoText("epoll_create1/eventfd"));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = w->event_fd;
    ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->event_fd, &ev);
    if (i == 0) {
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.fd = listen_fd_;
      ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &lev);
    }
    workers_.push_back(std::move(w));
  }

  running_.store(true, std::memory_order_release);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(i); });
  }
  service_.SetRemoteStatsSource([this] { return AggregateRemoteStats(); });
  return Status::OK();
}

void MappingServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  service_.SetRemoteStatsSource(nullptr);
  for (auto& w : workers_) {
    const uint64_t one = 1;
    (void)!::write(w->event_fd, &one, sizeof(one));
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // The joined workers stay in workers_ (fds closed, counters intact) so
  // GetStats() racing or following Stop() reads final metrics instead of
  // freed memory; the next Start() discards them.
  for (auto& w : workers_) {
    for (auto& [fd, conn] : w->conns) {
      ::close(fd);
      connections_active_.fetch_sub(1, std::memory_order_relaxed);
    }
    w->conns.clear();
    ::close(w->epoll_fd);
    ::close(w->event_fd);
    w->epoll_fd = -1;
    w->event_fd = -1;
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MappingServer::WorkerLoop(int index) {
  Worker& w = *workers_[static_cast<size_t>(index)];
  const int sweep_interval_ms =
      options_.idle_timeout_ms > 0
          ? std::max(10, options_.idle_timeout_ms / 4)
          : 250;
  const int wait_ms = std::min(250, sweep_interval_ms);
  epoll_event events[64];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(w.epoll_fd, events, 64, wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const int64_t now = NowMs();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == w.event_fd) {
        uint64_t drained = 0;
        (void)!::read(w.event_fd, &drained, sizeof(drained));
        continue;  // inbox is adopted below, every iteration
      }
      if (fd == listen_fd_) {
        AcceptPending(w);
        continue;
      }
      auto it = w.conns.find(fd);
      if (it == w.conns.end()) continue;
      Connection& c = *it->second;
      c.last_active_ms = now;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(w, fd);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        FlushWrites(w, c);
        if (w.conns.find(fd) == w.conns.end()) continue;
      }
      if ((events[i].events & EPOLLIN) && c.want_read) {
        HandleReadable(w, c);
      }
    }
    // Adopt connections routed here by the acceptor.
    std::vector<int> adopted;
    {
      const std::lock_guard<std::mutex> lk(w.inbox_mu);
      adopted.swap(w.inbox);
    }
    for (const int fd : adopted) {
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      conn->last_active_ms = now;
      conn->armed_events = EPOLLIN;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        connections_active_.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      w.conns.emplace(fd, std::move(conn));
    }
    if (now - w.last_sweep_ms >= sweep_interval_ms) {
      SweepIdle(w, now);
      w.last_sweep_ms = now;
    }
  }
}

void MappingServer::AcceptPending(Worker& w) {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or transient accept failure — the loop retries later
    }
    connections_opened_.fetch_add(1, std::memory_order_relaxed);
    if (connections_active_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      ::close(fd);
      continue;
    }
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const size_t target = next_worker_.fetch_add(1, std::memory_order_relaxed) %
                          workers_.size();
    Worker& tw = *workers_[target];
    {
      const std::lock_guard<std::mutex> lk(tw.inbox_mu);
      tw.inbox.push_back(fd);
    }
    if (target != static_cast<size_t>(w.index)) {
      const uint64_t v = 1;
      (void)!::write(tw.event_fd, &v, sizeof(v));
    }
  }
}

void MappingServer::HandleReadable(Worker& w, Connection& c) {
  const int fd = c.fd;
  while (c.want_read) {
    char buf[65536];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      c.read_buf.append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      CloseConnection(w, fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(w, fd);
    return;
  }
  ParseFrames(w, c);
  FlushWrites(w, c);  // closes on error / close_after_flush; re-arms epoll
}

void MappingServer::ParseFrames(Worker& w, Connection& c) {
  while (!c.close_after_flush &&
         c.response_ends.size() < options_.max_in_flight_per_connection) {
    const std::string_view pending(c.read_buf.data() + c.read_pos,
                                   c.read_buf.size() - c.read_pos);
    FrameHeader header;
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    const FrameDecodeStatus st = TryDecodeFrame(
        pending, options_.max_frame_body, &header, &body, &consumed, &error);
    if (st == FrameDecodeStatus::kNeedMoreData) break;
    if (st == FrameDecodeStatus::kBadFrame) {
      // A corrupt byte stream cannot be resynchronized: best-effort error
      // response (request id may be a garbage echo), then close.
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      w.other_errors.fetch_add(1, std::memory_order_relaxed);
      ResponseHeader rh;
      const auto snap = service_.AcquireSnapshot();
      rh.health.snapshot_version = snap ? snap->version : 0;
      rh.health.num_mappings = snap ? snap->store->size() : 0;
      RefreshCachedHealth(NowMs(), /*force=*/false);
      {
        const std::lock_guard<std::mutex> lk(cached_health_mu_);
        rh.health.generation_served = cached_generation_served_;
        rh.health.degraded = cached_degraded_;
      }
      rh.status_code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
      rh.message = "malformed frame: " + error;
      const std::string resp_body = EncodeErrorResponse(rh);
      const size_t before = c.write_buf.size();
      (void)AppendFrame(MsgType::kErrorResp, header.request_id, resp_body,
                        &c.write_buf);
      c.queued_total += c.write_buf.size() - before;
      c.response_ends.push_back(c.queued_total);
      c.close_after_flush = true;
      c.read_pos = c.read_buf.size();
      break;
    }
    HandleFrame(w, c, header, body);
    c.read_pos += consumed;
  }
  if (c.read_pos == c.read_buf.size()) {
    c.read_buf.clear();
    c.read_pos = 0;
  } else if (c.read_pos >= 65536) {
    c.read_buf.erase(0, c.read_pos);
    c.read_pos = 0;
  }
  // Backpressure: at the in-flight cap (or on the way out) stop reading —
  // the client's unread bytes stay in the kernel and its TCP window
  // closes. FlushWrites re-opens the tap as responses drain.
  c.want_read =
      !c.close_after_flush &&
      c.response_ends.size() < options_.max_in_flight_per_connection;
}

void MappingServer::HandleFrame(Worker& w, Connection& c,
                                const FrameHeader& header,
                                std::string_view body) {
  const auto t0 = std::chrono::steady_clock::now();
  // The wire request id IS the trace id: a slow-span log line or trace-ring
  // entry for this request carries the id the client chose, so client and
  // server records correlate without any extra protocol field.
  obs::TraceScope trace(header.request_id);
  obs::TraceSpan span("net.handle_frame");
  // Everything this request sees comes from ONE acquired snapshot: the
  // lookups below, the response header's version, and its mapping count.
  const auto snap = service_.AcquireSnapshot();
  const bool is_health = header.msg_type ==
                         static_cast<uint8_t>(MsgType::kHealthReq);
  RefreshCachedHealth(NowMs(), /*force=*/is_health);
  ResponseHeader rh;
  rh.health.snapshot_version = snap ? snap->version : 0;
  rh.health.num_mappings = snap ? snap->store->size() : 0;
  {
    const std::lock_guard<std::mutex> lk(cached_health_mu_);
    rh.health.generation_served = cached_generation_served_;
    rh.health.degraded = cached_degraded_;
  }

  const int type_index = IsRequestType(header.msg_type)
                             ? static_cast<int>(header.msg_type) - 1
                             : -1;
  auto respond = [&](MsgType type, const std::string& resp_body) {
    const size_t before = c.write_buf.size();
    if (!AppendFrame(type, header.request_id, resp_body, &c.write_buf)) {
      // Response body over the protocol's frame cap: answer with a small
      // error response instead of desyncing the stream.
      rh.status_code = static_cast<uint8_t>(StatusCode::kOutOfRange);
      rh.message = "response of " + std::to_string(resp_body.size()) +
                   " bytes exceeds the " + std::to_string(kMaxFrameBody) +
                   "-byte frame limit";
      type = MsgType::kErrorResp;
      (void)AppendFrame(type, header.request_id, EncodeErrorResponse(rh),
                        &c.write_buf);
    }
    c.queued_total += c.write_buf.size() - before;
    c.response_ends.push_back(c.queued_total);
    const uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (type_index >= 0) {
      auto& m = w.metrics[type_index];
      m.count.fetch_add(1, std::memory_order_relaxed);
      m.lat.Record(us);
      if (type == MsgType::kErrorResp) {
        m.errors.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      w.other_errors.fetch_add(1, std::memory_order_relaxed);
    }
  };
  auto fail = [&](StatusCode code, std::string message) {
    rh.status_code = static_cast<uint8_t>(code);
    rh.message = std::move(message);
    respond(MsgType::kErrorResp, EncodeErrorResponse(rh));
  };

  if (header.protocol_version != kProtocolVersion) {
    fail(StatusCode::kFailedPrecondition,
         "unsupported protocol version " +
             std::to_string(header.protocol_version) + " (server speaks " +
             std::to_string(kProtocolVersion) + ")");
    return;
  }

  switch (static_cast<MsgType>(header.msg_type)) {
    case MsgType::kSuggestCorrectionsReq: {
      SuggestCorrectionsRequest req;
      if (!DecodeSuggestCorrectionsRequest(body, &req)) {
        fail(StatusCode::kInvalidArgument,
             "malformed SuggestCorrections request body");
        return;
      }
      const AutoCorrectResult result =
          snap ? ::ms::SuggestCorrections(*snap->store, req.column,
                                          req.options)
               : AutoCorrectResult{};
      respond(MsgType::kSuggestCorrectionsResp,
              EncodeSuggestCorrectionsResponse(rh, result));
      return;
    }
    case MsgType::kAutoFillReq: {
      AutoFillRequest req;
      if (!DecodeAutoFillRequest(body, &req)) {
        fail(StatusCode::kInvalidArgument, "malformed AutoFill request body");
        return;
      }
      AutoFillResult result;
      if (snap) {
        std::vector<std::pair<size_t, std::string>> examples;
        examples.reserve(req.examples.size());
        for (auto& [row, value] : req.examples) {
          examples.emplace_back(static_cast<size_t>(row), std::move(value));
        }
        result = ::ms::AutoFill(*snap->store, req.keys, examples, req.options);
      }
      respond(MsgType::kAutoFillResp, EncodeAutoFillResponse(rh, result));
      return;
    }
    case MsgType::kAutoJoinReq: {
      AutoJoinRequest req;
      if (!DecodeAutoJoinRequest(body, &req)) {
        fail(StatusCode::kInvalidArgument, "malformed AutoJoin request body");
        return;
      }
      const AutoJoinResult result =
          snap ? ::ms::AutoJoin(*snap->store, req.left_keys, req.right_keys,
                                req.options)
               : AutoJoinResult{};
      respond(MsgType::kAutoJoinResp, EncodeAutoJoinResponse(rh, result));
      return;
    }
    case MsgType::kLookupBatchReq: {
      // Decode target and normalize/dedup scratch are per-connection
      // state: request k+1 reuses the capacity request k grew.
      LookupBatchRequest& req = c.lookup_req;
      if (!DecodeLookupBatchRequest(body, &req)) {
        fail(StatusCode::kInvalidArgument,
             "malformed LookupBatch request body");
        return;
      }
      LookupBatchResponse result;
      if (snap == nullptr ||
          req.mapping_index >= snap->store->size()) {
        // Mirror MappingService::LookupBatch: all-nullopt, not an error.
        result.values.assign(req.values.size(), std::nullopt);
      } else if (req.direction == 0) {
        result.values = snap->store->LookupRightBatch(
            static_cast<size_t>(req.mapping_index), req.values, &c.scratch);
      } else {
        result.values = snap->store->LookupLeftBatch(
            static_cast<size_t>(req.mapping_index), req.values, &c.scratch);
      }
      respond(MsgType::kLookupBatchResp,
              EncodeLookupBatchResponse(rh, result));
      return;
    }
    case MsgType::kHealthReq: {
      const ServiceHealth h = service_.health();
      // One coherent health view: the snapshot-bound pair stays from the
      // acquisition above; the rotation fields come from the forced
      // refresh this request just performed.
      HealthResponse result;
      result.generations_skipped = h.generations_skipped;
      result.quarantined_files = h.quarantined_files;
      result.retries_performed = h.retries_performed;
      result.io_failures = h.io_failures;
      rh.health.generation_served = h.generation_served;
      rh.health.degraded = h.degraded();
      respond(MsgType::kHealthResp, EncodeHealthResponse(rh, result));
      return;
    }
    case MsgType::kStatsReq: {
      respond(MsgType::kStatsResp, EncodeStatsResponse(rh, GetStats()));
      return;
    }
    case MsgType::kMetricsTextReq: {
      MetricsTextResponse result;
      result.text = BuildMetricsText();
      respond(MsgType::kMetricsTextResp,
              EncodeMetricsTextResponse(rh, result));
      return;
    }
    default:
      fail(StatusCode::kInvalidArgument,
           "unknown message type " + std::to_string(header.msg_type));
      return;
  }
}

void MappingServer::FlushWrites(Worker& w, Connection& c) {
  const int fd = c.fd;
  while (c.write_pos < c.write_buf.size()) {
    const ssize_t n =
        ::send(fd, c.write_buf.data() + c.write_pos,
               c.write_buf.size() - c.write_pos, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
      c.write_pos += static_cast<size_t>(n);
      c.flushed_total += static_cast<uint64_t>(n);
      while (!c.response_ends.empty() &&
             c.response_ends.front() <= c.flushed_total) {
        c.response_ends.pop_front();
      }
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(w, fd);
    return;
  }
  if (c.write_pos == c.write_buf.size()) {
    c.write_buf.clear();
    c.write_pos = 0;
    if (c.close_after_flush) {
      CloseConnection(w, fd);
      return;
    }
  }
  // Responses drained: parse any frames the client already pipelined into
  // our buffer (reads were paused, not the parses' input). ParseFrames
  // recomputes want_read; when the read buffer is empty we must recompute
  // it HERE, or a connection whose buffer drained exactly at a frame
  // boundary while at the in-flight cap stays deaf forever (want_read
  // false, nothing armed) — the tap must re-open as responses drain.
  if (!c.close_after_flush && c.read_pos < c.read_buf.size()) {
    ParseFrames(w, c);
  } else {
    c.want_read =
        !c.close_after_flush &&
        c.response_ends.size() < options_.max_in_flight_per_connection;
  }
  UpdateEpoll(w, c);
}

void MappingServer::UpdateEpoll(Worker& w, Connection& c) {
  uint32_t want = 0;
  if (c.want_read) want |= EPOLLIN;
  if (c.write_pos < c.write_buf.size()) want |= EPOLLOUT;
  if (want == c.armed_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = c.fd;
  if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev) == 0) {
    c.armed_events = want;
  }
}

void MappingServer::CloseConnection(Worker& w, int fd) {
  auto it = w.conns.find(fd);
  if (it == w.conns.end()) return;
  ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  w.conns.erase(it);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

void MappingServer::SweepIdle(Worker& w, int64_t now_ms) {
  if (options_.idle_timeout_ms <= 0) return;
  std::vector<int> idle;
  for (const auto& [fd, conn] : w.conns) {
    if (now_ms - conn->last_active_ms > options_.idle_timeout_ms) {
      idle.push_back(fd);
    }
  }
  for (const int fd : idle) CloseConnection(w, fd);
}

void MappingServer::RefreshCachedHealth(int64_t now_ms, bool force) {
  {
    const std::lock_guard<std::mutex> lk(cached_health_mu_);
    if (!force && cached_health_at_ms_ >= 0 &&
        now_ms - cached_health_at_ms_ < options_.health_refresh_ms) {
      return;
    }
  }
  // service_.health() takes the service's health mutex (and consults our
  // stats source) — called outside cached_health_mu_ so a slow health read
  // never blocks other workers' header fills.
  const ServiceHealth h = service_.health();
  const std::lock_guard<std::mutex> lk(cached_health_mu_);
  cached_health_at_ms_ = now_ms;
  cached_generation_served_ = h.generation_served;
  cached_degraded_ = h.degraded();
}

StatsResponse MappingServer::GetStats() const {
  StatsResponse out;
  out.malformed_frames = malformed_frames_.load(std::memory_order_relaxed);
  out.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  out.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  out.connections_opened =
      connections_opened_.load(std::memory_order_relaxed);
  out.connections_active =
      connections_active_.load(std::memory_order_relaxed);
  for (size_t t = 0; t < kNumRequestTypes; ++t) {
    RequestTypeStats s;
    obs::HistogramSnapshot merged;
    for (const auto& w : workers_) {
      s.count += w->metrics[t].count.load(std::memory_order_relaxed);
      s.errors += w->metrics[t].errors.load(std::memory_order_relaxed);
      merged.Merge(w->metrics[t].lat.Snapshot());
    }
    s.p50_us = merged.Quantile(0.50);
    s.p99_us = merged.Quantile(0.99);
    out.total_requests += s.count;
    out.total_errors += s.errors;
    out.per_type.emplace_back(static_cast<uint8_t>(t + 1), s);
  }
  for (const auto& w : workers_) {
    out.total_errors += w->other_errors.load(std::memory_order_relaxed);
  }
  out.env_retries = service_.env()->retries_performed();
  out.env_io_failures = service_.env()->io_failures();
  return out;
}

std::string MappingServer::BuildMetricsText() const {
  // Registry first (pipeline, serving, persistence, env series), then the
  // server's own request metrics — per-worker shards merged here rather
  // than registered globally, so two servers in one process never mix
  // request counts.
  std::string out = obs::MetricsRegistry::Global().ExpositionText();
  obs::ExpositionBuilder net;
  uint64_t other_errors = 0;
  for (size_t t = 0; t < kNumRequestTypes; ++t) {
    const obs::ExpositionBuilder::Labels labels = {
        {"type", RequestTypeName(static_cast<uint8_t>(t + 1))}};
    uint64_t count = 0;
    uint64_t errors = 0;
    obs::HistogramSnapshot merged;
    for (const auto& w : workers_) {
      count += w->metrics[t].count.load(std::memory_order_relaxed);
      errors += w->metrics[t].errors.load(std::memory_order_relaxed);
      merged.Merge(w->metrics[t].lat.Snapshot());
    }
    net.Value("ms_net_requests_total", labels, count);
    net.Value("ms_net_request_errors_total", labels, errors);
    net.Histo("ms_net_request_us", labels, merged);
  }
  for (const auto& w : workers_) {
    other_errors += w->other_errors.load(std::memory_order_relaxed);
  }
  net.Value("ms_net_other_errors_total", {}, other_errors);
  net.Value("ms_net_malformed_frames_total", {},
            malformed_frames_.load(std::memory_order_relaxed));
  net.Value("ms_net_bytes_in_total", {},
            bytes_in_.load(std::memory_order_relaxed));
  net.Value("ms_net_bytes_out_total", {},
            bytes_out_.load(std::memory_order_relaxed));
  net.Value("ms_net_connections_opened_total", {},
            connections_opened_.load(std::memory_order_relaxed));
  net.Value("ms_net_connections_active", {},
            connections_active_.load(std::memory_order_relaxed));
  out += std::move(net).Take();
  return out;
}

RemoteServingStats MappingServer::AggregateRemoteStats() const {
  RemoteServingStats r;
  r.malformed_frames = malformed_frames_.load(std::memory_order_relaxed);
  r.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  r.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  r.connections_opened =
      connections_opened_.load(std::memory_order_relaxed);
  r.connections_active =
      connections_active_.load(std::memory_order_relaxed);
  for (size_t t = 0; t < kNumRequestTypes; ++t) {
    for (const auto& w : workers_) {
      r.requests += w->metrics[t].count.load(std::memory_order_relaxed);
      r.errors += w->metrics[t].errors.load(std::memory_order_relaxed);
    }
  }
  for (const auto& w : workers_) {
    r.errors += w->other_errors.load(std::memory_order_relaxed);
  }
  return r;
}

}  // namespace ms::net
