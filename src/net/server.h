// Non-blocking epoll TCP server exposing a MappingService over the net/
// wire protocol — the remote serving subsystem in front of PR 7's RCU core.
//
// Architecture: one listening socket plus N worker threads, each running
// its own epoll event loop over the connections assigned to it round-robin
// (worker 0 additionally owns the acceptor). Request handling is
// synchronous inside the owning worker: a decoded frame is dispatched
// against ONE acquired ServingSnapshot, the response is encoded into the
// connection's write buffer, and the loop moves on — writers
// (AppendAndResynthesize / Resynthesize / rotation) keep running under the
// service exactly as in-process readers allow, and no request ever
// observes two generations.
//
// Flow control and robustness:
//   - Bounded in-flight requests per connection: a request counts as
//     in-flight from frame decode until its response bytes are fully
//     flushed to the socket. At the limit the worker stops parsing AND
//     stops reading that connection (EPOLLIN disarmed) — backpressure
//     propagates to the client's TCP window instead of growing our
//     buffers.
//   - Idle timeout: connections with no traffic for idle_timeout_ms are
//     closed by a periodic sweep.
//   - Malformed frames (bad magic, bad CRC, oversized length, nonzero
//     reserved bytes) get a best-effort error response and a connection
//     close after flush; malformed BODIES of well-framed requests get an
//     error response and the connection lives on. A truncated frame
//     simply waits for more bytes until the idle timeout reaps it. None
//     of these can crash or hang the server (tests/net_test.cc fuzzes
//     exactly this contract).
//
// Metrics: per-request counts, error counts, and a bucketed latency
// histogram per request type, plus byte/connection counters — served over
// the wire as a Stats response, returned locally by GetStats(), and folded
// into the service's ServiceHealth::remote via SetRemoteStatsSource.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/serving.h"
#include "common/status.h"
#include "net/wire.h"

namespace ms::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the real one back via port().
  uint16_t port = 0;
  /// Worker event loops (>= 1). Worker 0 also runs the acceptor.
  int num_workers = 2;
  /// Requests decoded but not yet fully flushed, per connection, before
  /// the server stops reading that connection.
  size_t max_in_flight_per_connection = 64;
  /// Frames with a larger body are malformed (connection-fatal).
  size_t max_frame_body = kMaxFrameBody;
  /// Connections idle longer than this are closed. <= 0 disables.
  int idle_timeout_ms = 60'000;
  /// Accepted connections beyond this are immediately closed.
  size_t max_connections = 1024;
  /// How stale the rotation fields (generation_served / degraded) on a
  /// non-Health response header may be. The snapshot_version/num_mappings
  /// pair is always exact — taken from the request's own acquired
  /// snapshot. 0 = refresh on every request (tests).
  int health_refresh_ms = 50;
};

class MappingServer {
 public:
  /// The service must outlive the server. Start() installs the server as
  /// the service's remote-stats source; Stop() removes it.
  explicit MappingServer(MappingService& service, ServerOptions options = {});
  ~MappingServer();

  MappingServer(const MappingServer&) = delete;
  MappingServer& operator=(const MappingServer&) = delete;

  /// Binds, listens, and spawns the worker threads. InvalidArgument on bad
  /// options, IOError (with errno text) on any socket failure. A failed
  /// Start leaves nothing running and can be retried.
  Status Start();

  /// Stops accepting, closes every connection, joins the workers, and
  /// unregisters the stats source. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves ephemeral binds). 0 before Start.
  uint16_t port() const { return port_; }

  /// Aggregated server metrics; the same numbers a Stats wire request
  /// returns. Safe from any thread while the server runs AND concurrently
  /// with / after Stop() — the metric storage outlives the workers until
  /// the next Start(), which resets it (do not race GetStats with Start).
  StatsResponse GetStats() const;

  /// The MetricsText scrape payload: the process metrics registry's text
  /// exposition followed by this server's request metrics (ms_net_*
  /// series), rendered per worker-merged histograms. Same thread-safety as
  /// GetStats.
  std::string BuildMetricsText() const;

 private:
  struct Connection;
  struct Worker;

  void AcceptPending(Worker& w);
  void WorkerLoop(int index);
  void HandleReadable(Worker& w, Connection& c);
  void ParseFrames(Worker& w, Connection& c);
  void HandleFrame(Worker& w, Connection& c, const FrameHeader& header,
                   std::string_view body);
  void FlushWrites(Worker& w, Connection& c);
  void UpdateEpoll(Worker& w, Connection& c);
  void CloseConnection(Worker& w, int fd);
  void SweepIdle(Worker& w, int64_t now_ms);
  /// Rotation fields for response headers, refreshed at most every
  /// health_refresh_ms.
  void RefreshCachedHealth(int64_t now_ms, bool force);
  RemoteServingStats AggregateRemoteStats() const;

  MappingService& service_;
  ServerOptions options_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> next_worker_{0};

  // Cross-worker counters (relaxed; read by GetStats).
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> malformed_frames_{0};

  // Cached rotation health for response headers.
  mutable std::mutex cached_health_mu_;
  int64_t cached_health_at_ms_ = -1;
  uint64_t cached_generation_served_ = 0;
  bool cached_degraded_ = false;
};

}  // namespace ms::net
