#include "net/wire.h"

#include "common/crc32.h"
#include "persist/wire.h"

namespace ms::net {

namespace {

using persist::WireReader;
using persist::WireWriter;

void PutHealth(WireWriter* w, const HealthAndVersion& h) {
  w->U64(h.snapshot_version);
  w->U64(h.num_mappings);
  w->U64(h.generation_served);
  w->Bool(h.degraded);
}

void GetHealth(WireReader* r, HealthAndVersion* h) {
  h->snapshot_version = r->U64();
  h->num_mappings = r->U64();
  h->generation_served = r->U64();
  h->degraded = r->Bool();
}

void PutResponseHeader(WireWriter* w, const ResponseHeader& h) {
  w->U8(h.status_code);
  w->Str(h.message);
  PutHealth(w, h.health);
}

void GetResponseHeader(WireReader* r, ResponseHeader* h) {
  h->status_code = r->U8();
  h->message = std::string(r->Str());
  GetHealth(r, &h->health);
}

void PutStrings(WireWriter* w, const std::vector<std::string>& v) {
  w->U32(static_cast<uint32_t>(v.size()));
  for (const auto& s : v) w->Str(s);
}

bool GetStrings(WireReader* r, std::vector<std::string>* v) {
  const uint32_t n = r->U32();
  // An attacker-controlled count must not reserve unbounded memory before
  // the bounds checks catch it: each element consumes at least a 4-byte
  // length, so any count beyond remaining/4 is provably malformed.
  if (static_cast<size_t>(n) > r->remaining() / 4 + 1) return false;
  v->clear();
  v->reserve(n);
  for (uint32_t i = 0; i < n; ++i) v->emplace_back(r->Str());
  return r->ok();
}

/// Requests must consume the body exactly; a response decode tolerates
/// trailing bytes (additive fields of a newer same-version peer).
bool RequestOk(const WireReader& r) { return r.ok() && r.AtEnd(); }

}  // namespace

Status ResponseHeader::ToStatus() const {
  switch (static_cast<StatusCode>(status_code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kIOError:
      return Status::IOError(message);
    case StatusCode::kDataLoss:
      return Status::DataLoss(message);
    case StatusCode::kInternal:
    default:
      return Status::Internal(message);
  }
}

const char* RequestTypeName(uint8_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kSuggestCorrectionsReq:
      return "suggest_corrections";
    case MsgType::kAutoFillReq:
      return "auto_fill";
    case MsgType::kAutoJoinReq:
      return "auto_join";
    case MsgType::kLookupBatchReq:
      return "lookup_batch";
    case MsgType::kHealthReq:
      return "health";
    case MsgType::kStatsReq:
      return "stats";
    case MsgType::kMetricsTextReq:
      return "metrics_text";
    default:
      return "unknown";
  }
}

// --------------------------------------------------------------- framing

bool AppendFrame(MsgType type, uint64_t request_id, std::string_view body,
                 std::string* out) {
  if (body.size() > kMaxFrameBody) return false;
  WireWriter w;
  w.U32(kFrameMagic);
  w.U8(kProtocolVersion);
  w.U8(static_cast<uint8_t>(type));
  w.U8(0);  // reserved
  w.U8(0);  // reserved
  w.U64(request_id);
  w.U32(static_cast<uint32_t>(body.size()));
  w.U32(Crc32(body));
  out->append(w.bytes());
  out->append(body.data(), body.size());
  return true;
}

FrameDecodeStatus TryDecodeFrame(std::string_view buf, size_t max_body,
                                 FrameHeader* header, std::string_view* body,
                                 size_t* consumed, std::string* error) {
  if (buf.size() < kFrameHeaderSize) return FrameDecodeStatus::kNeedMoreData;
  WireReader r(buf.data(), kFrameHeaderSize);
  const uint32_t magic = r.U32();
  if (magic != kFrameMagic) {
    *error = "bad frame magic";
    return FrameDecodeStatus::kBadFrame;
  }
  header->protocol_version = r.U8();
  header->msg_type = r.U8();
  const uint8_t reserved0 = r.U8();
  const uint8_t reserved1 = r.U8();
  if (reserved0 != 0 || reserved1 != 0) {
    *error = "nonzero reserved header bytes";
    return FrameDecodeStatus::kBadFrame;
  }
  header->request_id = r.U64();
  header->body_len = r.U32();
  header->body_crc = r.U32();
  if (header->body_len > max_body) {
    *error = "frame body of " + std::to_string(header->body_len) +
             " bytes exceeds the " + std::to_string(max_body) + "-byte limit";
    return FrameDecodeStatus::kBadFrame;
  }
  if (buf.size() < kFrameHeaderSize + header->body_len) {
    return FrameDecodeStatus::kNeedMoreData;
  }
  *body = buf.substr(kFrameHeaderSize, header->body_len);
  if (Crc32(*body) != header->body_crc) {
    *error = "frame body CRC mismatch";
    return FrameDecodeStatus::kBadFrame;
  }
  *consumed = kFrameHeaderSize + header->body_len;
  return FrameDecodeStatus::kFrame;
}

// -------------------------------------------------------------- requests

std::string EncodeSuggestCorrectionsRequest(
    const SuggestCorrectionsRequest& req) {
  WireWriter w;
  PutStrings(&w, req.column);
  w.F64(req.options.min_coverage);
  w.U64(req.options.min_minority);
  return std::move(w).Take();
}

bool DecodeSuggestCorrectionsRequest(std::string_view body,
                                     SuggestCorrectionsRequest* req) {
  WireReader r(body);
  if (!GetStrings(&r, &req->column)) return false;
  req->options.min_coverage = r.F64();
  req->options.min_minority = r.U64();
  return RequestOk(r);
}

std::string EncodeAutoFillRequest(const AutoFillRequest& req) {
  WireWriter w;
  PutStrings(&w, req.keys);
  w.U32(static_cast<uint32_t>(req.examples.size()));
  for (const auto& [row, value] : req.examples) {
    w.U64(row);
    w.Str(value);
  }
  w.U64(req.options.min_examples);
  return std::move(w).Take();
}

bool DecodeAutoFillRequest(std::string_view body, AutoFillRequest* req) {
  WireReader r(body);
  if (!GetStrings(&r, &req->keys)) return false;
  const uint32_t n = r.U32();
  if (static_cast<size_t>(n) > r.remaining() / 12 + 1) return false;
  req->examples.clear();
  req->examples.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t row = r.U64();
    req->examples.emplace_back(row, std::string(r.Str()));
  }
  req->options.min_examples = r.U64();
  return RequestOk(r);
}

std::string EncodeAutoJoinRequest(const AutoJoinRequest& req) {
  WireWriter w;
  PutStrings(&w, req.left_keys);
  PutStrings(&w, req.right_keys);
  w.F64(req.options.min_join_rate);
  return std::move(w).Take();
}

bool DecodeAutoJoinRequest(std::string_view body, AutoJoinRequest* req) {
  WireReader r(body);
  if (!GetStrings(&r, &req->left_keys)) return false;
  if (!GetStrings(&r, &req->right_keys)) return false;
  req->options.min_join_rate = r.F64();
  return RequestOk(r);
}

std::string EncodeLookupBatchRequest(const LookupBatchRequest& req) {
  WireWriter w;
  w.U64(req.mapping_index);
  w.U8(req.direction);
  PutStrings(&w, req.values);
  return std::move(w).Take();
}

bool DecodeLookupBatchRequest(std::string_view body, LookupBatchRequest* req) {
  WireReader r(body);
  req->mapping_index = r.U64();
  req->direction = r.U8();
  if (req->direction > 1) return false;
  if (!GetStrings(&r, &req->values)) return false;
  return RequestOk(r);
}

// ------------------------------------------------------------- responses

std::string EncodeSuggestCorrectionsResponse(const ResponseHeader& header,
                                             const AutoCorrectResult& result) {
  WireWriter w;
  PutResponseHeader(&w, header);
  w.U64(static_cast<uint64_t>(static_cast<int64_t>(result.mapping_index)));
  w.Bool(result.inconsistency_detected);
  w.U32(static_cast<uint32_t>(result.suggestions.size()));
  for (const auto& s : result.suggestions) {
    w.U64(s.row);
    w.Str(s.original);
    w.Str(s.suggestion);
  }
  return std::move(w).Take();
}

bool DecodeSuggestCorrectionsResponse(std::string_view body,
                                      ResponseHeader* header,
                                      AutoCorrectResult* result) {
  WireReader r(body);
  GetResponseHeader(&r, header);
  result->mapping_index =
      static_cast<int>(static_cast<int64_t>(r.U64()));
  result->inconsistency_detected = r.Bool();
  const uint32_t n = r.U32();
  if (static_cast<size_t>(n) > r.remaining() / 16 + 1) return false;
  result->suggestions.clear();
  result->suggestions.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    CorrectionSuggestion s;
    s.row = r.U64();
    s.original = std::string(r.Str());
    s.suggestion = std::string(r.Str());
    result->suggestions.push_back(std::move(s));
  }
  return r.ok();
}

std::string EncodeAutoFillResponse(const ResponseHeader& header,
                                   const AutoFillResult& result) {
  WireWriter w;
  PutResponseHeader(&w, header);
  w.U64(static_cast<uint64_t>(static_cast<int64_t>(result.mapping_index)));
  PutStrings(&w, result.values);
  w.U32(static_cast<uint32_t>(result.filled.size()));
  for (const bool f : result.filled) w.Bool(f);
  w.U64(result.num_filled);
  return std::move(w).Take();
}

bool DecodeAutoFillResponse(std::string_view body, ResponseHeader* header,
                            AutoFillResult* result) {
  WireReader r(body);
  GetResponseHeader(&r, header);
  result->mapping_index = static_cast<int>(static_cast<int64_t>(r.U64()));
  if (!GetStrings(&r, &result->values)) return false;
  const uint32_t n = r.U32();
  if (static_cast<size_t>(n) > r.remaining()) return false;
  result->filled.clear();
  result->filled.reserve(n);
  for (uint32_t i = 0; i < n; ++i) result->filled.push_back(r.Bool());
  result->num_filled = r.U64();
  return r.ok();
}

std::string EncodeAutoJoinResponse(const ResponseHeader& header,
                                   const AutoJoinResult& result) {
  WireWriter w;
  PutResponseHeader(&w, header);
  w.U64(static_cast<uint64_t>(static_cast<int64_t>(result.mapping_index)));
  w.Bool(result.left_keys_are_left_side);
  w.U32(static_cast<uint32_t>(result.pairs.size()));
  for (const auto& p : result.pairs) {
    w.U64(p.left_row);
    w.U64(p.right_row);
  }
  return std::move(w).Take();
}

bool DecodeAutoJoinResponse(std::string_view body, ResponseHeader* header,
                            AutoJoinResult* result) {
  WireReader r(body);
  GetResponseHeader(&r, header);
  result->mapping_index = static_cast<int>(static_cast<int64_t>(r.U64()));
  result->left_keys_are_left_side = r.Bool();
  const uint32_t n = r.U32();
  if (static_cast<size_t>(n) > r.remaining() / 16 + 1) return false;
  result->pairs.clear();
  result->pairs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    JoinedRowPair p;
    p.left_row = r.U64();
    p.right_row = r.U64();
    result->pairs.push_back(p);
  }
  return r.ok();
}

std::string EncodeLookupBatchResponse(const ResponseHeader& header,
                                      const LookupBatchResponse& result) {
  WireWriter w;
  PutResponseHeader(&w, header);
  w.U32(static_cast<uint32_t>(result.values.size()));
  for (const auto& v : result.values) {
    w.Bool(v.has_value());
    w.Str(v.has_value() ? std::string_view(*v) : std::string_view());
  }
  return std::move(w).Take();
}

bool DecodeLookupBatchResponse(std::string_view body, ResponseHeader* header,
                               LookupBatchResponse* result) {
  WireReader r(body);
  GetResponseHeader(&r, header);
  const uint32_t n = r.U32();
  if (static_cast<size_t>(n) > r.remaining() / 5 + 1) return false;
  result->values.clear();
  result->values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const bool present = r.Bool();
    std::string_view s = r.Str();
    if (present) {
      result->values.emplace_back(std::string(s));
    } else {
      result->values.emplace_back(std::nullopt);
    }
  }
  return r.ok();
}

std::string EncodeHealthResponse(const ResponseHeader& header,
                                 const HealthResponse& result) {
  WireWriter w;
  PutResponseHeader(&w, header);
  w.U64(result.generations_skipped);
  PutStrings(&w, result.quarantined_files);
  w.U64(result.retries_performed);
  w.U64(result.io_failures);
  return std::move(w).Take();
}

bool DecodeHealthResponse(std::string_view body, ResponseHeader* header,
                          HealthResponse* result) {
  WireReader r(body);
  GetResponseHeader(&r, header);
  result->generations_skipped = r.U64();
  if (!GetStrings(&r, &result->quarantined_files)) return false;
  result->retries_performed = r.U64();
  // Additive trailing field: absent from pre-observability servers, so its
  // default (0) stands when the body ends here.
  result->io_failures = r.ok() && r.remaining() >= 8 ? r.U64() : 0;
  return r.ok();
}

std::string EncodeStatsResponse(const ResponseHeader& header,
                                const StatsResponse& result) {
  WireWriter w;
  PutResponseHeader(&w, header);
  w.U64(result.total_requests);
  w.U64(result.total_errors);
  w.U64(result.malformed_frames);
  w.U64(result.bytes_in);
  w.U64(result.bytes_out);
  w.U64(result.connections_opened);
  w.U64(result.connections_active);
  w.U32(static_cast<uint32_t>(result.per_type.size()));
  for (const auto& [type, s] : result.per_type) {
    w.U8(type);
    w.U64(s.count);
    w.U64(s.errors);
    w.F64(s.p50_us);
    w.F64(s.p99_us);
  }
  w.U64(result.env_retries);
  w.U64(result.env_io_failures);
  return std::move(w).Take();
}

bool DecodeStatsResponse(std::string_view body, ResponseHeader* header,
                         StatsResponse* result) {
  WireReader r(body);
  GetResponseHeader(&r, header);
  result->total_requests = r.U64();
  result->total_errors = r.U64();
  result->malformed_frames = r.U64();
  result->bytes_in = r.U64();
  result->bytes_out = r.U64();
  result->connections_opened = r.U64();
  result->connections_active = r.U64();
  const uint32_t n = r.U32();
  if (static_cast<size_t>(n) > r.remaining() / 33 + 1) return false;
  result->per_type.clear();
  result->per_type.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint8_t type = r.U8();
    RequestTypeStats s;
    s.count = r.U64();
    s.errors = r.U64();
    s.p50_us = r.F64();
    s.p99_us = r.F64();
    result->per_type.emplace_back(type, s);
  }
  // Additive trailing fields (see DecodeHealthResponse).
  result->env_retries = r.ok() && r.remaining() >= 8 ? r.U64() : 0;
  result->env_io_failures = r.ok() && r.remaining() >= 8 ? r.U64() : 0;
  return r.ok();
}

std::string EncodeMetricsTextResponse(const ResponseHeader& header,
                                      const MetricsTextResponse& result) {
  WireWriter w;
  PutResponseHeader(&w, header);
  w.Str(result.text);
  return std::move(w).Take();
}

bool DecodeMetricsTextResponse(std::string_view body, ResponseHeader* header,
                               MetricsTextResponse* result) {
  WireReader r(body);
  GetResponseHeader(&r, header);
  result->text = std::string(r.Str());
  return r.ok();
}

std::string EncodeErrorResponse(const ResponseHeader& header) {
  WireWriter w;
  PutResponseHeader(&w, header);
  return std::move(w).Take();
}

bool DecodeErrorResponse(std::string_view body, ResponseHeader* header) {
  WireReader r(body);
  GetResponseHeader(&r, header);
  return r.ok();
}

}  // namespace ms::net
