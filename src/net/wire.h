// Remote-serving wire protocol (net/): a versioned, length-prefixed binary
// framing plus the request/response messages for the paper's three
// applications, batched lookups, health, and server metrics. This is the
// network boundary ROADMAP item 1 calls for — non-C++ clients talk to a
// MappingService through these bytes instead of linking the library.
//
// Frame layout (fixed 24-byte header, little-endian via persist/wire.h):
//
//   offset size field
//   0      4    magic "MSN1"
//   4      1    protocol_version (kProtocolVersion)
//   5      1    msg_type (MsgType)
//   6      2    reserved, must be zero
//   8      8    request_id (echoed verbatim in the response)
//   16     4    body_len (bounded by max_frame_body)
//   20     4    body_crc (common/crc32 over the body bytes)
//   24     …    body
//
// Every response body begins with a ResponseHeader: a Status code/message
// plus HealthAndVersion — the serving snapshot version, mapping count, and
// health bits taken from the SAME acquired ServingSnapshot that answered
// the request, so a client can detect generation changes on any call
// without a second (possibly differently-timed) Health round trip.
//
// Versioning rules (docs/serving.md "Remote serving"): the header layout is
// frozen; additive body fields append to the end of an existing message
// under the same protocol_version (readers must tolerate trailing bytes
// they do not understand — DecodeX helpers therefore check ok(), not
// AtEnd(), on responses); any incompatible change bumps kProtocolVersion
// and the server rejects other versions with kFailedPrecondition.
//
// Malformed-input contract: TryDecodeFrame never reads past the buffer,
// classifies bad magic / reserved bits / oversized length / CRC mismatch
// as kBadFrame (connection-fatal: resynchronizing a corrupt byte stream is
// guesswork), and an incomplete header or body as kNeedMoreData. Body
// decode failures of a well-framed message are NOT connection-fatal — the
// server answers them with an error response.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "apps/auto_correct.h"
#include "apps/auto_fill.h"
#include "apps/auto_join.h"
#include "common/status.h"

namespace ms::net {

/// "MSN1" as a little-endian u32.
inline constexpr uint32_t kFrameMagic = 0x314E534Du;
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 24;
/// Default upper bound on a frame body; ServerOptions/ClientOptions can
/// lower it. Anything larger is a malformed frame, never an allocation.
inline constexpr uint32_t kMaxFrameBody = 16u << 20;

/// Request types occupy [1, 0x7F); responses echo the request type with the
/// high bit set. kErrorResp answers any request the server could frame but
/// not serve (unknown type, malformed body, version mismatch).
enum class MsgType : uint8_t {
  kSuggestCorrectionsReq = 1,
  kAutoFillReq = 2,
  kAutoJoinReq = 3,
  kLookupBatchReq = 4,
  kHealthReq = 5,
  kStatsReq = 6,
  kMetricsTextReq = 7,
  kSuggestCorrectionsResp = 0x81,
  kAutoFillResp = 0x82,
  kAutoJoinResp = 0x83,
  kLookupBatchResp = 0x84,
  kHealthResp = 0x85,
  kStatsResp = 0x86,
  kMetricsTextResp = 0x87,
  kErrorResp = 0xFF,
};

/// Number of distinct request types (dense 1..kNumRequestTypes) — sizes the
/// server's per-type metrics arrays.
inline constexpr size_t kNumRequestTypes = 7;

/// Stable label for a request type byte in [1, kNumRequestTypes] — the
/// `type` label value of the server's per-type metric series.
const char* RequestTypeName(uint8_t type);

inline constexpr MsgType ResponseTypeFor(MsgType req) {
  return static_cast<MsgType>(static_cast<uint8_t>(req) | 0x80u);
}
inline constexpr bool IsRequestType(uint8_t t) {
  return t >= 1 && t <= kNumRequestTypes;
}

struct FrameHeader {
  uint8_t protocol_version = kProtocolVersion;
  uint8_t msg_type = 0;
  uint64_t request_id = 0;
  uint32_t body_len = 0;
  uint32_t body_crc = 0;
};

/// Serving state of the snapshot that answered a request, carried on every
/// response header. `snapshot_version` is ServingSnapshot::version (0 when
/// nothing is published yet) and `num_mappings` is the size of that same
/// snapshot's store — never a second, later acquisition, so the two can
/// never describe different generations.
struct HealthAndVersion {
  uint64_t snapshot_version = 0;
  uint64_t num_mappings = 0;
  uint64_t generation_served = 0;
  bool degraded = false;

  bool operator==(const HealthAndVersion&) const = default;
};

/// Common prefix of every response body.
struct ResponseHeader {
  uint8_t status_code = 0;  ///< StatusCode; 0 = ok
  std::string message;      ///< empty when ok
  HealthAndVersion health;

  bool ok() const { return status_code == 0; }
  Status ToStatus() const;

  bool operator==(const ResponseHeader&) const = default;
};

// ------------------------------------------------------------- requests

struct SuggestCorrectionsRequest {
  std::vector<std::string> column;
  AutoCorrectOptions options;
};

struct AutoFillRequest {
  std::vector<std::string> keys;
  /// (row index, expected value) pairs, as in apps/auto_fill.h.
  std::vector<std::pair<uint64_t, std::string>> examples;
  AutoFillOptions options;
};

struct AutoJoinRequest {
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;
  AutoJoinOptions options;
};

struct LookupBatchRequest {
  uint64_t mapping_index = 0;
  /// 0 = left→right, 1 = right→left (MappingService::LookupDirection).
  uint8_t direction = 0;
  std::vector<std::string> values;
};

// Health and Stats requests have empty bodies.

// ------------------------------------------------------------ responses

struct LookupBatchResponse {
  std::vector<std::optional<std::string>> values;

  bool operator==(const LookupBatchResponse&) const = default;
};

/// ServiceHealth over the wire (the snapshot-bound fields ride on the
/// ResponseHeader; these are the service-side rotation records).
struct HealthResponse {
  uint64_t generations_skipped = 0;
  std::vector<std::string> quarantined_files;
  uint64_t retries_performed = 0;
  /// Terminal IO failures on the service's env (additive trailing field —
  /// absent on the wire from pre-observability servers, decoded as 0).
  uint64_t io_failures = 0;

  bool operator==(const HealthResponse&) const = default;
};

/// Per-request-type server metrics. Latency quantiles come from a bucketed
/// histogram (net/server.h), so they are estimates with bounded relative
/// error, not exact order statistics.
struct RequestTypeStats {
  uint64_t count = 0;
  uint64_t errors = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;

  bool operator==(const RequestTypeStats&) const = default;
};

struct StatsResponse {
  uint64_t total_requests = 0;
  uint64_t total_errors = 0;
  uint64_t malformed_frames = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t connections_opened = 0;
  uint64_t connections_active = 0;
  /// One entry per request type, keyed by the MsgType request byte,
  /// ascending.
  std::vector<std::pair<uint8_t, RequestTypeStats>> per_type;
  /// Env-level IO observability (additive trailing fields — decoded as 0
  /// from pre-observability servers).
  uint64_t env_retries = 0;
  uint64_t env_io_failures = 0;

  bool operator==(const StatsResponse&) const = default;
};

/// Prometheus-style text exposition of the process metrics registry plus
/// the server's own request metrics — the scrape payload.
struct MetricsTextResponse {
  std::string text;

  bool operator==(const MetricsTextResponse&) const = default;
};

// ------------------------------------------------------------- framing

/// Appends one complete frame (header + body) for `body` to `out`. Returns
/// false — appending nothing — when the body exceeds kMaxFrameBody: framing
/// it anyway would truncate body_len to u32 and desync the stream, so
/// oversized payloads must fail cleanly at the producer (the server answers
/// with an error response instead).
bool AppendFrame(MsgType type, uint64_t request_id, std::string_view body,
                 std::string* out);

enum class FrameDecodeStatus {
  kNeedMoreData,  ///< buffer holds a valid prefix of a frame
  kFrame,         ///< one complete, CRC-verified frame decoded
  kBadFrame,      ///< unrecoverable framing error; close the connection
};

/// Attempts to decode one frame from the front of `buf`. On kFrame, fills
/// `header`, points `body` into `buf` (valid until the buffer mutates), and
/// sets `consumed` to the frame's total size so the caller can pop it. On
/// kBadFrame, `error` names the failure (bad magic, reserved bits, body
/// over `max_body`, CRC mismatch). Protocol-version mismatches decode as
/// kFrame — the server must answer them, not cut the connection.
FrameDecodeStatus TryDecodeFrame(std::string_view buf, size_t max_body,
                                 FrameHeader* header, std::string_view* body,
                                 size_t* consumed, std::string* error);

// ------------------------------------------------ body encode / decode
//
// EncodeX functions are deterministic: the loopback differential tests
// assert the server's bytes equal a local encode of the in-process result.
// DecodeX functions return false on a malformed body (out-of-bounds read or
// leftover trailing bytes on requests; responses tolerate trailing bytes —
// see the versioning rules above).

std::string EncodeSuggestCorrectionsRequest(
    const SuggestCorrectionsRequest& req);
bool DecodeSuggestCorrectionsRequest(std::string_view body,
                                     SuggestCorrectionsRequest* req);

std::string EncodeAutoFillRequest(const AutoFillRequest& req);
bool DecodeAutoFillRequest(std::string_view body, AutoFillRequest* req);

std::string EncodeAutoJoinRequest(const AutoJoinRequest& req);
bool DecodeAutoJoinRequest(std::string_view body, AutoJoinRequest* req);

std::string EncodeLookupBatchRequest(const LookupBatchRequest& req);
bool DecodeLookupBatchRequest(std::string_view body, LookupBatchRequest* req);

std::string EncodeSuggestCorrectionsResponse(const ResponseHeader& header,
                                             const AutoCorrectResult& result);
bool DecodeSuggestCorrectionsResponse(std::string_view body,
                                      ResponseHeader* header,
                                      AutoCorrectResult* result);

std::string EncodeAutoFillResponse(const ResponseHeader& header,
                                   const AutoFillResult& result);
bool DecodeAutoFillResponse(std::string_view body, ResponseHeader* header,
                            AutoFillResult* result);

std::string EncodeAutoJoinResponse(const ResponseHeader& header,
                                   const AutoJoinResult& result);
bool DecodeAutoJoinResponse(std::string_view body, ResponseHeader* header,
                            AutoJoinResult* result);

std::string EncodeLookupBatchResponse(const ResponseHeader& header,
                                      const LookupBatchResponse& result);
bool DecodeLookupBatchResponse(std::string_view body, ResponseHeader* header,
                               LookupBatchResponse* result);

std::string EncodeHealthResponse(const ResponseHeader& header,
                                 const HealthResponse& result);
bool DecodeHealthResponse(std::string_view body, ResponseHeader* header,
                          HealthResponse* result);

std::string EncodeStatsResponse(const ResponseHeader& header,
                                const StatsResponse& result);
bool DecodeStatsResponse(std::string_view body, ResponseHeader* header,
                         StatsResponse* result);

std::string EncodeMetricsTextResponse(const ResponseHeader& header,
                                      const MetricsTextResponse& result);
bool DecodeMetricsTextResponse(std::string_view body, ResponseHeader* header,
                               MetricsTextResponse* result);

/// Error responses carry only the ResponseHeader (status + health).
std::string EncodeErrorResponse(const ResponseHeader& header);
bool DecodeErrorResponse(std::string_view body, ResponseHeader* header);

}  // namespace ms::net
