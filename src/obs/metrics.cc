#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace ms::obs {

namespace {

/// Label values are quoted strings; escape the three characters Prometheus
/// text format requires so arbitrary paths/messages stay one line.
void AppendEscaped(std::string* out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

void AppendLabels(std::string* out, const ExpositionBuilder::Labels& labels) {
  if (labels.empty()) return;
  out->push_back('{');
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out->push_back(',');
    out->append(labels[i].first);
    out->append("=\"");
    AppendEscaped(out, labels[i].second);
    out->push_back('"');
  }
  out->push_back('}');
}

ExpositionBuilder::Labels SortedLabels(ExpositionBuilder::Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

// ------------------------------------------------------------- histogram

uint64_t HistogramSnapshot::TotalCount() const {
  uint64_t total = 0;
  for (const uint64_t b : buckets) total += b;
  return total;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t b = 0; b < kHistogramBuckets; ++b) buckets[b] += other.buckets[b];
  sum += other.sum;
}

double HistogramSnapshot::Quantile(double q) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  uint64_t seen = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) return static_cast<double>(BucketUpperBound(b));
  }
  return static_cast<double>(uint64_t{1} << (kHistogramBuckets - 1));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------------ exposition

std::string ExpositionBuilder::SeriesKey(std::string_view name,
                                         const Labels& labels) {
  std::string key(name);
  AppendLabels(&key, SortedLabels(labels));
  return key;
}

void ExpositionBuilder::Value(std::string_view name, const Labels& labels,
                              uint64_t v) {
  out_.append(name);
  AppendLabels(&out_, SortedLabels(labels));
  out_.push_back(' ');
  out_.append(std::to_string(v));
  out_.push_back('\n');
}

void ExpositionBuilder::Value(std::string_view name, const Labels& labels,
                              int64_t v) {
  out_.append(name);
  AppendLabels(&out_, SortedLabels(labels));
  out_.push_back(' ');
  out_.append(std::to_string(v));
  out_.push_back('\n');
}

void ExpositionBuilder::Histo(std::string_view name, const Labels& labels,
                              const HistogramSnapshot& snap) {
  const Labels sorted = SortedLabels(labels);
  const std::string bucket_name = std::string(name) + "_bucket";
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (snap.buckets[b] == 0) continue;
    cumulative += snap.buckets[b];
    Labels with_le = sorted;
    with_le.emplace_back(
        "le", std::to_string(HistogramSnapshot::BucketUpperBound(b)));
    out_.append(bucket_name);
    AppendLabels(&out_, with_le);  // sorted labels + trailing le
    out_.push_back(' ');
    out_.append(std::to_string(cumulative));
    out_.push_back('\n');
  }
  Labels with_inf = sorted;
  with_inf.emplace_back("le", "+Inf");
  out_.append(bucket_name);
  AppendLabels(&out_, with_inf);
  out_.push_back(' ');
  out_.append(std::to_string(cumulative));
  out_.push_back('\n');
  Value(std::string(name) + "_sum", sorted, snap.sum);
  Value(std::string(name) + "_count", sorted, cumulative);
}

// -------------------------------------------------------------- registry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::GetEntry(std::string_view name,
                                                  const Labels& labels,
                                                  Kind kind) {
  const std::string key = ExpositionBuilder::SeriesKey(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(key);
  if (it == series_.end()) {
    Entry e;
    e.kind = kind;
    e.name = std::string(name);
    e.labels = labels;
    switch (kind) {
      case Kind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
    it = series_.emplace(key, std::move(e)).first;
    return &it->second;
  }
  if (it->second.kind != kind) {
    MS_LOG(Error) << "metric series " << key
                  << " re-registered as a different kind; returning a "
                     "detached instance";
    auto orphan = std::make_unique<Entry>();
    orphan->kind = kind;
    orphan->name = std::string(name);
    orphan->labels = labels;
    switch (kind) {
      case Kind::kCounter:
        orphan->counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        orphan->gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        orphan->histogram = std::make_unique<Histogram>();
        break;
    }
    orphans_.push_back(std::move(orphan));
    return orphans_.back().get();
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const Labels& labels) {
  return GetEntry(name, labels, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, const Labels& labels) {
  return GetEntry(name, labels, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const Labels& labels) {
  return GetEntry(name, labels, Kind::kHistogram)->histogram.get();
}

std::string MetricsRegistry::ExpositionText() const {
  ExpositionBuilder b;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, e] : series_) {
    switch (e.kind) {
      case Kind::kCounter:
        b.Value(e.name, e.labels, e.counter->Value());
        break;
      case Kind::kGauge:
        b.Value(e.name, e.labels, e.gauge->Value());
        break;
      case Kind::kHistogram:
        b.Histo(e.name, e.labels, e.histogram->Snapshot());
        break;
    }
  }
  return std::move(b).Take();
}

void MetricsRegistry::ResetForTests() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, e] : series_) {
    switch (e.kind) {
      case Kind::kCounter:
        e.counter->Reset();
        break;
      case Kind::kGauge:
        e.gauge->Reset();
        break;
      case Kind::kHistogram:
        e.histogram->Reset();
        break;
    }
  }
}

}  // namespace ms::obs
