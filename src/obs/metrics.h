// Process-global observability primitives: named counters, gauges, and
// fixed-bucket power-of-two latency histograms behind one MetricsRegistry,
// plus a stable Prometheus-style text exposition. This is the unified
// metrics model ROADMAP's tuning line reads its numbers from — the synthesis
// stages, the serving tier, the persistence layer, and the net server all
// publish here, and a live MappingServer exposes the whole set over the
// wire as a MetricsText response (net/wire.h).
//
// Design:
//   - Registration is mutex-guarded and returns a STABLE pointer that lives
//     for the process: call-site code registers once (a function-local
//     static) and the hot path is a single relaxed atomic add — no locks,
//     no lookups, no allocation.
//   - The histogram generalizes the one hand-rolled in net/server.cc:
//     kHistogramBuckets power-of-two microsecond buckets where bucket
//     bit_width(v) holds [2^(b-1), 2^b), bucket 0 holds exactly {0}, and the
//     last bucket absorbs everything above 2^(kHistogramBuckets-2).
//     Quantiles are bucket-upper-bound estimates with ~2x relative error —
//     identical math to the server's BucketQuantile, so wire-reported
//     p50/p99 do not change shape.
//   - Reads are snapshot-on-read: Snapshot()/Value() observe each atomic
//     once (relaxed); a snapshot taken during concurrent writes is some
//     valid interleaving, never a torn value.
//   - ExpositionText() renders every registered series sorted by series
//     key, so two scrapes of identical registry state are byte-identical
//     (the wire test asserts this).
//
// Sharding: per-shard instances of the same Histogram type merged at read
// time (HistogramSnapshot::Merge) are the intended pattern for contended
// writers — net/server.h keeps one histogram per worker per request type
// and merges in GetStats(), exactly as it did with the hand-rolled arrays.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ms::obs {

/// Power-of-two microsecond buckets; 40 cover ~17 minutes, far past any
/// request timeout (same coverage net/server.cc chose).
inline constexpr size_t kHistogramBuckets = 40;

/// Monotonically increasing event count. Hot path: one relaxed fetch_add.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (snapshot version, mapping count, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// One coherent read of a histogram — also the merge unit for sharded
/// (per-worker) instances.
struct HistogramSnapshot {
  uint64_t buckets[kHistogramBuckets] = {};
  uint64_t sum = 0;

  uint64_t TotalCount() const;
  void Merge(const HistogramSnapshot& other);

  /// Inclusive upper bound of bucket `b`: 0 for bucket 0, else 2^b - 1.
  static uint64_t BucketUpperBound(size_t b) {
    return b == 0 ? 0 : (uint64_t{1} << b) - 1;
  }

  /// Upper bound of the bucket where the cumulative count crosses rank
  /// `q * total` — an estimate with ~2x relative error (net/server.cc's
  /// BucketQuantile, verbatim semantics: 0.0 when empty; q >= 1.0 lands on
  /// 2^(kHistogramBuckets-1)).
  double Quantile(double q) const;
};

/// Fixed-bucket latency histogram. Record is lock-free: two relaxed adds.
class Histogram {
 public:
  void Record(uint64_t value) {
    const size_t b =
        std::min(static_cast<size_t>(std::bit_width(value)),
                 kHistogramBuckets - 1);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// Renders series in the registry's exposition format — public so sources
/// that keep their own (sharded) storage, like the net server, can append
/// sections in the identical format. Series are emitted in call order; the
/// registry sorts before rendering, external users must emit
/// deterministically themselves.
class ExpositionBuilder {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  void Value(std::string_view name, const Labels& labels, uint64_t v);
  void Value(std::string_view name, const Labels& labels, int64_t v);
  /// Histogram exposition: cumulative `name_bucket{...,le="..."}` lines for
  /// every non-empty bucket plus le="+Inf", then name_sum / name_count.
  void Histo(std::string_view name, const Labels& labels,
             const HistogramSnapshot& snap);
  std::string Take() && { return std::move(out_); }

  /// `name{k="v",...}` with labels sorted by key — the registry's series
  /// identity and the exposition's sample name.
  static std::string SeriesKey(std::string_view name, const Labels& labels);

 private:
  std::string out_;
};

/// The process-global registry. Get* registers on first use (mutex-guarded)
/// and returns the same stable pointer for the same (name, labels) series
/// forever after. A name re-registered as a different metric kind is a
/// call-site bug: the call logs an error and returns a fresh detached
/// instance (valid but never exported) instead of aliasing mismatched
/// storage.
class MetricsRegistry {
 public:
  using Labels = ExpositionBuilder::Labels;

  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, const Labels& labels = {});
  Histogram* GetHistogram(std::string_view name, const Labels& labels = {});

  /// Every registered series, sorted by series key — byte-identical across
  /// calls when no metric moved in between.
  std::string ExpositionText() const;

  /// Zeroes every registered value (pointers stay valid). The registry is
  /// process-global, so tests and benches isolate phases with this rather
  /// than by tearing it down.
  void ResetForTests();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;  ///< bare metric name (no labels)
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetEntry(std::string_view name, const Labels& labels, Kind kind);

  mutable std::mutex mu_;
  /// Keyed by SeriesKey → sorted iteration gives the stable exposition.
  std::map<std::string, Entry> series_;
  /// Kind-mismatch orphans: valid storage, never exported.
  std::vector<std::unique_ptr<Entry>> orphans_;
};

}  // namespace ms::obs
