#include "obs/trace.h"

#include "common/logging.h"

namespace ms::obs {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<uint64_t> g_slow_us{0};
std::atomic<Env*> g_clock{nullptr};
std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint64_t> g_next_span_id{1};

struct ThreadTraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  ///< innermost open span (0 = none)
};

thread_local ThreadTraceContext t_ctx;

uint64_t Now() {
  Env* env = g_clock.load(std::memory_order_acquire);
  return (env != nullptr ? env : Env::Default())->NowMicros();
}

}  // namespace

void SetTracingEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}
bool TracingEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetSlowSpanThresholdUs(uint64_t us) {
  g_slow_us.store(us, std::memory_order_relaxed);
}
uint64_t SlowSpanThresholdUs() {
  return g_slow_us.load(std::memory_order_relaxed);
}

void SetTraceClockForTests(Env* env) {
  g_clock.store(env, std::memory_order_release);
}

TraceRing& GlobalTraceRing() {
  static TraceRing* ring = new TraceRing();
  return *ring;
}

uint64_t CurrentTraceId() { return t_ctx.trace_id; }

void TraceRing::Record(const SpanRecord& span) {
  total_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Never block a serving thread on trace bookkeeping: a contended ring
    // loses the record, not the request's latency budget.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring_[next_] = span;
  next_ = (next_ + 1) % kCapacity;
  if (size_ < kCapacity) ++size_;
}

std::vector<SpanRecord> TraceRing::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(size_);
  const size_t start = (next_ + kCapacity - size_) % kCapacity;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % kCapacity]);
  }
  return out;
}

void TraceRing::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  size_ = 0;
}

TraceScope::TraceScope(uint64_t trace_id)
    : prev_trace_id_(t_ctx.trace_id), prev_span_id_(t_ctx.span_id) {
  t_ctx.trace_id = trace_id;
  t_ctx.span_id = 0;
}

TraceScope::~TraceScope() {
  t_ctx.trace_id = prev_trace_id_;
  t_ctx.span_id = prev_span_id_;
}

TraceSpan::TraceSpan(const char* name, Histogram* latency)
    : name_(name), latency_(latency), enabled_(TracingEnabled()) {
  if (!enabled_) return;
  if (t_ctx.trace_id == 0) {
    t_ctx.trace_id =
        g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
    owns_trace_ = true;
  }
  trace_id_ = t_ctx.trace_id;
  parent_span_id_ = t_ctx.span_id;
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  t_ctx.span_id = span_id_;
  start_us_ = Now();
}

TraceSpan::~TraceSpan() {
  if (!enabled_) return;
  const uint64_t end_us = Now();
  const uint64_t duration = end_us >= start_us_ ? end_us - start_us_ : 0;
  t_ctx.span_id = parent_span_id_;
  // A span that allocated its trace id ends the trace; spans under a
  // TraceScope (or an enclosing span) leave the id for its owner to close.
  if (owns_trace_) t_ctx.trace_id = 0;
  if (latency_ != nullptr) latency_->Record(duration);
  SpanRecord record;
  record.trace_id = trace_id_;
  record.span_id = span_id_;
  record.parent_span_id = parent_span_id_;
  record.name = name_;
  record.start_us = start_us_;
  record.duration_us = duration;
  GlobalTraceRing().Record(record);
  const uint64_t slow = SlowSpanThresholdUs();
  if (slow != 0 && duration >= slow) {
    MS_LOG(Warning) << "slow span" << LogKv("span", name_)
                    << LogKv("trace_id", trace_id_)
                    << LogKv("duration_us", duration)
                    << LogKv("threshold_us", slow);
  }
}

}  // namespace ms::obs
