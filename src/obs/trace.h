// Lightweight request tracing: TraceSpan RAII scopes stamped through the
// injectable Env::NowMicros clock, per-request trace IDs threaded through
// a thread-local context (so MappingService reader calls and every
// SynthesisSession stage share one trace without widening any public
// signature), a bounded in-memory ring of recently completed spans for
// post-hoc inspection, and a threshold-configurable slow-request log line
// through common/logging.
//
// Cost model: when tracing is disabled (SetTracingEnabled(false)) a span is
// one relaxed atomic load and a branch — no clock reads, no ring traffic,
// no histogram record. When enabled it is two NowMicros calls, two relaxed
// histogram adds (if a histogram is attached), and a try_lock ring push
// that DROPS the record under contention rather than waiting — the hot
// path never blocks on the ring (dropped spans are counted).
//
// Span names must be string literals (static storage): records keep the
// pointer, not a copy.
#pragma once

#include <cstdint>
#include <vector>

#include "common/env.h"
#include "obs/metrics.h"

namespace ms::obs {

/// One completed span. `name` points at the literal the span was opened
/// with; parent_span_id is 0 for root spans.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  const char* name = "";
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
};

/// Global tracing switch (default ON — the standing bench gates run with
/// instrumentation live, and bench_obs bounds the overhead at <2%).
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// Spans with duration >= this threshold emit one WARN line through
/// common/logging (LogKv-structured). 0 (default) disables the log.
void SetSlowSpanThresholdUs(uint64_t us);
uint64_t SlowSpanThresholdUs();

/// Overrides the clock spans are stamped with (nullptr restores
/// Env::Default()). The env must outlive every span opened under it;
/// test-only — production spans read the posix steady clock.
void SetTraceClockForTests(Env* env);

/// Bounded ring of the most recently completed spans.
class TraceRing {
 public:
  static constexpr size_t kCapacity = 256;

  /// try_lock push: drops (and counts) the record when the ring is busy.
  void Record(const SpanRecord& span);
  /// Completed spans, oldest first, up to kCapacity.
  std::vector<SpanRecord> Snapshot() const;
  void Clear();
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  SpanRecord ring_[kCapacity];
  size_t next_ = 0;
  size_t size_ = 0;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> total_{0};
};

TraceRing& GlobalTraceRing();

/// Trace id active on the current thread (0 = none).
uint64_t CurrentTraceId();

/// Pins an externally supplied trace id (e.g. the wire request_id) on the
/// current thread for the scope's lifetime; spans opened inside inherit it.
/// Restores the previous context on destruction, so scopes nest.
class TraceScope {
 public:
  explicit TraceScope(uint64_t trace_id);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  uint64_t prev_trace_id_;
  uint64_t prev_span_id_;
};

/// RAII span: opens on construction, records on destruction. Inherits the
/// thread's active trace (allocating a fresh trace id for roots) and makes
/// itself the parent of spans opened inside it. When `latency` is given,
/// the duration (µs) is also recorded there — the one-liner that gives a
/// code path both a trace span and a registry histogram.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* latency = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t trace_id() const { return trace_id_; }

 private:
  const char* name_;
  Histogram* latency_;
  bool enabled_;
  /// True when this span allocated the thread's trace id (no TraceScope or
  /// enclosing span was active) — it then clears the id on close.
  bool owns_trace_ = false;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  uint64_t start_us_ = 0;
};

}  // namespace ms::obs
