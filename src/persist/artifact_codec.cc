#include "persist/artifact_codec.h"

#include <utility>

#include "persist/snapshot.h"
#include "persist/wire.h"

namespace ms::persist {
namespace {

// Field orders below are the on-disk format; reorder only with a
// kSnapshotFormatVersion bump.

void EncodeMatcherStats(const MatcherStats& m, WireWriter* w) {
  w->U64(m.match_calls);
  w->U64(m.myers64_calls);
  w->U64(m.myers_blocked_calls);
  w->U64(m.banded_calls);
  w->U64(m.pattern_cache_hits);
  w->U64(m.pattern_cache_misses);
  w->U64(m.charmask_rejects);
  w->U64(m.cache_flushes);
}

void DecodeMatcherStats(WireReader* r, MatcherStats* m) {
  m->match_calls = r->U64();
  m->myers64_calls = r->U64();
  m->myers_blocked_calls = r->U64();
  m->banded_calls = r->U64();
  m->pattern_cache_hits = r->U64();
  m->pattern_cache_misses = r->U64();
  m->charmask_rejects = r->U64();
  m->cache_flushes = r->U64();
}

void EncodePipelineStats(const PipelineStats& s, WireWriter* w) {
  w->F64(s.index_seconds);
  w->F64(s.extract_seconds);
  w->F64(s.blocking_seconds);
  w->F64(s.scoring_seconds);
  w->F64(s.partition_seconds);
  w->F64(s.resolve_seconds);
  w->F64(s.total_seconds);
  w->F64(s.blocking_map_shuffle_seconds);
  w->F64(s.blocking_count_seconds);
  w->F64(s.blocking_reduce_seconds);
  EncodeMatcherStats(s.scoring.matcher, w);
  w->U64(s.scoring.overlap_merges_skipped);
  w->U64(s.candidates);
  w->U64(s.candidate_pairs);
  w->U64(s.blocking_keys);
  w->U64(s.blocking_dropped_postings);
  w->U64(s.blocking_tainted_candidates);
  w->U64(s.graph_edges);
  w->U64(s.components);
  w->U64(s.partitions);
  w->U64(s.mappings);
  w->U64(s.extraction.tables_seen);
  w->U64(s.extraction.columns_seen);
  w->U64(s.extraction.columns_kept);
  w->U64(s.extraction.pairs_considered);
  w->U64(s.extraction.pairs_kept);
  w->U64(s.extraction.normalize_cache_hits);
  w->U64(s.extraction.normalize_cache_misses);
}

void DecodePipelineStats(WireReader* r, PipelineStats* s) {
  s->index_seconds = r->F64();
  s->extract_seconds = r->F64();
  s->blocking_seconds = r->F64();
  s->scoring_seconds = r->F64();
  s->partition_seconds = r->F64();
  s->resolve_seconds = r->F64();
  s->total_seconds = r->F64();
  s->blocking_map_shuffle_seconds = r->F64();
  s->blocking_count_seconds = r->F64();
  s->blocking_reduce_seconds = r->F64();
  DecodeMatcherStats(r, &s->scoring.matcher);
  s->scoring.overlap_merges_skipped = r->U64();
  s->candidates = r->U64();
  s->candidate_pairs = r->U64();
  s->blocking_keys = r->U64();
  s->blocking_dropped_postings = r->U64();
  s->blocking_tainted_candidates = r->U64();
  s->graph_edges = r->U64();
  s->components = r->U64();
  s->partitions = r->U64();
  s->mappings = r->U64();
  s->extraction.tables_seen = r->U64();
  s->extraction.columns_seen = r->U64();
  s->extraction.columns_kept = r->U64();
  s->extraction.pairs_considered = r->U64();
  s->extraction.pairs_kept = r->U64();
  s->extraction.normalize_cache_hits = r->U64();
  s->extraction.normalize_cache_misses = r->U64();
}

void EncodePairList(const std::vector<ValuePair>& pairs, WireWriter* w) {
  w->U64(pairs.size());
  for (const ValuePair& p : pairs) {
    w->U32(p.left);
    w->U32(p.right);
  }
}

/// Pairs are stored canonical (sorted, deduped — BinaryTable's invariant),
/// so FromPairs on the decode side reproduces the identical table.
bool DecodePairList(WireReader* r, size_t pool_size,
                    std::vector<ValuePair>* pairs) {
  const uint64_t n = r->U64();
  if (n > r->remaining() / 8) return false;  // 8 bytes per encoded pair
  pairs->clear();
  pairs->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    ValuePair p{r->U32(), r->U32()};
    if (p.left >= pool_size || p.right >= pool_size) return false;
    pairs->push_back(p);
  }
  return r->ok();
}

void EncodeIdList(const std::vector<BinaryTableId>& ids, WireWriter* w) {
  w->U64(ids.size());
  for (BinaryTableId id : ids) w->U32(id);
}

bool DecodeIdList(WireReader* r, std::vector<BinaryTableId>* ids) {
  const uint64_t n = r->U64();
  if (n > r->remaining() / 4) return false;
  ids->clear();
  ids->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) ids->push_back(r->U32());
  return r->ok();
}

std::string EncodeCandidates(const CandidateSet& candidates) {
  WireWriter w;
  EncodePipelineStats(candidates.stats, &w);
  const std::vector<BinaryTable>& tables = candidates.tables();
  w.U64(tables.size());
  for (const BinaryTable& t : tables) {
    w.U32(t.id);
    w.U32(t.source_table);
    w.U8(static_cast<uint8_t>(t.source));
    w.Str(t.domain);
    w.Str(t.left_name);
    w.Str(t.right_name);
    EncodePairList(t.pairs(), &w);
  }
  // Format v2: append provenance — the extraction signatures incremental
  // corpus growth re-checks, so restore-then-append works.
  w.U32(candidates.generation);
  w.U64(candidates.source_tables);
  w.U64(candidates.kept_offsets.size());
  for (uint32_t o : candidates.kept_offsets) w.U32(o);
  w.U64(candidates.kept_columns.size());
  for (uint32_t c : candidates.kept_columns) w.U32(c);
  return w.Take();
}

Status DecodeCandidates(std::string_view payload, size_t pool_size,
                        CandidateSet* out) {
  WireReader r(payload);
  DecodePipelineStats(&r, &out->stats);
  const uint64_t n = r.U64();
  // 29 bytes = the minimum encoded table (all strings and pairs empty);
  // bounding the count by it keeps a bad count from demanding a giant
  // reserve instead of returning DataLoss.
  if (!r.ok() || n > UINT32_MAX || n > r.remaining() / 29) {
    return Status::DataLoss("candidates section is malformed");
  }
  out->owned.clear();
  out->owned.reserve(static_cast<size_t>(n));
  std::vector<ValuePair> pairs;
  for (uint64_t i = 0; i < n; ++i) {
    BinaryTableId id = r.U32();
    uint32_t source_table = r.U32();
    uint8_t source = r.U8();
    std::string_view domain = r.Str();
    std::string_view left_name = r.Str();
    std::string_view right_name = r.Str();
    if (!DecodePairList(&r, pool_size, &pairs)) {
      return Status::DataLoss("candidates section has a malformed table");
    }
    // Dense ids are the graph-vertex invariant every downstream stage
    // assumes (AdoptCandidates enforces the same).
    if (id != static_cast<BinaryTableId>(i) ||
        source > static_cast<uint8_t>(TableSource::kTrusted)) {
      return Status::DataLoss("candidates section has invalid table ids");
    }
    BinaryTable t = BinaryTable::FromPairs(std::move(pairs));
    t.id = id;
    t.source_table = source_table;
    t.source = static_cast<TableSource>(source);
    t.domain = std::string(domain);
    t.left_name = std::string(left_name);
    t.right_name = std::string(right_name);
    out->owned.push_back(std::move(t));
    pairs.clear();
  }
  out->generation = r.U32();
  out->source_tables = r.U64();
  const uint64_t num_offsets = r.U64();
  if (!r.ok() || num_offsets > r.remaining() / 4) {
    return Status::DataLoss("candidates section has malformed signatures");
  }
  out->kept_offsets.clear();
  out->kept_offsets.reserve(static_cast<size_t>(num_offsets));
  for (uint64_t i = 0; i < num_offsets; ++i) {
    out->kept_offsets.push_back(r.U32());
  }
  const uint64_t num_kept = r.U64();
  if (!r.ok() || num_kept > r.remaining() / 4) {
    return Status::DataLoss("candidates section has malformed signatures");
  }
  out->kept_columns.clear();
  out->kept_columns.reserve(static_cast<size_t>(num_kept));
  for (uint64_t i = 0; i < num_kept; ++i) {
    out->kept_columns.push_back(r.U32());
  }
  // Signature invariants: adopted candidate sets legitimately persist with
  // no signatures (they cannot be appended to); extracted ones carry one
  // monotone offset run per source table ending at the kept-column count.
  const bool no_signatures =
      num_offsets == 0 && num_kept == 0 && out->source_tables == 0;
  if (!no_signatures) {
    bool valid_csr = num_offsets == out->source_tables + 1 &&
                     !out->kept_offsets.empty() &&
                     out->kept_offsets.front() == 0 &&
                     out->kept_offsets.back() == num_kept;
    for (size_t i = 0; valid_csr && i + 1 < out->kept_offsets.size(); ++i) {
      valid_csr = out->kept_offsets[i] <= out->kept_offsets[i + 1];
    }
    if (!valid_csr) {
      return Status::DataLoss(
          "candidates section has inconsistent extraction signatures");
    }
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("candidates section has trailing bytes");
  }
  return Status::OK();
}

/// Format v3 maintenance section: the state RemoveTables/ReplaceTables
/// accumulate, without which a restored session would see tombstoned
/// tables as live and would pay a full coherence re-check on the first
/// mutation. Additive — none of the v2 sections changed layout.
std::string EncodeMaintenance(const CandidateSet& candidates) {
  WireWriter w;
  w.U64(candidates.tombstoned_tables.size());
  for (uint32_t t : candidates.tombstoned_tables) w.U32(t);
  // The dead bitmap as an id list, like the taint bitmap: removals are
  // sparse relative to the candidate count.
  uint64_t num_dead = 0;
  for (uint8_t d : candidates.dead) num_dead += d;
  w.U64(num_dead);
  for (size_t id = 0; id < candidates.dead.size(); ++id) {
    if (candidates.dead[id]) w.U32(static_cast<uint32_t>(id));
  }
  w.U64(candidates.margin_offsets.size());
  for (uint32_t o : candidates.margin_offsets) w.U32(o);
  w.U64(candidates.margins.size());
  for (const CoherenceProfile& p : candidates.margins) {
    w.F64(p.score);
    w.F64(p.sum_pos);
    w.U32(p.pairs);
    w.U32(p.sup_pos);
    w.U32(p.sup_zero);
    w.U32(p.b_max);
    w.U32(p.n_eval);
  }
  return w.Take();
}

Status DecodeMaintenance(std::string_view payload, size_t num_candidates,
                         uint64_t source_tables, CandidateSet* out) {
  WireReader r(payload);
  const uint64_t num_tombstoned = r.U64();
  if (!r.ok() || num_tombstoned > r.remaining() / 4 ||
      num_tombstoned > source_tables) {
    return Status::DataLoss("maintenance section is malformed");
  }
  out->tombstoned_tables.clear();
  out->tombstoned_tables.reserve(static_cast<size_t>(num_tombstoned));
  for (uint64_t i = 0; i < num_tombstoned; ++i) {
    const uint32_t t = r.U32();
    // Sorted-unique is the in-memory invariant every consumer relies on.
    if (t >= source_tables ||
        (!out->tombstoned_tables.empty() && t <= out->tombstoned_tables.back())) {
      return Status::DataLoss(
          "maintenance section has an invalid tombstoned-table list");
    }
    out->tombstoned_tables.push_back(t);
  }
  const uint64_t num_dead = r.U64();
  if (!r.ok() || num_dead > r.remaining() / 4 || num_dead > num_candidates) {
    return Status::DataLoss("maintenance section has a malformed dead list");
  }
  out->dead.clear();
  if (num_dead > 0) {
    out->dead.assign(num_candidates, 0);
    for (uint64_t i = 0; i < num_dead; ++i) {
      const uint32_t id = r.U32();
      if (id >= num_candidates || out->dead[id] != 0) {
        return Status::DataLoss(
            "maintenance dead list references candidates outside the "
            "candidate set");
      }
      out->dead[id] = 1;
    }
  }
  const uint64_t num_offsets = r.U64();
  if (!r.ok() || num_offsets > r.remaining() / 4) {
    return Status::DataLoss("maintenance section has a malformed margin CSR");
  }
  out->margin_offsets.clear();
  out->margin_offsets.reserve(static_cast<size_t>(num_offsets));
  for (uint64_t i = 0; i < num_offsets; ++i) {
    out->margin_offsets.push_back(r.U32());
  }
  const uint64_t num_margins = r.U64();
  if (!r.ok() || num_margins > r.remaining() / 36) {  // 36 bytes per profile
    return Status::DataLoss("maintenance section has a malformed margin "
                            "cache");
  }
  out->margins.clear();
  out->margins.reserve(static_cast<size_t>(num_margins));
  for (uint64_t i = 0; i < num_margins; ++i) {
    CoherenceProfile p;
    p.score = r.F64();
    p.sum_pos = r.F64();
    p.pairs = r.U32();
    p.sup_pos = r.U32();
    p.sup_zero = r.U32();
    p.b_max = r.U32();
    p.n_eval = r.U32();
    out->margins.push_back(p);
  }
  // The margin cache is either absent or a CSR over every source table.
  if (!out->margin_offsets.empty()) {
    bool valid_csr = num_offsets == source_tables + 1 &&
                     out->margin_offsets.front() == 0 &&
                     out->margin_offsets.back() == num_margins;
    for (size_t i = 0; valid_csr && i + 1 < out->margin_offsets.size(); ++i) {
      valid_csr = out->margin_offsets[i] <= out->margin_offsets[i + 1];
    }
    if (!valid_csr) {
      return Status::DataLoss(
          "maintenance section has an inconsistent margin CSR");
    }
  } else if (num_margins != 0) {
    return Status::DataLoss(
        "maintenance section has margins without a margin CSR");
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("maintenance section has trailing bytes");
  }
  return Status::OK();
}

std::string EncodeBlocked(const BlockedPairs& blocked) {
  WireWriter w;
  EncodePipelineStats(blocked.stats, &w);
  w.F64(blocked.blocking.map_shuffle_seconds);
  w.F64(blocked.blocking.count_seconds);
  w.F64(blocked.blocking.reduce_seconds);
  w.U64(blocked.blocking.keys);
  w.U64(blocked.blocking.dropped_postings);
  w.U64(blocked.blocking.tainted_candidates);
  w.Bool(blocked.blocking.exact_counts);
  w.U64(blocked.pairs.size());
  for (const CandidateTablePair& p : blocked.pairs) {
    w.U32(p.a);
    w.U32(p.b);
    w.U32(p.shared_pairs);
    w.U32(p.shared_lefts);
    w.Bool(p.counts_exact);
  }
  // Format v2: the taint bitmap as an id list — the state delta blocking
  // needs to extend truncation bookkeeping across appends.
  uint64_t num_tainted = 0;
  for (uint8_t t : blocked.blocking.tainted) num_tainted += t;
  w.U64(num_tainted);
  for (size_t id = 0; id < blocked.blocking.tainted.size(); ++id) {
    if (blocked.blocking.tainted[id]) w.U32(static_cast<uint32_t>(id));
  }
  return w.Take();
}

Status DecodeBlocked(std::string_view payload, size_t num_candidates,
                     BlockedPairs* out) {
  WireReader r(payload);
  DecodePipelineStats(&r, &out->stats);
  out->blocking.map_shuffle_seconds = r.F64();
  out->blocking.count_seconds = r.F64();
  out->blocking.reduce_seconds = r.F64();
  out->blocking.keys = r.U64();
  out->blocking.dropped_postings = r.U64();
  out->blocking.tainted_candidates = r.U64();
  out->blocking.exact_counts = r.Bool();
  const uint64_t n = r.U64();
  if (!r.ok() || n > r.remaining() / 17) {  // 17 bytes per encoded pair
    return Status::DataLoss("blocked-pairs section is malformed");
  }
  out->pairs.clear();
  out->pairs.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    CandidateTablePair p;
    p.a = r.U32();
    p.b = r.U32();
    p.shared_pairs = r.U32();
    p.shared_lefts = r.U32();
    p.counts_exact = r.Bool();
    if (p.a >= num_candidates || p.b >= num_candidates || p.a >= p.b) {
      return Status::DataLoss("blocked-pairs section references candidates "
                              "outside the candidate set");
    }
    out->pairs.push_back(p);
  }
  const uint64_t num_tainted = r.U64();
  if (!r.ok() || num_tainted > r.remaining() / 4 ||
      num_tainted > num_candidates) {
    return Status::DataLoss("blocked-pairs section has a malformed taint "
                            "list");
  }
  out->blocking.tainted.clear();
  if (num_tainted > 0) {
    out->blocking.tainted.assign(num_candidates, 0);
    for (uint64_t i = 0; i < num_tainted; ++i) {
      const uint32_t id = r.U32();
      if (id >= num_candidates) {
        return Status::DataLoss(
            "blocked-pairs taint list references candidates outside the "
            "candidate set");
      }
      out->blocking.tainted[id] = 1;
    }
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("blocked-pairs section has trailing bytes");
  }
  return Status::OK();
}

std::string EncodeScored(const ScoredGraph& scored) {
  WireWriter w;
  EncodePipelineStats(scored.stats, &w);
  w.U64(scored.graph.num_vertices());
  w.U64(scored.graph.num_edges());
  for (const CompatEdge& e : scored.graph.edges()) {
    w.U32(e.u);
    w.U32(e.v);
    w.F64(e.w_pos);
    w.F64(e.w_neg);
  }
  return w.Take();
}

Status DecodeScored(std::string_view payload, size_t num_candidates,
                    ScoredGraph* out) {
  WireReader r(payload);
  DecodePipelineStats(&r, &out->stats);
  const uint64_t num_vertices = r.U64();
  const uint64_t num_edges = r.U64();
  if (!r.ok() || num_vertices != num_candidates ||
      num_edges > r.remaining() / 24) {  // 24 bytes per encoded edge
    return Status::DataLoss("scored-graph section is malformed");
  }
  out->graph = CompatibilityGraph(static_cast<size_t>(num_vertices));
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t u = r.U32();
    uint32_t v = r.U32();
    double w_pos = r.F64();
    double w_neg = r.F64();
    if (u >= num_vertices || v >= num_vertices || u == v) {
      return Status::DataLoss("scored-graph section has an invalid edge");
    }
    out->graph.AddEdge(u, v, w_pos, w_neg);
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("scored-graph section has trailing bytes");
  }
  out->graph.Finalize();
  return Status::OK();
}

std::string EncodeResult(const SynthesisResult& result) {
  WireWriter w;
  EncodePipelineStats(result.stats, &w);
  w.U64(result.mappings.size());
  for (const SynthesizedMapping& m : result.mappings) {
    EncodePairList(m.merged.pairs(), &w);
    EncodeIdList(m.member_tables, &w);
    EncodeIdList(m.kept_tables, &w);
    w.U64(m.num_domains);
    w.Str(m.left_label);
    w.Str(m.right_label);
  }
  return w.Take();
}

Status DecodeResult(std::string_view payload, size_t pool_size,
                    SynthesisResult* out) {
  WireReader r(payload);
  DecodePipelineStats(&r, &out->stats);
  const uint64_t n = r.U64();
  // 40 bytes = the minimum encoded mapping (empty pair/id lists + labels).
  if (!r.ok() || n > r.remaining() / 40) {
    return Status::DataLoss("result section is malformed");
  }
  out->mappings.clear();
  out->mappings.reserve(static_cast<size_t>(n));
  std::vector<ValuePair> pairs;
  for (uint64_t i = 0; i < n; ++i) {
    SynthesizedMapping m;
    if (!DecodePairList(&r, pool_size, &pairs) ||
        !DecodeIdList(&r, &m.member_tables) ||
        !DecodeIdList(&r, &m.kept_tables)) {
      return Status::DataLoss("result section has a malformed mapping");
    }
    m.merged = BinaryTable::FromPairs(std::move(pairs));
    m.num_domains = r.U64();
    m.left_label = std::string(r.Str());
    m.right_label = std::string(r.Str());
    out->mappings.push_back(std::move(m));
    pairs.clear();
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("result section has trailing bytes");
  }
  return Status::OK();
}

struct Lineage {
  bool has_blocked = false;
  bool has_scored = false;
  bool has_result = false;
  uint64_t candidates_id = 0;
  uint64_t blocked_id = 0;
  uint64_t scored_id = 0;
  uint64_t blocked_candidates_id = 0;
  uint64_t scored_candidates_id = 0;
};

std::string EncodeLineage(const Lineage& l) {
  WireWriter w;
  w.Bool(l.has_blocked);
  w.Bool(l.has_scored);
  w.Bool(l.has_result);
  w.U64(l.candidates_id);
  w.U64(l.blocked_id);
  w.U64(l.scored_id);
  w.U64(l.blocked_candidates_id);
  w.U64(l.scored_candidates_id);
  return w.Take();
}

Status DecodeLineage(std::string_view payload, Lineage* l) {
  WireReader r(payload);
  l->has_blocked = r.Bool();
  l->has_scored = r.Bool();
  l->has_result = r.Bool();
  l->candidates_id = r.U64();
  l->blocked_id = r.U64();
  l->scored_id = r.U64();
  l->blocked_candidates_id = r.U64();
  l->scored_candidates_id = r.U64();
  if (!r.AtEnd()) return Status::DataLoss("lineage section is malformed");
  return Status::OK();
}

}  // namespace

std::string EncodeStringPool(const StringPool& pool) {
  WireWriter w;
  const size_t n = pool.size();
  w.U64(n);
  for (size_t i = 0; i < n; ++i) {
    w.U32(static_cast<uint32_t>(pool.Get(static_cast<ValueId>(i)).size()));
  }
  for (size_t i = 0; i < n; ++i) {
    std::string_view s = pool.Get(static_cast<ValueId>(i));
    w.Raw(s.data(), s.size());
  }
  return w.Take();
}

Status DecodeStringPoolViews(std::string_view payload,
                             std::vector<std::string_view>* views) {
  WireReader r(payload);
  const uint64_t n = r.U64();
  if (!r.ok() || n > r.remaining() / 4 || n > UINT32_MAX) {
    return Status::DataLoss("string-pool section is malformed");
  }
  std::vector<uint32_t> lens(static_cast<size_t>(n));
  uint64_t total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    lens[i] = r.U32();
    total += lens[i];
  }
  if (!r.ok() || total != r.remaining()) {
    return Status::DataLoss("string-pool section blob size mismatch");
  }
  views->clear();
  views->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    views->push_back(r.View(lens[i]));
  }
  return Status::OK();
}

Status SaveSessionSnapshot(const std::string& path,
                           uint64_t options_fingerprint,
                           const CandidateSet& candidates,
                           const BlockedPairs* blocked,
                           const ScoredGraph* scored,
                           const SynthesisResult* result, Env* env) {
  if (candidates.pool == nullptr) {
    return Status::InvalidArgument(
        "SaveSessionSnapshot: candidate set has no string pool");
  }
  ContainerWriter writer(kSessionSnapshotMagic, options_fingerprint);
  writer.AddSection(kSectionStringPool, EncodeStringPool(*candidates.pool));
  writer.AddSection(kSectionCandidates, EncodeCandidates(candidates));
  writer.AddSection(kSectionMaintenance, EncodeMaintenance(candidates));
  Lineage lineage;
  lineage.candidates_id = candidates.artifact_id;
  if (blocked != nullptr) {
    lineage.has_blocked = true;
    lineage.blocked_id = blocked->artifact_id;
    lineage.blocked_candidates_id = blocked->candidates_id;
    writer.AddSection(kSectionBlockedPairs, EncodeBlocked(*blocked));
  }
  if (scored != nullptr) {
    lineage.has_scored = true;
    lineage.scored_id = scored->artifact_id;
    lineage.scored_candidates_id = scored->candidates_id;
    writer.AddSection(kSectionScoredGraph, EncodeScored(*scored));
  }
  if (result != nullptr) {
    lineage.has_result = true;
    writer.AddSection(kSectionResult, EncodeResult(*result));
  }
  writer.AddSection(kSectionLineage, EncodeLineage(lineage));
  return writer.WriteFile(path, env);
}

Result<SessionSnapshot> LoadSessionSnapshot(const std::string& path,
                                            uint64_t expected_fingerprint,
                                            Env* env) {
  Result<ContainerReader> opened =
      ContainerReader::Open(path, kSessionSnapshotMagic, env);
  if (!opened.ok()) return opened.status();
  const ContainerReader& reader = opened.value();
  MS_RETURN_IF_ERROR(reader.RequireKnownSections(
      {kSectionStringPool, kSectionCandidates, kSectionBlockedPairs,
       kSectionScoredGraph, kSectionResult, kSectionLineage,
       kSectionMaintenance}));
  if (reader.options_fingerprint() != expected_fingerprint) {
    return Status::FailedPrecondition(
        "snapshot options fingerprint mismatch: the snapshot was saved "
        "under a different synthesis configuration than this session's "
        "(re-create the session with the saving options, or re-synthesize)");
  }

  // Required sections. A missing section means framing survived the CRCs
  // but the content set is inconsistent — corruption, not API misuse.
  Result<std::string_view> pool_payload = reader.Section(kSectionStringPool);
  Result<std::string_view> cand_payload = reader.Section(kSectionCandidates);
  Result<std::string_view> lineage_payload = reader.Section(kSectionLineage);
  if (!pool_payload.ok() || !cand_payload.ok() || !lineage_payload.ok()) {
    return Status::DataLoss("snapshot is missing a required section: " + path);
  }
  Lineage lineage;
  MS_RETURN_IF_ERROR(DecodeLineage(lineage_payload.value(), &lineage));
  if (lineage.has_blocked != reader.HasSection(kSectionBlockedPairs) ||
      lineage.has_scored != reader.HasSection(kSectionScoredGraph) ||
      lineage.has_result != reader.HasSection(kSectionResult)) {
    return Status::DataLoss(
        "snapshot sections disagree with its lineage manifest: " + path);
  }

  SessionSnapshot out;
  std::vector<std::string_view> views;
  MS_RETURN_IF_ERROR(DecodeStringPoolViews(pool_payload.value(), &views));
  out.pool = std::make_shared<StringPool>();
  out.pool->AdoptExternal(views);
  out.pool->RetainBacking(reader.file());

  out.candidates = std::make_unique<CandidateSet>();
  MS_RETURN_IF_ERROR(
      DecodeCandidates(cand_payload.value(), views.size(), out.candidates.get()));
  out.candidates->pool = out.pool.get();
  out.candidates->artifact_id = lineage.candidates_id;
  const size_t num_candidates = out.candidates->owned.size();

  // v2 snapshots have no maintenance section; they restore with empty
  // maintenance state — no tombstones, no dead candidates, no margin cache
  // (the first mutation pays full coherence re-checks, exactly as a v2
  // build would have).
  if (reader.HasSection(kSectionMaintenance)) {
    MS_RETURN_IF_ERROR(DecodeMaintenance(
        reader.Section(kSectionMaintenance).value(), num_candidates,
        out.candidates->source_tables, out.candidates.get()));
  }

  if (lineage.has_blocked) {
    out.blocked = std::make_unique<BlockedPairs>();
    MS_RETURN_IF_ERROR(DecodeBlocked(reader.Section(kSectionBlockedPairs).value(),
                                     num_candidates, out.blocked.get()));
    out.blocked->artifact_id = lineage.blocked_id;
    out.blocked->candidates_id = lineage.blocked_candidates_id;
  }
  if (lineage.has_scored) {
    out.scored = std::make_unique<ScoredGraph>();
    MS_RETURN_IF_ERROR(DecodeScored(reader.Section(kSectionScoredGraph).value(),
                                    num_candidates, out.scored.get()));
    out.scored->artifact_id = lineage.scored_id;
    out.scored->candidates_id = lineage.scored_candidates_id;
  }
  if (lineage.has_result) {
    out.has_result = true;
    MS_RETURN_IF_ERROR(DecodeResult(reader.Section(kSectionResult).value(),
                                    views.size(), &out.result));
  }
  return out;
}

}  // namespace ms::persist
