// Encoders/decoders between the session's stage artifacts and the
// persist/snapshot.h container sections, plus the whole-file
// Save/LoadSessionSnapshot entry points SynthesisSession wraps. The
// section-level functions are exposed for the corpus store (which shares
// the string-pool layout) and for the fuzz harness, which drives Load
// directly against mutated bytes.
//
// String-pool section layout (shared by *.mssnap and *.mscorp):
//   u64 count; u32 byte_len[count]; u8 blob[sum(byte_len)]
// Decoding builds ids 0..count-1 as string_views straight into the blob —
// the zero-copy read path. Everything else (tables, pairs, graph edges,
// stats) is fixed-width fields; see the .cc for the exact field orders,
// which are part of the format and only change with a version bump.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "synth/session.h"
#include "table/string_pool.h"

namespace ms::persist {

// ----------------------------------------------------------- pool sections

/// Appends the pool section payload for ids [0, pool.size()).
std::string EncodeStringPool(const StringPool& pool);

/// Decodes a pool section into per-string views aliasing `payload` (which
/// must stay mapped — pin the container's MmapFile). DataLoss on any
/// structural inconsistency.
Status DecodeStringPoolViews(std::string_view payload,
                             std::vector<std::string_view>* views);

// ------------------------------------------------------- session snapshots

/// Serializes `candidates` (+ optional downstream artifacts) with
/// fingerprint `options_fingerprint` into the *.mssnap container at `path`.
/// Lineage ids and cumulative PipelineStats are embedded verbatim. All IO
/// goes through `env` (nullptr = Env::Default()).
Status SaveSessionSnapshot(const std::string& path,
                           uint64_t options_fingerprint,
                           const CandidateSet& candidates,
                           const BlockedPairs* blocked,
                           const ScoredGraph* scored,
                           const SynthesisResult* result,
                           Env* env = nullptr);

/// Loads `path`, verifying integrity (DataLoss on corruption) and the
/// options fingerprint (FailedPrecondition on mismatch — pass the restoring
/// session's OptionsFingerprint). The returned artifacts have null
/// `session` pointers; SynthesisSession::RestoreSnapshot stamps them.
Result<SessionSnapshot> LoadSessionSnapshot(const std::string& path,
                                            uint64_t expected_fingerprint,
                                            Env* env = nullptr);

}  // namespace ms::persist
