#include "persist/corpus_store.h"

#include <utility>
#include <vector>

#include "persist/artifact_codec.h"
#include "persist/snapshot.h"
#include "persist/wire.h"
#include "table/tsv.h"

namespace ms::persist {
namespace {

std::string EncodeTables(const TableCorpus& corpus) {
  WireWriter w;
  w.U64(corpus.size());
  for (const Table& t : corpus.tables()) {
    w.U8(static_cast<uint8_t>(t.source));
    w.Str(t.domain);
    w.U32(static_cast<uint32_t>(t.columns.size()));
    for (const Column& c : t.columns) {
      w.Str(c.name);
      w.U64(c.cells.size());
      for (ValueId v : c.cells) w.U32(v);
    }
  }
  return w.Take();
}

Status DecodeTables(std::string_view payload, size_t pool_size,
                    TableCorpus* corpus) {
  WireReader r(payload);
  const uint64_t n = r.U64();
  if (!r.ok() || n > UINT32_MAX) {
    return Status::DataLoss("corpus store table section is malformed");
  }
  for (uint64_t i = 0; i < n; ++i) {
    Table t;
    const uint8_t source = r.U8();
    if (source > static_cast<uint8_t>(TableSource::kTrusted)) {
      return Status::DataLoss("corpus store has an invalid table source");
    }
    t.source = static_cast<TableSource>(source);
    t.domain = std::string(r.Str());
    const uint32_t num_columns = r.U32();
    if (!r.ok() || num_columns > r.remaining()) {
      return Status::DataLoss("corpus store has a malformed table");
    }
    t.columns.reserve(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      Column col;
      col.name = std::string(r.Str());
      const uint64_t cells = r.U64();
      if (!r.ok() || cells > r.remaining() / 4) {
        return Status::DataLoss("corpus store has a malformed column");
      }
      col.cells.reserve(static_cast<size_t>(cells));
      for (uint64_t k = 0; k < cells; ++k) {
        const ValueId v = r.U32();
        if (v >= pool_size) {
          return Status::DataLoss(
              "corpus store cell references a value outside the pool");
        }
        col.cells.push_back(v);
      }
      t.columns.push_back(std::move(col));
    }
    corpus->Add(std::move(t));
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("corpus store table section has trailing bytes");
  }
  return Status::OK();
}

}  // namespace

Status SaveCorpusStore(const TableCorpus& corpus, const std::string& path,
                       Env* env) {
  ContainerWriter writer(kCorpusStoreMagic, /*options_fingerprint=*/0);
  writer.AddSection(kSectionCorpusPool, EncodeStringPool(corpus.pool()));
  writer.AddSection(kSectionCorpusTables, EncodeTables(corpus));
  return writer.WriteFile(path, env);
}

Status ConvertTsvCorpusToStore(const std::string& tsv_path,
                               const std::string& store_path, Env* env) {
  TableCorpus corpus;
  MS_RETURN_IF_ERROR(LoadCorpus(tsv_path, &corpus, env));
  return SaveCorpusStore(corpus, store_path, env);
}

Result<TableCorpus> OpenCorpusStore(const std::string& path, Env* env) {
  Result<ContainerReader> opened =
      ContainerReader::Open(path, kCorpusStoreMagic, env);
  if (!opened.ok()) return opened.status();
  const ContainerReader& reader = opened.value();
  MS_RETURN_IF_ERROR(reader.RequireKnownSections(
      {kSectionCorpusPool, kSectionCorpusTables}));
  Result<std::string_view> pool_payload = reader.Section(kSectionCorpusPool);
  Result<std::string_view> table_payload =
      reader.Section(kSectionCorpusTables);
  if (!pool_payload.ok() || !table_payload.ok()) {
    return Status::DataLoss("corpus store is missing a required section: " +
                            path);
  }
  std::vector<std::string_view> views;
  MS_RETURN_IF_ERROR(DecodeStringPoolViews(pool_payload.value(), &views));

  TableCorpus corpus;
  corpus.pool().AdoptExternal(views);
  corpus.pool().RetainBacking(reader.file());
  MS_RETURN_IF_ERROR(
      DecodeTables(table_payload.value(), views.size(), &corpus));
  return corpus;
}

}  // namespace ms::persist
