// Mmap-backed corpus store (*.mscorp): the binary, load-optimized form of a
// table corpus. The TSV reader (table/tsv.h) parses multi-GB dumps cell by
// cell — split, normalize-free copy, per-string intern — while the store
// reopens the same corpus by mapping the file and adopting every distinct
// value as a zero-copy string_view over the mapping (StringPool::
// AdoptExternal): no cell parsing, no byte copies of values, page cache
// shared across processes. ROADMAP: "Corpus mmap loading".
//
// Container: persist/snapshot.h framing with kCorpusStoreMagic and two
// sections — the shared string-pool layout (artifact_codec.h) and a table
// section (per table: source kind, domain, per-column name + ValueId cells).
// Value ids in the store are the pool ids at save time, so a save/open
// round trip reproduces the exact TableCorpus: same ids, same tables, and
// therefore byte-identical synthesis results.
#pragma once

#include <memory>
#include <string>

#include "common/env.h"
#include "common/status.h"
#include "persist/mmap_file.h"
#include "table/corpus.h"

namespace ms::persist {

/// Writes `corpus` to the binary store format at `path` (atomically,
/// through `env`; nullptr = Env::Default()).
Status SaveCorpusStore(const TableCorpus& corpus, const std::string& path,
                       Env* env = nullptr);

/// One-shot ETL: parses a WriteCorpusTsv dump and writes the equivalent
/// store — pay the cell-by-cell parse once, open via mmap forever after.
Status ConvertTsvCorpusToStore(const std::string& tsv_path,
                               const std::string& store_path,
                               Env* env = nullptr);

/// Opens a store: the returned corpus's pool holds zero-copy views into the
/// mapping and pins it (RetainBacking), so the corpus — and anything
/// sharing its pool handle — is safe to use and move freely. The pool stays
/// writable: synthesis interns normalized values on top of the adopted
/// ones. DataLoss on a truncated/corrupt store, FailedPrecondition on a
/// format-version mismatch.
Result<TableCorpus> OpenCorpusStore(const std::string& path,
                                    Env* env = nullptr);

}  // namespace ms::persist
