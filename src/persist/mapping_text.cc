#include "persist/mapping_text.h"

#include <ostream>
#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace ms::persist {
namespace {

/// Digits-only bounded parse for the header counts. std::stoull throws on
/// garbage and overflow — a malformed curation file must come back as
/// InvalidArgument, not a process abort (the fail-closed contract of
/// MappingService::OpenFromMappingsFile).
bool ParseCount(const std::string& s, uint64_t cap, size_t* out) {
  if (s.empty() || s.size() > 19) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  if (v > cap) return false;
  *out = static_cast<size_t>(v);
  return true;
}

/// Provenance counts materialize as zero-filled id vectors; cap them so a
/// corrupt header cannot demand a multi-GB allocation. (Real mappings have
/// thousands of member tables; the binary snapshot carries full id lists.)
constexpr uint64_t kMaxProvenanceCount = uint64_t{1} << 24;

}  // namespace

Status WriteMappingsTsv(const std::vector<SynthesizedMapping>& mappings,
                        const StringPool& pool, std::ostream& out) {
  for (const auto& m : mappings) {
    // Labels may contain spaces; they are the last two space-separated
    // fields' problem otherwise, so tab-separate the header fields.
    out << "#mapping\t" << (m.left_label.empty() ? "-" : m.left_label)
        << '\t' << (m.right_label.empty() ? "-" : m.right_label) << '\t'
        << m.num_domains << '\t' << m.kept_tables.size() << '\t'
        << m.member_tables.size() << '\n';
    for (const auto& p : m.merged.pairs()) {
      out << pool.Get(p.left) << '\t' << pool.Get(p.right) << '\n';
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("stream write failed");
  return Status::OK();
}

Status ReadMappingsTsv(std::istream& in, StringPool* pool,
                       std::vector<SynthesizedMapping>* mappings) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = Split(line, '\t');
    if (fields.size() != 6 || fields[0] != "#mapping") {
      return Status::InvalidArgument("expected '#mapping' header, got: " +
                                     line);
    }
    SynthesizedMapping m;
    m.left_label = fields[1] == "-" ? "" : fields[1];
    m.right_label = fields[2] == "-" ? "" : fields[2];
    size_t kept = 0;
    size_t members = 0;
    if (!ParseCount(fields[3], UINT64_MAX / 2, &m.num_domains) ||
        !ParseCount(fields[4], kMaxProvenanceCount, &kept) ||
        !ParseCount(fields[5], kMaxProvenanceCount, &members)) {
      return Status::InvalidArgument("malformed '#mapping' header counts: " +
                                     line);
    }
    // Table ids are provenance counts only once serialized.
    m.kept_tables.resize(kept);
    m.member_tables.resize(members);

    std::vector<ValuePair> pairs;
    while (std::getline(in, line) && !line.empty()) {
      auto cells = Split(line, '\t');
      if (cells.size() != 2) {
        return Status::InvalidArgument("expected 2 cells, got: " + line);
      }
      const ValueId left = pool->Intern(cells[0]);
      const ValueId right = pool->Intern(cells[1]);
      if (left == kInvalidValueId || right == kInvalidValueId) {
        return Status::FailedPrecondition(
            "cannot load mappings into a read-only pool that lacks value: " +
            line);
      }
      pairs.push_back({left, right});
    }
    m.merged = BinaryTable::FromPairs(std::move(pairs));
    mappings->push_back(std::move(m));
  }
  if (in.bad()) return Status::IOError("stream read failed");
  return Status::OK();
}

Status SaveMappingsTsv(const std::vector<SynthesizedMapping>& mappings,
                       const StringPool& pool, const std::string& path,
                       Env* env) {
  if (env == nullptr) env = Env::Default();
  // Serialize in memory, then write through the env: the stream API stays
  // path-agnostic while the file API gets retry absorption and path+errno
  // failure messages from the env layer.
  std::ostringstream out;
  MS_RETURN_IF_ERROR(WriteMappingsTsv(mappings, pool, out));
  return WriteStringToFile(*env, path, out.str());
}

Status LoadMappingsTsv(const std::string& path, StringPool* pool,
                       std::vector<SynthesizedMapping>* mappings, Env* env) {
  if (env == nullptr) env = Env::Default();
  Result<std::string> contents = env->ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  std::istringstream in(std::move(contents).value());
  return ReadMappingsTsv(in, pool, mappings);
}

}  // namespace ms::persist
