// Human-readable mapping persistence: the curation handoff format, now
// owned by the persistence layer alongside the binary snapshot/store
// formats. A mapping file is what a human curator reviews and what the
// application layer ships with — the paper's "materialized as tables ...
// easy to index" story. Line-oriented TSV:
//
//   #mapping <left_label> <right_label> <num_domains> <kept> <members>
//   left<TAB>right
//   ...
//   (blank line)
//
// synth/mapping_io.h remains as a thin compatibility wrapper over these
// functions; new code should include this header. For machine-to-machine
// round trips (lineage ids, stats, checksums) use the binary snapshot
// (persist/artifact_codec.h) instead — TSV is lossy by design (table
// contents live in the corpus, not the mapping file).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "synth/mapping.h"
#include "table/string_pool.h"

namespace ms::persist {

Status WriteMappingsTsv(const std::vector<SynthesizedMapping>& mappings,
                        const StringPool& pool, std::ostream& out);

/// Reads mappings written by WriteMappingsTsv, interning values into
/// `pool`. Pair provenance ids are restored as counts only; table contents
/// are not (they live in the corpus, not the mapping file). Fails with
/// InvalidArgument on malformed lines, IOError when the stream cannot be
/// read; `mappings` keeps whatever parsed before the failure, so fail-closed
/// callers (MappingService::OpenFromMappingsFile) load into a scratch vector.
Status ReadMappingsTsv(std::istream& in, StringPool* pool,
                       std::vector<SynthesizedMapping>* mappings);

/// File-path conveniences: IO goes through `env` (nullptr = Env::Default())
/// so failures are injectable; IOError messages carry the path and errno.
Status SaveMappingsTsv(const std::vector<SynthesizedMapping>& mappings,
                       const StringPool& pool, const std::string& path,
                       Env* env = nullptr);
Status LoadMappingsTsv(const std::string& path, StringPool* pool,
                       std::vector<SynthesizedMapping>* mappings,
                       Env* env = nullptr);

}  // namespace ms::persist
