#include "persist/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ms {

Result<std::shared_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    const int err = errno;
    if (err == ENOENT) {
      return Status::NotFound("mmap open: no such file: " + path);
    }
    return Status::IOError("mmap open failed for " + path + ": " +
                           std::strerror(err));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("fstat failed for " + path + ": " +
                           std::strerror(err));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  const uint8_t* data = nullptr;
  if (size > 0) {
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("mmap failed for " + path + ": " +
                             std::strerror(err));
    }
    data = static_cast<const uint8_t*>(p);
  }
  // The mapping pins the file contents; the descriptor is no longer needed.
  ::close(fd);
  return std::shared_ptr<MmapFile>(new MmapFile(path, data, size));
}

MmapFile::~MmapFile() {
  if (data_ != nullptr && size_ > 0) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

}  // namespace ms
