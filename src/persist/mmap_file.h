// Read-only memory-mapped file: the zero-copy read path of the persistence
// layer. A snapshot/corpus-store load maps the file once and hands out
// string_views over the mapping instead of copying every cell value through
// the parser — multi-GB corpora open at page-fault speed and share clean
// pages across processes.
//
// Lifetime rule: every view into the mapping is invalidated when the
// MmapFile is destroyed (the region is munmap'd). Consumers that re-expose
// the bytes — StringPool via AdoptExternal() — must pin the file with
// StringPool::RetainBacking(shared_ptr<MmapFile>), which the persist
// loaders do automatically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ms {

class MmapFile {
 public:
  /// Maps `path` read-only (PROT_READ, MAP_PRIVATE). NotFound when the file
  /// does not exist, IOError on any other open/stat/map failure. An empty
  /// file maps successfully with size() == 0.
  static Result<std::shared_ptr<MmapFile>> Open(const std::string& path);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view bytes() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }
  const std::string& path() const { return path_; }

 private:
  MmapFile(std::string path, const uint8_t* data, size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace ms
