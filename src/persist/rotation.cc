#include "persist/rotation.h"

#include <algorithm>

#include "obs/metrics.h"

namespace ms::persist {

namespace {
constexpr char kSnapPrefix[] = "snap-";
constexpr char kSnapSuffix[] = ".mssnap";
constexpr size_t kGenDigits = 10;
}  // namespace

std::string SnapshotFileName(uint64_t generation) {
  std::string digits = std::to_string(generation);
  if (digits.size() < kGenDigits) {
    digits.insert(0, kGenDigits - digits.size(), '0');
  }
  return kSnapPrefix + digits + kSnapSuffix;
}

bool ParseSnapshotFileName(std::string_view name, uint64_t* generation) {
  const std::string_view prefix = kSnapPrefix;
  const std::string_view suffix = kSnapSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.substr(0, prefix.size()) != prefix) return false;
  if (name.substr(name.size() - suffix.size()) != suffix) return false;
  const std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() || digits.size() > 19) return false;
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = v;
  return true;
}

Result<std::vector<GenerationEntry>> ListGenerations(Env& env,
                                                     const std::string& dir) {
  Result<std::vector<std::string>> names = env.ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<GenerationEntry> entries;
  for (std::string& name : names.value()) {
    uint64_t gen = 0;
    // ParseSnapshotFileName rejects *.corrupt and *.tmp by shape, so a
    // quarantined or half-written file can never rejoin the rotation.
    if (!ParseSnapshotFileName(name, &gen)) continue;
    entries.push_back(GenerationEntry{gen, std::move(name)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const GenerationEntry& a, const GenerationEntry& b) {
              return a.generation < b.generation;
            });
  return entries;
}

Result<uint64_t> ReadCurrentGeneration(Env& env, const std::string& dir) {
  const std::string path = dir + "/" + kCurrentFileName;
  Result<std::string> contents = env.ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  std::string_view line = contents.value();
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  uint64_t gen = 0;
  if (!ParseSnapshotFileName(line, &gen)) {
    return Status::DataLoss("CURRENT does not name a snapshot file: " + path);
  }
  return gen;
}

Status WriteCurrentFile(Env& env, const std::string& dir,
                        uint64_t generation) {
  const std::string contents = SnapshotFileName(generation) + "\n";
  return AtomicWriteFile(env, dir + "/" + kCurrentFileName,
                         {std::string_view(contents)});
}

Status QuarantineSnapshot(Env& env, const std::string& dir,
                          const std::string& name) {
  static obs::Counter* const quarantined = obs::MetricsRegistry::Global()
      .GetCounter("ms_persist_quarantined_total");
  const std::string from = dir + "/" + name;
  MS_RETURN_IF_ERROR(env.RenameFile(from, from + kCorruptSuffix));
  quarantined->Increment();
  // Make the fence durable: a quarantined generation that reappears after
  // a reboot would be re-verified (and re-fail) forever.
  return env.SyncDir(dir);
}

Status PruneSnapshots(Env& env, const std::string& dir, int keep) {
  static obs::Counter* const pruned = obs::MetricsRegistry::Global()
      .GetCounter("ms_persist_pruned_total");
  if (keep < 1) keep = 1;
  Result<std::vector<GenerationEntry>> listed = ListGenerations(env, dir);
  if (!listed.ok()) return listed.status();
  const std::vector<GenerationEntry>& entries = listed.value();
  Status first_error;
  bool removed = false;
  for (size_t i = 0; i + static_cast<size_t>(keep) < entries.size(); ++i) {
    const Status st = env.RemoveFile(dir + "/" + entries[i].name);
    if (!st.ok() && first_error.ok()) first_error = st;
    if (st.ok()) pruned->Increment();
    removed = removed || st.ok();
  }
  if (removed) {
    const Status st = env.SyncDir(dir);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

}  // namespace ms::persist
