// Generational snapshot rotation: the on-disk layout and protocol that
// turns "a snapshot file" into "a directory a service can always recover
// from". A rotation directory holds:
//
//   snap-<gen>.mssnap      one complete container per generation (the
//                          10-digit zero-padded generation number makes
//                          lexicographic order numeric order)
//   CURRENT                a one-line pointer file naming the latest
//                          committed generation's file, written atomically
//                          (tmp+fsync+rename+dirsync) AFTER its snapshot
//                          is durable
//   snap-<gen>.mssnap.corrupt   quarantined generations: files that failed
//                          verification at open are renamed aside — never
//                          deleted, an operator may want the evidence —
//                          and never considered for serving again
//
// Save protocol: write snap-<next> (atomic), commit CURRENT (atomic), then
// prune generations older than the retention window. A crash between the
// snapshot write and the CURRENT commit leaves a complete newer snapshot
// that readers may legitimately serve — CURRENT is the durable commit
// marker and the pruning fence, not the only discovery mechanism.
//
// Recovery protocol (MappingService::OpenLatestSnapshot): list generations,
// walk newest → oldest, serve the first one that fully verifies; a
// generation that fails with DataLoss is quarantined and the walk falls
// back to the previous one. The walk degrades, it never crashes and never
// serves partially-verified bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"

namespace ms::persist {

inline constexpr char kCurrentFileName[] = "CURRENT";
inline constexpr char kCorruptSuffix[] = ".corrupt";
inline constexpr int kDefaultRetainedGenerations = 3;

/// "snap-0000000042.mssnap" for generation 42.
std::string SnapshotFileName(uint64_t generation);

/// Parses a SnapshotFileName-shaped basename; false for anything else
/// (CURRENT, *.tmp, *.corrupt, foreign files).
bool ParseSnapshotFileName(std::string_view name, uint64_t* generation);

struct GenerationEntry {
  uint64_t generation = 0;
  std::string name;  ///< basename inside the rotation dir
};

/// The live (non-quarantined) generations in `dir`, sorted ascending.
/// NotFound when the directory itself does not exist.
Result<std::vector<GenerationEntry>> ListGenerations(Env& env,
                                                     const std::string& dir);

/// The generation CURRENT points at. NotFound when no CURRENT exists,
/// DataLoss when it exists but does not parse (a torn pointer is treated
/// exactly like a torn snapshot: fall back, don't trust it).
Result<uint64_t> ReadCurrentGeneration(Env& env, const std::string& dir);

/// Atomically commits CURRENT -> SnapshotFileName(generation).
Status WriteCurrentFile(Env& env, const std::string& dir,
                        uint64_t generation);

/// Renames `name` (a basename in `dir`) to `name + ".corrupt"`, fencing it
/// from every future recovery walk while preserving the bytes for
/// post-mortem. The directory entry change is fsynced.
Status QuarantineSnapshot(Env& env, const std::string& dir,
                          const std::string& name);

/// Removes live generations older than the newest `keep` (quarantined
/// files are never touched). Returns the first error but keeps going —
/// retention is best-effort by design; debris is reclaimed next save.
Status PruneSnapshots(Env& env, const std::string& dir, int keep);

}  // namespace ms::persist
