#include "persist/snapshot.h"

#include "common/crc32.h"
#include "persist/wire.h"

namespace ms::persist {

namespace {
constexpr size_t kHeaderBytes = 28;       // magic+version+count+fingerprint+crc
constexpr size_t kSectionHeaderBytes = 16;  // id+crc+size
}  // namespace

void ContainerWriter::AddSection(uint32_t id, std::string payload) {
  sections_.push_back(Section{id, std::move(payload)});
}

Status ContainerWriter::WriteFile(const std::string& path, Env* env) const {
  if (env == nullptr) env = Env::Default();
  WireWriter header;
  header.U64(magic_);
  header.U32(FormatVersionFor(magic_));
  header.U32(static_cast<uint32_t>(sections_.size()));
  header.U64(fingerprint_);
  header.U32(Crc32(header.bytes()));

  // One chunk list, one atomic-save protocol (AtomicWriteFile): write-new +
  // fsync + rename + directory fsync. A serving fleet overwrites its
  // snapshot in place on a schedule, and neither a crash mid-write nor a
  // power loss right after the rename may leave anything but the
  // old-or-new complete file at `path`. The tmp suffix is fixed so a
  // crashed writer's debris is reclaimed by the next successful save.
  std::vector<std::string> section_headers;
  section_headers.reserve(sections_.size());
  std::vector<std::string_view> chunks;
  chunks.reserve(1 + 2 * sections_.size());
  chunks.emplace_back(header.bytes());
  for (const Section& s : sections_) {
    WireWriter sh;
    sh.U32(s.id);
    sh.U32(Crc32(s.payload));
    sh.U64(s.payload.size());
    section_headers.push_back(sh.Take());
    chunks.emplace_back(section_headers.back());
    chunks.emplace_back(s.payload);
  }
  return AtomicWriteFile(*env, path, chunks);
}

Result<ContainerReader> ContainerReader::Open(const std::string& path,
                                              uint64_t expected_magic,
                                              Env* env) {
  if (env == nullptr) env = Env::Default();
  Result<std::shared_ptr<MmapFile>> mapped = env->MapReadOnly(path);
  if (!mapped.ok()) return mapped.status();
  std::shared_ptr<MmapFile> file = std::move(mapped).value();

  if (file->size() < kHeaderBytes) {
    return Status::DataLoss("container truncated: " + path + " holds " +
                            std::to_string(file->size()) +
                            " bytes, header needs " +
                            std::to_string(kHeaderBytes));
  }
  WireReader header(file->data(), kHeaderBytes);
  const uint64_t magic = header.U64();
  const uint32_t version = header.U32();
  const uint32_t section_count = header.U32();
  const uint64_t fingerprint = header.U64();
  const uint32_t header_crc = header.U32();
  const uint32_t computed_crc = Crc32(file->data(), kHeaderBytes - 4);
  if (magic != expected_magic || header_crc != computed_crc) {
    return Status::DataLoss(
        "container header corrupt (bad magic or header checksum): " + path);
  }
  if (version < MinFormatVersionFor(expected_magic) ||
      version > FormatVersionFor(expected_magic)) {
    // The header checksum passed, so this really is a container written by
    // a different format revision — incompatibility, not corruption. Each
    // family versions independently, and each accepts a contiguous range:
    // additive bumps (e.g. snapshot v3's optional maintenance section)
    // keep older files readable, while files from the future fail loudly.
    return Status::FailedPrecondition(
        "unsupported container format version " + std::to_string(version) +
        " (this build reads versions " +
        std::to_string(MinFormatVersionFor(expected_magic)) + ".." +
        std::to_string(FormatVersionFor(expected_magic)) + "): " + path);
  }

  ContainerReader reader;
  reader.file_ = file;
  reader.fingerprint_ = fingerprint;
  reader.version_ = version;
  size_t off = kHeaderBytes;
  for (uint32_t i = 0; i < section_count; ++i) {
    if (file->size() - off < kSectionHeaderBytes) {
      return Status::DataLoss("container truncated inside section header " +
                              std::to_string(i) + ": " + path);
    }
    WireReader sh(file->data() + off, kSectionHeaderBytes);
    const uint32_t id = sh.U32();
    const uint32_t payload_crc = sh.U32();
    const uint64_t payload_size = sh.U64();
    off += kSectionHeaderBytes;
    if (payload_size > file->size() - off) {
      return Status::DataLoss("container truncated inside section " +
                              std::to_string(id) + " payload: " + path);
    }
    std::string_view payload(
        reinterpret_cast<const char*>(file->data() + off),
        static_cast<size_t>(payload_size));
    if (Crc32(payload) != payload_crc) {
      return Status::DataLoss("checksum mismatch in section " +
                              std::to_string(id) + ": " + path);
    }
    for (const auto& [seen_id, unused] : reader.sections_) {
      if (seen_id == id) {
        return Status::DataLoss("duplicate section id " + std::to_string(id) +
                                ": " + path);
      }
    }
    reader.sections_.emplace_back(id, payload);
    off += payload_size;
  }
  if (off != file->size()) {
    return Status::DataLoss("container has " +
                            std::to_string(file->size() - off) +
                            " trailing bytes after the last section: " + path);
  }
  return reader;
}

Result<std::string_view> ContainerReader::Section(uint32_t id) const {
  for (const auto& [sid, payload] : sections_) {
    if (sid == id) return payload;
  }
  return Status::NotFound("container has no section with id " +
                          std::to_string(id));
}

Status ContainerReader::RequireKnownSections(
    std::initializer_list<uint32_t> allowed) const {
  for (const auto& [sid, unused] : sections_) {
    bool known = false;
    for (uint32_t a : allowed) known = known || a == sid;
    if (!known) {
      return Status::DataLoss("unknown section id " + std::to_string(sid) +
                              " in " + file_->path());
    }
  }
  return Status::OK();
}

bool ContainerReader::HasSection(uint32_t id) const {
  for (const auto& [sid, unused] : sections_) {
    if (sid == id) return true;
  }
  return false;
}

}  // namespace ms::persist
