#include "persist/snapshot.h"

#include <fstream>

#include "common/crc32.h"
#include "persist/wire.h"

namespace ms::persist {

namespace {
constexpr size_t kHeaderBytes = 28;       // magic+version+count+fingerprint+crc
constexpr size_t kSectionHeaderBytes = 16;  // id+crc+size
}  // namespace

void ContainerWriter::AddSection(uint32_t id, std::string payload) {
  sections_.push_back(Section{id, std::move(payload)});
}

Status ContainerWriter::WriteFile(const std::string& path) const {
  WireWriter header;
  header.U64(magic_);
  header.U32(kFormatVersion);
  header.U32(static_cast<uint32_t>(sections_.size()));
  header.U64(fingerprint_);
  header.U32(Crc32(header.bytes()));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(header.bytes().data(),
            static_cast<std::streamsize>(header.bytes().size()));
  for (const Section& s : sections_) {
    WireWriter sh;
    sh.U32(s.id);
    sh.U32(Crc32(s.payload));
    sh.U64(s.payload.size());
    out.write(sh.bytes().data(),
              static_cast<std::streamsize>(sh.bytes().size()));
    out.write(s.payload.data(), static_cast<std::streamsize>(s.payload.size()));
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<ContainerReader> ContainerReader::Open(const std::string& path,
                                              uint64_t expected_magic) {
  Result<std::shared_ptr<MmapFile>> mapped = MmapFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  std::shared_ptr<MmapFile> file = std::move(mapped).value();

  if (file->size() < kHeaderBytes) {
    return Status::DataLoss("container truncated: " + path + " holds " +
                            std::to_string(file->size()) +
                            " bytes, header needs " +
                            std::to_string(kHeaderBytes));
  }
  WireReader header(file->data(), kHeaderBytes);
  const uint64_t magic = header.U64();
  const uint32_t version = header.U32();
  const uint32_t section_count = header.U32();
  const uint64_t fingerprint = header.U64();
  const uint32_t header_crc = header.U32();
  const uint32_t computed_crc = Crc32(file->data(), kHeaderBytes - 4);
  if (magic != expected_magic || header_crc != computed_crc) {
    return Status::DataLoss(
        "container header corrupt (bad magic or header checksum): " + path);
  }
  if (version != kFormatVersion) {
    // The header checksum passed, so this really is a container written by
    // a different format revision — incompatibility, not corruption.
    return Status::FailedPrecondition(
        "unsupported container format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) +
        "): " + path);
  }

  ContainerReader reader;
  reader.file_ = file;
  reader.fingerprint_ = fingerprint;
  reader.version_ = version;
  size_t off = kHeaderBytes;
  for (uint32_t i = 0; i < section_count; ++i) {
    if (file->size() - off < kSectionHeaderBytes) {
      return Status::DataLoss("container truncated inside section header " +
                              std::to_string(i) + ": " + path);
    }
    WireReader sh(file->data() + off, kSectionHeaderBytes);
    const uint32_t id = sh.U32();
    const uint32_t payload_crc = sh.U32();
    const uint64_t payload_size = sh.U64();
    off += kSectionHeaderBytes;
    if (payload_size > file->size() - off) {
      return Status::DataLoss("container truncated inside section " +
                              std::to_string(id) + " payload: " + path);
    }
    std::string_view payload(
        reinterpret_cast<const char*>(file->data() + off),
        static_cast<size_t>(payload_size));
    if (Crc32(payload) != payload_crc) {
      return Status::DataLoss("checksum mismatch in section " +
                              std::to_string(id) + ": " + path);
    }
    for (const auto& [seen_id, unused] : reader.sections_) {
      if (seen_id == id) {
        return Status::DataLoss("duplicate section id " + std::to_string(id) +
                                ": " + path);
      }
    }
    reader.sections_.emplace_back(id, payload);
    off += payload_size;
  }
  if (off != file->size()) {
    return Status::DataLoss("container has " +
                            std::to_string(file->size() - off) +
                            " trailing bytes after the last section: " + path);
  }
  return reader;
}

Result<std::string_view> ContainerReader::Section(uint32_t id) const {
  for (const auto& [sid, payload] : sections_) {
    if (sid == id) return payload;
  }
  return Status::NotFound("container has no section with id " +
                          std::to_string(id));
}

Status ContainerReader::RequireKnownSections(
    std::initializer_list<uint32_t> allowed) const {
  for (const auto& [sid, unused] : sections_) {
    bool known = false;
    for (uint32_t a : allowed) known = known || a == sid;
    if (!known) {
      return Status::DataLoss("unknown section id " + std::to_string(sid) +
                              " in " + file_->path());
    }
  }
  return Status::OK();
}

bool ContainerReader::HasSection(uint32_t id) const {
  for (const auto& [sid, unused] : sections_) {
    if (sid == id) return true;
  }
  return false;
}

}  // namespace ms::persist
