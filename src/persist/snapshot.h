// Versioned binary container format shared by session snapshots (*.mssnap)
// and corpus stores (*.mscorp). Layout (all integers little-endian):
//
//   FileHeader (28 bytes):
//     u64 magic                 kSessionSnapshotMagic / kCorpusStoreMagic
//     u32 format_version        the writing family's format version
//     u32 section_count
//     u64 options_fingerprint   result-affecting options hash (0 = unused)
//     u32 header_crc            CRC-32 of the 24 bytes above
//   section_count x Section:
//     u32 section_id
//     u32 payload_crc           CRC-32 of the payload bytes
//     u64 payload_size
//     u8  payload[payload_size]
//
// Every byte of the file is covered by a checksum (the header by
// header_crc, each payload by its section CRC, section headers implicitly
// by the bounds/ids they must satisfy), so any truncation or bit flip
// surfaces as Status::DataLoss at open — never a crash or a silently
// different artifact. Integrity verification happens before any payload is
// interpreted. Failure taxonomy:
//   DataLoss            truncated/corrupt bytes, bad magic, CRC mismatch
//   FailedPrecondition  intact file, incompatible: unsupported
//                       format_version or (checked by the caller) an
//                       options-fingerprint mismatch
//   NotFound/IOError    the OS could not produce the bytes at all
//
// Readers hold the file mmap'd: section payloads are zero-copy views into
// the mapping, which downstream consumers pin via the shared MmapFile
// handle (see persist/mmap_file.h for the lifetime rule).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "persist/mmap_file.h"

namespace ms::persist {

/// Each container family versions independently — a snapshot layout change
/// must not orphan corpus stores whose bytes never changed.
///
/// Snapshot version 2 (incremental corpus growth): the candidates section
/// gained the append generation, source-table count, and per-table
/// kept-column signatures; the blocked-pairs section gained the
/// per-candidate taint id list. Version-1 snapshots fail with
/// FailedPrecondition (re-synthesize and re-save), exactly as the
/// versioning rules in docs/persistence.md prescribe for layout changes.
///
/// Snapshot version 3 (remove/replace maintenance state): adds the
/// OPTIONAL kSectionMaintenance section — tombstoned corpus table ids,
/// dead candidate ids, and the coherence margin cache. This bump is
/// additive: no existing section changed layout, so v2 snapshots still
/// load (kMinSnapshotFormatVersion) — they simply restore with empty
/// maintenance state, exactly the state a v2 writer had. A v2 READER
/// given a v3 file correctly refuses it (it only accepts its own
/// version), so downgrades fail loudly instead of silently dropping
/// tombstones.
///
/// Corpus stores are still the original layout: version 1, and every
/// previously converted *.mscorp keeps opening.
inline constexpr uint32_t kSnapshotFormatVersion = 3;
/// Oldest snapshot version this build still reads.
inline constexpr uint32_t kMinSnapshotFormatVersion = 2;
inline constexpr uint32_t kCorpusStoreFormatVersion = 1;

/// "MSSNAP1\0" and "MSCORP1\0" as little-endian u64s.
inline constexpr uint64_t kSessionSnapshotMagic = 0x003150414E53534DULL;
inline constexpr uint64_t kCorpusStoreMagic = 0x003150524F43534DULL;

/// The current format version of the family `magic` selects.
inline constexpr uint32_t FormatVersionFor(uint64_t magic) {
  return magic == kCorpusStoreMagic ? kCorpusStoreFormatVersion
                                    : kSnapshotFormatVersion;
}

/// The oldest readable format version of the family `magic` selects.
inline constexpr uint32_t MinFormatVersionFor(uint64_t magic) {
  return magic == kCorpusStoreMagic ? kCorpusStoreFormatVersion
                                    : kMinSnapshotFormatVersion;
}

/// Section ids of the session snapshot container.
enum SnapshotSection : uint32_t {
  kSectionStringPool = 1,
  kSectionCandidates = 2,
  kSectionBlockedPairs = 3,
  kSectionScoredGraph = 4,
  kSectionResult = 5,
  kSectionLineage = 6,
  /// Format v3: incremental-maintenance state — tombstoned corpus table
  /// ids, dead candidate ids, and the coherence margin cache. Optional:
  /// absent from v2 files (and decodes to empty state), present in every
  /// v3 save.
  kSectionMaintenance = 7,
};

/// Section ids of the corpus store container.
enum CorpusSection : uint32_t {
  kSectionCorpusPool = 1,
  kSectionCorpusTables = 2,
};

/// Accumulates sections in memory and writes the whole container with one
/// streaming pass. Section order is preserved; ids must be unique.
class ContainerWriter {
 public:
  ContainerWriter(uint64_t magic, uint64_t options_fingerprint)
      : magic_(magic), fingerprint_(options_fingerprint) {}

  void AddSection(uint32_t id, std::string payload);

  /// Writes header + sections to `path` atomically (AtomicWriteFile): the
  /// bytes go to `path + ".tmp"` first and are renamed over `path` only
  /// after a successful fsync, so a crash or write failure mid-save can
  /// never clobber a previous good container — readers see either the old
  /// file or the new one, never a torn hybrid. Transient short writes and
  /// EINTR are absorbed by the env retry loop; terminal failures return
  /// IOError carrying the path and errno (the tmp file is cleaned up;
  /// `path` is untouched). All IO goes through `env` (nullptr =
  /// Env::Default()) so every failure mode is injectable. Concurrent savers
  /// to the same path are the caller's responsibility (they share the tmp
  /// name).
  Status WriteFile(const std::string& path, Env* env = nullptr) const;

 private:
  struct Section {
    uint32_t id;
    std::string payload;
  };
  uint64_t magic_;
  uint64_t fingerprint_;
  std::vector<Section> sections_;
};

/// Opens and fully verifies a container: magic, format version, header CRC,
/// section framing bounds, and every section's payload CRC. After a
/// successful Open, payloads are structurally trustworthy views into the
/// mapping (logical decoding errors beyond this point are codec bugs).
class ContainerReader {
 public:
  /// `expected_magic` selects the container family; a file with the other
  /// family's valid magic fails with DataLoss ("not a ... file") rather
  /// than FailedPrecondition, since the caller asked for bytes this file
  /// never contained. The mmap open goes through `env` (nullptr =
  /// Env::Default()) so read-side faults are injectable too.
  static Result<ContainerReader> Open(const std::string& path,
                                      uint64_t expected_magic,
                                      Env* env = nullptr);

  uint64_t options_fingerprint() const { return fingerprint_; }
  uint32_t format_version() const { return version_; }

  /// Payload of the section with `id`, or NotFound if the container has no
  /// such section.
  Result<std::string_view> Section(uint32_t id) const;
  bool HasSection(uint32_t id) const;

  /// DataLoss unless every present section id is in `allowed`. Readers are
  /// strict: format evolution happens via format_version bumps, not via
  /// tolerated unknown sections — a bit-flipped section id must surface as
  /// corruption, not silently drop an optional section.
  Status RequireKnownSections(std::initializer_list<uint32_t> allowed) const;

  /// The underlying mapping; pin it wherever payload views escape.
  const std::shared_ptr<MmapFile>& file() const { return file_; }

 private:
  ContainerReader() = default;

  std::shared_ptr<MmapFile> file_;
  uint64_t fingerprint_ = 0;
  uint32_t version_ = 0;
  std::vector<std::pair<uint32_t, std::string_view>> sections_;
};

}  // namespace ms::persist
