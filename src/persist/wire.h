// Byte-level encoding primitives for the persistence layer. Everything is
// explicit little-endian via memcpy (no struct casting), so snapshots are
// byte-stable across compilers and alignment-safe when read straight out of
// an mmap'd region.
//
// WireWriter appends to an in-memory section buffer; WireReader walks a
// section payload with hard bounds checks. A reader that runs off the end
// flips into a sticky failed state and every subsequent read returns a
// zero/empty value — callers check ok() once at the end instead of after
// every field. Payloads are CRC-verified before a reader ever sees them
// (persist/snapshot.h), so a failed reader means a codec bug, not silent
// corruption.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ms::persist {

// memcpy of native integers IS the little-endian encoding on every target
// this project builds for; a big-endian port would add byte swaps here.
static_assert(std::endian::native == std::endian::little,
              "persist wire format assumes a little-endian host");

class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// Length-prefixed (u32) byte string.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  /// Raw bytes, no length prefix (caller encodes the framing).
  void Raw(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  const std::string& bytes() const { return buf_; }
  std::string&& Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class WireReader {
 public:
  WireReader(const void* data, size_t size)
      : p_(static_cast<const uint8_t*>(data)), end_(p_ + size) {}
  explicit WireReader(std::string_view bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  uint8_t U8() {
    uint8_t v = 0;
    Load(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Load(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Load(&v, sizeof(v));
    return v;
  }
  double F64() {
    uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool Bool() { return U8() != 0; }
  /// Length-prefixed byte string; the view aliases the underlying buffer
  /// (zero-copy — valid as long as the buffer, e.g. the mmap, lives).
  std::string_view Str() {
    uint32_t n = U32();
    return View(n);
  }
  /// `size` raw bytes as a view into the underlying buffer.
  std::string_view View(size_t size) {
    if (!ok_ || size > static_cast<size_t>(end_ - p_)) {
      ok_ = false;
      return {};
    }
    std::string_view v(reinterpret_cast<const char*>(p_), size);
    p_ += size;
    return v;
  }

  /// True while every read so far stayed in bounds.
  bool ok() const { return ok_; }
  /// True when the payload was consumed exactly (no trailing garbage).
  bool AtEnd() const { return ok_ && p_ == end_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  void Load(void* out, size_t size) {
    if (!ok_ || size > static_cast<size_t>(end_ - p_)) {
      ok_ = false;
      return;
    }
    std::memcpy(out, p_, size);
    p_ += size;
  }

  const uint8_t* p_;
  const uint8_t* end_;
  bool ok_ = true;
};

}  // namespace ms::persist
