#include "stats/coherence.h"

#include <algorithm>

#include "stats/npmi.h"

namespace ms {

double ColumnCoherence(const ColumnInvertedIndex& index,
                       const std::vector<ValueId>& cells,
                       const CoherenceOptions& opts) {
  std::vector<ValueId> distinct(cells);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  if (distinct.empty()) return 0.0;
  if (distinct.size() == 1) return 1.0;

  if (distinct.size() > opts.max_sampled_values) {
    Rng rng(opts.sample_seed);
    rng.Shuffle(distinct);
    distinct.resize(opts.max_sampled_values);
  }

  double sum = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < distinct.size(); ++i) {
    const bool i_supported =
        index.ColumnFrequency(distinct[i]) >= opts.min_value_support;
    for (size_t j = i + 1; j < distinct.size(); ++j) {
      if (i_supported &&
          index.ColumnFrequency(distinct[j]) >= opts.min_value_support) {
        sum += Npmi(index, distinct[i], distinct[j]);
      }
      // Unsupported pairs contribute 0 (no evidence either way).
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
}

}  // namespace ms
