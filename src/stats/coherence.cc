#include "stats/coherence.h"

#include <algorithm>
#include <cmath>

#include "stats/npmi.h"

namespace ms {

double ColumnCoherence(const ColumnInvertedIndex& index,
                       const std::vector<ValueId>& cells,
                       const CoherenceOptions& opts,
                       CoherenceProfile* profile) {
  if (profile != nullptr) {
    *profile = CoherenceProfile{};
    profile->n_eval = static_cast<uint32_t>(index.num_columns());
  }
  std::vector<ValueId> distinct(cells);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  if (distinct.empty()) return 0.0;
  if (distinct.size() == 1) {
    if (profile != nullptr) profile->score = 1.0;
    return 1.0;
  }

  if (distinct.size() > opts.max_sampled_values) {
    Rng rng(opts.sample_seed);
    rng.Shuffle(distinct);
    distinct.resize(opts.max_sampled_values);
  }

  double sum = 0.0;
  double sum_pos = 0.0;
  size_t pairs = 0;
  uint32_t sup_pos = 0;
  uint32_t sup_zero = 0;
  uint32_t b_max = 0;
  for (size_t i = 0; i < distinct.size(); ++i) {
    const bool i_supported =
        index.ColumnFrequency(distinct[i]) >= opts.min_value_support;
    for (size_t j = i + 1; j < distinct.size(); ++j) {
      if (i_supported &&
          index.ColumnFrequency(distinct[j]) >= opts.min_value_support) {
        const double npmi = Npmi(index, distinct[i], distinct[j]);
        sum += npmi;
        if (profile != nullptr) {
          const uint32_t cuv = static_cast<uint32_t>(
              index.CoOccurrence(distinct[i], distinct[j]));
          if (cuv > 0) {
            ++sup_pos;
            sum_pos += npmi;
            b_max = std::max(b_max, cuv);
          } else {
            ++sup_zero;
          }
        }
      }
      // Unsupported pairs contribute 0 (no evidence either way).
      ++pairs;
    }
  }
  const double score =
      pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
  if (profile != nullptr) {
    profile->score = score;
    profile->sum_pos = sum_pos;
    profile->pairs = static_cast<uint32_t>(pairs);
    profile->sup_pos = sup_pos;
    profile->sup_zero = sup_zero;
    profile->b_max = b_max;
  }
  return score;
}

bool CoherenceVerdictStable(const CoherenceProfile& profile, double threshold,
                            size_t n_now) {
  const size_t n_eval = profile.n_eval;
  if (n_now == n_eval) return true;  // nothing moved
  // Index-independent scores (empty / single-distinct columns record
  // pairs == 0 with score 0 or 1; sampled sets whose pairs are all
  // unsupported score a constant 0).
  if (profile.pairs == 0) return true;
  const bool kept = profile.score >= threshold;
  const bool grew = n_now > n_eval;
  // Monotone direction cannot flip the verdict: at fixed counts every
  // supported pair's NPMI is non-decreasing in N, so S only rises under
  // growth and only falls under shrink.
  if (grew && kept) return true;
  if (!grew && !kept) return true;
  if (n_eval < 2 || n_now < 2) return false;  // degenerate; just re-evaluate

  // Remaining cases need the one-sided bound through rho. If there are no
  // positive supported pairs, sum_pos is exactly 0 at any N and S is
  // constant (-Z/P).
  const double p = static_cast<double>(profile.pairs);
  if (profile.sup_pos == 0) {
    const double s = -static_cast<double>(profile.sup_zero) / p;
    return kept ? (s >= threshold) : (s < threshold);
  }

  const double k = static_cast<double>(profile.sup_pos);
  const double z = static_cast<double>(profile.sup_zero);
  double bound;
  if (grew) {
    // Upper bound for S(n_now): rho at c = min(b_max, n_eval - 1) is the
    // smallest ratio any positive pair can shrink its (NPMI - 1) gap by.
    const double c = static_cast<double>(
        std::min<uint32_t>(profile.b_max, profile.n_eval - 1));
    const double denom = std::log(static_cast<double>(n_now) / c);
    if (!(denom > 0.0)) return false;
    const double rho = std::log(static_cast<double>(n_eval) / c) / denom;
    bound = (k + rho * (profile.sum_pos - k) - z) / p;
    // Rejected column stays rejected if even the optimistic score misses.
    return bound < threshold;
  }
  // Shrink: lower bound for S(n_now); rho at c = b_max is the largest
  // ratio any positive pair's gap can grow by. Requires b_max < n_now, or
  // the log flips sign (a pair's c_uv could equal the shrunken N and pin
  // its NPMI at 1 — cheap to just re-evaluate).
  const double c = static_cast<double>(profile.b_max);
  if (c >= static_cast<double>(n_now)) return false;
  const double denom = std::log(static_cast<double>(n_now) / c);
  if (!(denom > 0.0)) return false;
  const double rho = std::log(static_cast<double>(n_eval) / c) / denom;
  bound = (k + rho * (profile.sum_pos - k) - z) / p;
  // Kept column stays kept if even the pessimistic score clears the bar.
  return bound >= threshold;
}

}  // namespace ms
