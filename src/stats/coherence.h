// Column coherence S(C) (Equation 2): the average pair-wise NPMI between the
// column's distinct values. Low-coherence columns (mixed concepts, mis-
// aligned extractions like the "Location" column of Table 7) are filtered
// out of candidate extraction.
#pragma once

#include "common/random.h"
#include "stats/inverted_index.h"

namespace ms {

struct CoherenceOptions {
  /// Columns with more distinct values than this are scored on a random
  /// sample of this many values, keeping the quadratic pair enumeration
  /// bounded (the paper runs on Map-Reduce; we sample instead).
  size_t max_sampled_values = 32;
  uint64_t sample_seed = 42;
  /// Values occurring in fewer than this many corpus columns contribute 0
  /// (unknown) instead of their NPMI. Without this, junk values unique to
  /// one column trivially score NPMI = 1 against each other (they only
  /// ever "co-occur"), defeating the incoherence filter.
  size_t min_value_support = 2;

  bool operator==(const CoherenceOptions&) const = default;
};

/// Everything needed to re-evaluate a column's coherence verdict at a
/// different corpus size WITHOUT touching the inverted index, provided the
/// column's value frequencies are unchanged ("fixed counts"). Recorded once
/// per scored column and carried across incremental corpus mutations.
///
/// The math: NPMI(u,v) = 1 + ln G / ln(N / c_uv) with G = c_uv^2/(c_u c_v)
/// in (0, 1], so at fixed counts each supported pair's NPMI is monotone
/// non-decreasing in N, and (NPMI(N1) - 1) = (NPMI(N0) - 1) * r(c_uv) with
/// r = ln(N0/c_uv) / ln(N1/c_uv). S(C) = (sum_pos - Z) / P. Since r is
/// monotone in c_uv (decreasing for growth, increasing for shrink), one
/// ratio rho evaluated at b_max bounds the whole sum — see
/// CoherenceVerdictStable.
struct CoherenceProfile {
  double score = 0.0;     ///< S(C) as evaluated at n_eval
  double sum_pos = 0.0;   ///< sum of NPMI over supported pairs with c_uv > 0
  uint32_t pairs = 0;     ///< P: pair count over the (possibly sampled) set
  uint32_t sup_pos = 0;   ///< K: supported pairs with c_uv > 0
  uint32_t sup_zero = 0;  ///< Z: supported pairs with c_uv == 0 (NPMI -1)
  uint32_t b_max = 0;     ///< max c_uv over the K positive pairs
  uint32_t n_eval = 0;    ///< index.num_columns() when evaluated

  bool operator==(const CoherenceProfile&) const = default;
};

/// Computes S(C) over the distinct values of `cells`. Columns with a single
/// distinct value get coherence 1 (trivially coherent). Empty columns get 0.
/// When `profile` is non-null it is filled with the margin cache for this
/// evaluation (score/n_eval always set; pair aggregates zero for the
/// trivial empty/single-value cases, which are index-independent anyway).
double ColumnCoherence(const ColumnInvertedIndex& index,
                       const std::vector<ValueId>& cells,
                       const CoherenceOptions& opts = {},
                       CoherenceProfile* profile = nullptr);

/// True when the verdict `score >= threshold` recorded in `profile` provably
/// cannot flip at corpus size `n_now`, assuming the column's value counts
/// (frequencies and co-occurrences) are unchanged since the profile was
/// recorded. Conservative: false means "re-evaluate", not "flipped".
///
/// Monotonicity gives two of the four cases outright (grow+kept and
/// shrink+rejected stay put). The other two use the one-sided bound
///   S(n_now) <=/>= (K + rho * (sum_pos - K) - Z) / P,
/// rho = ln(n_eval/c) / ln(n_now/c) at c = min(b_max, n_eval - 1) for
/// growth (upper bound) and c = b_max for shrink (lower bound, requires
/// b_max < n_now).
bool CoherenceVerdictStable(const CoherenceProfile& profile, double threshold,
                            size_t n_now);

}  // namespace ms
