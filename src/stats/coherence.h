// Column coherence S(C) (Equation 2): the average pair-wise NPMI between the
// column's distinct values. Low-coherence columns (mixed concepts, mis-
// aligned extractions like the "Location" column of Table 7) are filtered
// out of candidate extraction.
#pragma once

#include "common/random.h"
#include "stats/inverted_index.h"

namespace ms {

struct CoherenceOptions {
  /// Columns with more distinct values than this are scored on a random
  /// sample of this many values, keeping the quadratic pair enumeration
  /// bounded (the paper runs on Map-Reduce; we sample instead).
  size_t max_sampled_values = 32;
  uint64_t sample_seed = 42;
  /// Values occurring in fewer than this many corpus columns contribute 0
  /// (unknown) instead of their NPMI. Without this, junk values unique to
  /// one column trivially score NPMI = 1 against each other (they only
  /// ever "co-occur"), defeating the incoherence filter.
  size_t min_value_support = 2;

  bool operator==(const CoherenceOptions&) const = default;
};

/// Computes S(C) over the distinct values of `cells`. Columns with a single
/// distinct value get coherence 1 (trivially coherent). Empty columns get 0.
double ColumnCoherence(const ColumnInvertedIndex& index,
                       const std::vector<ValueId>& cells,
                       const CoherenceOptions& opts = {});

}  // namespace ms
