#include "stats/inverted_index.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/logging.h"

namespace ms {
namespace {

/// Counts |a ∩ b| where b is much longer than a: for each element of a,
/// gallop (exponential probe + binary search) forward in b. O(|a| log |b|)
/// versus O(|a| + |b|) for the plain merge — a big win on the skewed list
/// lengths that hot corpus values ("usa", "total") produce.
size_t GallopIntersect(PostingsView a, PostingsView b) {
  size_t count = 0;
  size_t lo = 0;
  for (size_t i = 0; i < a.size; ++i) {
    const ColumnId x = a[i];
    // Exponential probe for the first position with b[pos] >= x.
    size_t step = 1;
    size_t hi = lo;
    while (hi < b.size && b[hi] < x) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    if (hi > b.size) hi = b.size;
    const ColumnId* it = std::lower_bound(b.begin() + lo, b.begin() + hi, x);
    lo = static_cast<size_t>(it - b.begin());
    if (lo == b.size) break;
    if (*it == x) {
      ++count;
      ++lo;
    }
  }
  return count;
}

size_t MergeIntersect(PostingsView a, PostingsView b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size && j < b.size) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

void ColumnInvertedIndex::Build(const TableCorpus& corpus, ThreadPool* pool) {
  const auto& tables = corpus.tables();

  // Global ColumnId numbering: sequential over tables, then columns. The
  // per-table bases let chunks write disjoint coord ranges without locks.
  std::vector<uint32_t> col_base(tables.size() + 1, 0);
  for (size_t i = 0; i < tables.size(); ++i) {
    col_base[i + 1] =
        col_base[i] + static_cast<uint32_t>(tables[i].columns.size());
  }
  num_columns_ = col_base.back();
  coords_.assign(num_columns_, {});
  offsets_.assign(1, 0);
  postings_.clear();
  table_cols_.clear();
  table_cols_.reserve(tables.size());
  for (size_t i = 0; i < tables.size(); ++i) {
    table_cols_.emplace_back(col_base[i], col_base[i + 1] - col_base[i]);
  }
  next_column_id_ = col_base.back();
  if (tables.empty()) return;

  // --- Pass 1 (parallel over table ranges): per-column distinct values into
  // per-chunk flat buffers. The sort+unique per column dominates the build;
  // everything after is linear scans.
  const size_t workers = pool ? pool->num_threads() : 1;
  const size_t num_chunks = std::min(tables.size(), workers * 4);
  struct Chunk {
    size_t t0 = 0, t1 = 0;
    std::vector<ValueId> values;     ///< distinct values, column-major
    std::vector<size_t> col_ends;    ///< end offset into `values` per column
  };
  std::vector<Chunk> chunks(num_chunks);
  const size_t per = (tables.size() + num_chunks - 1) / num_chunks;
  for (size_t ci = 0; ci < num_chunks; ++ci) {
    chunks[ci].t0 = ci * per;
    chunks[ci].t1 = std::min(tables.size(), chunks[ci].t0 + per);
  }
  auto build_chunk = [&](size_t ci) {
    Chunk& ch = chunks[ci];
    std::vector<ValueId> distinct;
    for (size_t ti = ch.t0; ti < ch.t1; ++ti) {
      const Table& t = tables[ti];
      for (uint32_t c = 0; c < t.columns.size(); ++c) {
        distinct.assign(t.columns[c].cells.begin(), t.columns[c].cells.end());
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        ch.values.insert(ch.values.end(), distinct.begin(), distinct.end());
        ch.col_ends.push_back(ch.values.size());
        coords_[col_base[ti] + c] = {t.id, c};
      }
    }
  };
  if (pool && workers > 1) {
    pool->ParallelFor(num_chunks, build_chunk);
  } else {
    for (size_t ci = 0; ci < num_chunks; ++ci) build_chunk(ci);
  }

  // --- Pass 2: count occurrences per value, prefix-sum into CSR offsets.
  ValueId max_v = 0;
  size_t total = 0;
  for (const Chunk& ch : chunks) {
    for (ValueId v : ch.values) max_v = std::max(max_v, v);
    total += ch.values.size();
  }
  if (total == 0) return;
  // The CSR offsets are uint32_t; past 2^32 postings the prefix sums would
  // wrap silently and corrupt every list. Fail loudly instead (widening the
  // offsets doubles index memory; do that when a corpus actually needs it).
  if (total > std::numeric_limits<uint32_t>::max()) {
    MS_LOG(Error) << "inverted index: " << total
                  << " postings exceed the 2^32 CSR offset limit";
    std::abort();
  }
  offsets_.assign(static_cast<size_t>(max_v) + 2, 0);
  for (const Chunk& ch : chunks) {
    for (ValueId v : ch.values) ++offsets_[v + 1];
  }
  for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];

  // --- Pass 3: fill. Walking chunks/columns in ColumnId order means each
  // value's cursor advances in increasing ColumnId, so every posting list
  // comes out sorted without a per-list sort.
  postings_.resize(total);
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  ColumnId col = 0;
  for (const Chunk& ch : chunks) {
    size_t begin = 0;
    for (size_t end : ch.col_ends) {
      for (size_t i = begin; i < end; ++i) {
        postings_[cursor[ch.values[i]]++] = col;
      }
      begin = end;
      ++col;
    }
  }
}

void ColumnInvertedIndex::AppendTables(const TableCorpus& corpus,
                                       size_t first_new_table) {
  const auto& tables = corpus.tables();
  // Distinct values of the new columns, column-major, in increasing
  // ColumnId order (ids are handed out past every existing one, so each
  // value's additions land at the sorted tail of its list).
  std::vector<ValueId> values;
  std::vector<size_t> col_ends;
  std::vector<ValueId> distinct;
  ValueId max_v =
      offsets_.size() > 1 ? static_cast<ValueId>(offsets_.size() - 2) : 0;
  for (size_t ti = first_new_table; ti < tables.size(); ++ti) {
    const Table& t = tables[ti];
    const ColumnId base = next_column_id_;
    for (uint32_t c = 0; c < t.columns.size(); ++c) {
      distinct.assign(t.columns[c].cells.begin(), t.columns[c].cells.end());
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      for (ValueId v : distinct) max_v = std::max(max_v, v);
      values.insert(values.end(), distinct.begin(), distinct.end());
      col_ends.push_back(values.size());
      coords_.emplace_back(t.id, c);
      ++next_column_id_;
    }
    table_cols_.emplace_back(base,
                             static_cast<uint32_t>(t.columns.size()));
    num_columns_ += t.columns.size();
  }
  if (values.empty()) return;

  const size_t total = postings_.size() + values.size();
  if (total > std::numeric_limits<uint32_t>::max()) {
    MS_LOG(Error) << "inverted index: " << total
                  << " postings exceed the 2^32 CSR offset limit";
    std::abort();
  }

  // Per-value addition counts, then one rewrite pass that interleaves each
  // old list with its (already id-sorted) new tail.
  std::vector<uint32_t> adds(static_cast<size_t>(max_v) + 1, 0);
  for (ValueId v : values) ++adds[v];
  std::vector<uint32_t> new_offsets(static_cast<size_t>(max_v) + 2, 0);
  for (size_t v = 0; v <= max_v; ++v) {
    const uint32_t old_len =
        static_cast<uint32_t>(ColumnFrequency(static_cast<ValueId>(v)));
    new_offsets[v + 1] = new_offsets[v] + old_len + adds[v];
  }
  std::vector<ColumnId> new_postings(total);
  std::vector<uint32_t> cursor(new_offsets.begin(), new_offsets.end() - 1);
  for (size_t v = 0; v <= max_v; ++v) {
    const PostingsView old = Postings(static_cast<ValueId>(v));
    std::copy(old.begin(), old.end(), new_postings.begin() + cursor[v]);
    cursor[v] += static_cast<uint32_t>(old.size);
  }
  ColumnId col = next_column_id_ - static_cast<ColumnId>(col_ends.size());
  size_t begin = 0;
  for (size_t end : col_ends) {
    for (size_t i = begin; i < end; ++i) {
      new_postings[cursor[values[i]]++] = col;
    }
    begin = end;
    ++col;
  }
  offsets_ = std::move(new_offsets);
  postings_ = std::move(new_postings);
}

void ColumnInvertedIndex::RemoveTables(const std::vector<TableId>& tables) {
  std::vector<uint8_t> dead(coords_.size(), 0);
  size_t removed = 0;
  for (TableId t : tables) {
    if (t >= table_cols_.size()) continue;
    auto& [start, count] = table_cols_[t];
    for (uint32_t i = 0; i < count; ++i) dead[start + i] = 1;
    removed += count;
    count = 0;  // idempotent: a second removal of t is a no-op
  }
  if (removed == 0) return;
  num_columns_ -= removed;

  // One compaction sweep: drop dead ids, rewrite offsets in place. The
  // write cursor never passes the read cursor, and surviving ids keep
  // their relative order, so every list stays sorted.
  size_t w = 0;
  uint32_t begin = 0;
  for (size_t v = 0; v + 1 < offsets_.size(); ++v) {
    const uint32_t end = offsets_[v + 1];
    offsets_[v] = static_cast<uint32_t>(w);
    for (uint32_t i = begin; i < end; ++i) {
      if (!dead[postings_[i]]) postings_[w++] = postings_[i];
    }
    begin = end;
  }
  offsets_.back() = static_cast<uint32_t>(w);
  postings_.resize(w);
}

size_t ColumnInvertedIndex::CoOccurrence(ValueId u, ValueId v) const {
  PostingsView a = Postings(u);
  PostingsView b = Postings(v);
  if (a.size > b.size) std::swap(a, b);
  if (a.empty()) return 0;
  // Gallop when the lengths are skewed enough that |a| log |b| beats the
  // linear merge; the crossover constant is generous because the merge has
  // better branch behavior.
  if (b.size / a.size >= 8) return GallopIntersect(a, b);
  return MergeIntersect(a, b);
}

std::pair<TableId, uint32_t> ColumnInvertedIndex::ColumnCoords(
    ColumnId c) const {
  return coords_[c];
}

// ------------------------------------------------------- reference (seed)

const std::vector<ColumnId> ReferenceInvertedIndex::kEmpty;

void ReferenceInvertedIndex::Build(const TableCorpus& corpus) {
  postings_.clear();
  postings_.resize(corpus.pool().size());
  ColumnId next = 0;
  std::vector<ValueId> distinct;
  for (const auto& t : corpus.tables()) {
    for (uint32_t c = 0; c < t.columns.size(); ++c) {
      distinct.assign(t.columns[c].cells.begin(), t.columns[c].cells.end());
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      for (ValueId v : distinct) {
        if (v >= postings_.size()) postings_.resize(v + 1);
        postings_[v].push_back(next);
      }
      ++next;
    }
  }
  num_columns_ = next;
  // Posting lists are built in increasing ColumnId order => already sorted.
}

size_t ReferenceInvertedIndex::ColumnFrequency(ValueId u) const {
  if (u >= postings_.size()) return 0;
  return postings_[u].size();
}

size_t ReferenceInvertedIndex::CoOccurrence(ValueId u, ValueId v) const {
  if (u >= postings_.size() || v >= postings_.size()) return 0;
  return MergeIntersect({postings_[u].data(), postings_[u].size()},
                        {postings_[v].data(), postings_[v].size()});
}

const std::vector<ColumnId>& ReferenceInvertedIndex::Postings(
    ValueId u) const {
  if (u >= postings_.size()) return kEmpty;
  return postings_[u];
}

}  // namespace ms
