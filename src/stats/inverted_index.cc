#include "stats/inverted_index.h"

#include <algorithm>

namespace ms {

const std::vector<ColumnId> ColumnInvertedIndex::kEmpty;

void ColumnInvertedIndex::Build(const TableCorpus& corpus) {
  postings_.clear();
  coords_.clear();
  postings_.resize(corpus.pool().size());
  ColumnId next = 0;
  std::vector<ValueId> distinct;
  for (const auto& t : corpus.tables()) {
    for (uint32_t c = 0; c < t.columns.size(); ++c) {
      distinct.assign(t.columns[c].cells.begin(), t.columns[c].cells.end());
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      for (ValueId v : distinct) {
        if (v >= postings_.size()) postings_.resize(v + 1);
        postings_[v].push_back(next);
      }
      coords_.emplace_back(t.id, c);
      ++next;
    }
  }
  num_columns_ = next;
  // Posting lists are built in increasing ColumnId order => already sorted.
}

size_t ColumnInvertedIndex::ColumnFrequency(ValueId u) const {
  if (u >= postings_.size()) return 0;
  return postings_[u].size();
}

size_t ColumnInvertedIndex::CoOccurrence(ValueId u, ValueId v) const {
  if (u >= postings_.size() || v >= postings_.size()) return 0;
  const auto& a = postings_[u];
  const auto& b = postings_[v];
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

const std::vector<ColumnId>& ColumnInvertedIndex::Postings(ValueId u) const {
  if (u >= postings_.size()) return kEmpty;
  return postings_[u];
}

std::pair<TableId, uint32_t> ColumnInvertedIndex::ColumnCoords(
    ColumnId c) const {
  return coords_[c];
}

}  // namespace ms
