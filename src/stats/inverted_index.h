// Corpus-level inverted index: value -> the set of columns containing it
// (C(u) in Section 3.1). This is the backbone of the PMI/NPMI coherence
// statistics and of the candidate-pair blocking in synthesis.
#pragma once

#include <cstdint>
#include <vector>

#include "table/corpus.h"

namespace ms {

/// Dense id for a (table, column) slot across the whole corpus.
using ColumnId = uint32_t;

/// Immutable after Build(). Posting lists are sorted ColumnId vectors, so
/// co-occurrence counts are linear merges.
class ColumnInvertedIndex {
 public:
  /// Indexes every column of every table. Values are indexed by their
  /// *distinct* presence per column (a value repeated in one column counts
  /// once), matching the paper's set-of-columns definition of C(u).
  void Build(const TableCorpus& corpus);

  /// Number of columns indexed (the N in p(u) = |C(u)| / N).
  size_t num_columns() const { return num_columns_; }

  /// |C(u)|: how many columns contain value u. 0 for unseen values.
  size_t ColumnFrequency(ValueId u) const;

  /// |C(u) ∩ C(v)|: columns containing both values.
  size_t CoOccurrence(ValueId u, ValueId v) const;

  /// Posting list for a value (sorted, possibly empty).
  const std::vector<ColumnId>& Postings(ValueId u) const;

  /// Maps a ColumnId back to its (table, column index) coordinates.
  std::pair<TableId, uint32_t> ColumnCoords(ColumnId c) const;

 private:
  size_t num_columns_ = 0;
  std::vector<std::vector<ColumnId>> postings_;  // indexed by ValueId
  std::vector<std::pair<TableId, uint32_t>> coords_;
  static const std::vector<ColumnId> kEmpty;
};

}  // namespace ms
