// Corpus-level inverted index: value -> the set of columns containing it
// (C(u) in Section 3.1). This is the backbone of the PMI/NPMI coherence
// statistics and of the candidate-pair blocking in synthesis.
//
// Layout: CSR (compressed sparse row). One offsets array indexed by ValueId
// and one flat postings array of ColumnIds. Versus the per-value
// vector<vector> build this removes one heap allocation per distinct value,
// keeps all posting lists contiguous (sequential scans during coherence
// scoring stay in cache), and makes the build a two-pass counting sort that
// parallelizes over table ranges without locks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "table/corpus.h"

namespace ms {

/// Dense id for a (table, column) slot across the whole corpus.
using ColumnId = uint32_t;

/// Non-owning view of one posting list (sorted ColumnIds).
struct PostingsView {
  const ColumnId* data = nullptr;
  size_t size = 0;

  const ColumnId* begin() const { return data; }
  const ColumnId* end() const { return data + size; }
  ColumnId operator[](size_t i) const { return data[i]; }
  bool empty() const { return size == 0; }
};

/// Built once, then maintainable in place: AppendTables/RemoveTables patch
/// the CSR directly instead of re-indexing the corpus, the backbone of
/// incremental synthesis maintenance. Posting lists are sorted, so
/// co-occurrence counts are merges (with galloping for skewed list lengths).
///
/// ColumnIds are assigned monotonically and never reused: appended columns
/// get ids past every existing one (so each value's posting list grows at
/// its sorted tail), and removed columns' ids simply vanish from the lists.
/// Ids are therefore NOT dense after maintenance — only the counts
/// (num_columns, ColumnFrequency, CoOccurrence) are meaningful across
/// mutations, and those match a cold Build over the mutated corpus exactly.
class ColumnInvertedIndex {
 public:
  /// Indexes every column of every table. Values are indexed by their
  /// *distinct* presence per column (a value repeated in one column counts
  /// once), matching the paper's set-of-columns definition of C(u).
  /// With a thread pool the two CSR passes run over table ranges in
  /// parallel; results are identical to the serial build.
  void Build(const TableCorpus& corpus, ThreadPool* pool = nullptr);

  /// Appends the columns of tables [first_new_table, corpus.size()) in
  /// place: one counting pass over the new columns plus one linear rewrite
  /// of the postings array — O(existing postings + new postings), no
  /// re-sort, no rescan of pre-existing tables. Tables before
  /// `first_new_table` must be the ones this index already covers.
  void AppendTables(const TableCorpus& corpus, size_t first_new_table);

  /// Removes every posting of the given tables' columns in place (one
  /// compaction sweep over the postings array). Idempotent per table. The
  /// caller typically tombstones the corpus tables in tandem; the index
  /// only needs the ids, not the (possibly already cleared) contents.
  void RemoveTables(const std::vector<TableId>& tables);

  /// Number of columns indexed (the N in p(u) = |C(u)| / N).
  size_t num_columns() const { return num_columns_; }

  /// |C(u)|: how many columns contain value u. 0 for unseen values.
  size_t ColumnFrequency(ValueId u) const {
    // size_t arithmetic so u == UINT32_MAX (kInvalidValueId) cannot wrap.
    if (static_cast<size_t>(u) + 1 >= offsets_.size()) return 0;
    return offsets_[u + 1] - offsets_[u];
  }

  /// |C(u) ∩ C(v)|: columns containing both values.
  size_t CoOccurrence(ValueId u, ValueId v) const;

  /// Posting list for a value (sorted, possibly empty).
  PostingsView Postings(ValueId u) const {
    if (static_cast<size_t>(u) + 1 >= offsets_.size()) return {};
    return {postings_.data() + offsets_[u],
            static_cast<size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Maps a ColumnId back to its (table, column index) coordinates.
  std::pair<TableId, uint32_t> ColumnCoords(ColumnId c) const;

 private:
  size_t num_columns_ = 0;           // LIVE columns (the N in p(u))
  std::vector<uint32_t> offsets_;    // size = max ValueId + 2
  std::vector<ColumnId> postings_;   // flat, grouped by ValueId
  std::vector<std::pair<TableId, uint32_t>> coords_;  // by ever-assigned id
  /// Per table id: {first ColumnId, live column count}. Each table's
  /// columns occupy one contiguous id range assigned at Build/Append time;
  /// RemoveTables zeroes the count so removal is idempotent.
  std::vector<std::pair<ColumnId, uint32_t>> table_cols_;
  ColumnId next_column_id_ = 0;      // ids handed out so far (never reused)
};

/// The seed vector<vector> implementation, kept as the equivalence oracle
/// for randomized tests and as the baseline for bench_micro/bench_pr1.
class ReferenceInvertedIndex {
 public:
  void Build(const TableCorpus& corpus);

  size_t num_columns() const { return num_columns_; }
  size_t ColumnFrequency(ValueId u) const;
  size_t CoOccurrence(ValueId u, ValueId v) const;
  const std::vector<ColumnId>& Postings(ValueId u) const;

 private:
  size_t num_columns_ = 0;
  std::vector<std::vector<ColumnId>> postings_;  // indexed by ValueId
  static const std::vector<ColumnId> kEmpty;
};

}  // namespace ms
