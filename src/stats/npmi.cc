#include "stats/npmi.h"

#include <cmath>

namespace ms {

double Pmi(const ColumnInvertedIndex& index, ValueId u, ValueId v) {
  const double n = static_cast<double>(index.num_columns());
  if (n <= 0) return 0.0;
  const double cu = static_cast<double>(index.ColumnFrequency(u));
  const double cv = static_cast<double>(index.ColumnFrequency(v));
  if (cu == 0 || cv == 0) return 0.0;
  const double cuv = static_cast<double>(index.CoOccurrence(u, v));
  if (cuv == 0) return -1e9;
  const double pu = cu / n;
  const double pv = cv / n;
  const double puv = cuv / n;
  return std::log(puv / (pu * pv));
}

double Npmi(const ColumnInvertedIndex& index, ValueId u, ValueId v) {
  const double n = static_cast<double>(index.num_columns());
  if (n <= 0) return 0.0;
  const double cu = static_cast<double>(index.ColumnFrequency(u));
  const double cv = static_cast<double>(index.ColumnFrequency(v));
  if (cu == 0 || cv == 0) return 0.0;
  const double cuv = static_cast<double>(index.CoOccurrence(u, v));
  if (cuv == 0) return -1.0;
  const double puv = cuv / n;
  if (puv >= 1.0) return 1.0;  // co-occur in every column
  const double pmi = std::log(puv / ((cu / n) * (cv / n)));
  return pmi / (-std::log(puv));
}

}  // namespace ms
