// Point-wise Mutual Information and its normalized variant (Section 3.1,
// Equations 1-2). PMI measures how much more often two values co-occur in
// corpus columns than chance; NPMI rescales it to [-1, 1].
#pragma once

#include "stats/inverted_index.h"

namespace ms {

/// PMI(u, v) = log( p(u,v) / (p(u) p(v)) ) with p's estimated from column
/// frequencies. Returns -infinity surrogate (-1e9) when the values never
/// co-occur, and 0 when either value is unseen.
double Pmi(const ColumnInvertedIndex& index, ValueId u, ValueId v);

/// NPMI(u, v) = PMI / (-log p(u,v)), in [-1, 1].
///  +1  : values only ever occur together,
///   0  : independent,
///  -1  : never co-occur.
/// NPMI(u, u) == 1 for any value present in the corpus.
double Npmi(const ColumnInvertedIndex& index, ValueId u, ValueId v);

/// The paper's s(u, v) coherence between two values == NPMI.
inline double ValueCoherence(const ColumnInvertedIndex& index, ValueId u,
                             ValueId v) {
  return Npmi(index, u, v);
}

}  // namespace ms
