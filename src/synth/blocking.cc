#include "synth/blocking.h"

#include <algorithm>
#include <unordered_map>

#include "common/hashing.h"
#include "mr/mapreduce.h"

namespace ms {
namespace {

struct OverlapCounts {
  uint32_t pairs = 0;
  uint32_t lefts = 0;
};

// Appends all co-occurring (i < j) id pairs from one posting list.
void EmitIdPairs(std::vector<uint32_t>& ids, size_t max_posting,
                 std::vector<std::pair<uint64_t, bool>>* out, bool is_pair) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.size() > max_posting) ids.resize(max_posting);
  for (size_t x = 0; x < ids.size(); ++x) {
    for (size_t y = x + 1; y < ids.size(); ++y) {
      out->push_back({(static_cast<uint64_t>(ids[x]) << 32) | ids[y], is_pair});
    }
  }
}

}  // namespace

std::vector<CandidateTablePair> GenerateCandidatePairs(
    const std::vector<BinaryTable>& candidates, const BlockingOptions& options,
    ThreadPool* pool) {
  // --- MapReduce round: key = hashed value pair (or hashed left value with
  // a tag bit), value = candidate id. Reduce emits co-occurring id pairs.
  std::vector<uint32_t> inputs(candidates.size());
  for (uint32_t i = 0; i < candidates.size(); ++i) inputs[i] = i;

  using KV = std::pair<uint64_t, bool>;  // (packed id pair, is_pair_key)
  std::function<void(const uint32_t&, Emitter<uint64_t, uint32_t>&)> map_fn =
      [&](const uint32_t& id, Emitter<uint64_t, uint32_t>& em) {
        const BinaryTable& b = candidates[id];
        for (const auto& p : b.pairs()) {
          // Key space 1: full value pairs (tag bit 0).
          em.Emit(HashIdPair(p.left, p.right) << 1, id);
        }
        for (ValueId l : b.LeftValues()) {
          // Key space 2: left values only (tag bit 1).
          em.Emit((Mix64(l) << 1) | 1, id);
        }
      };
  std::function<void(const uint64_t&, std::vector<uint32_t>&,
                     std::vector<KV>*)>
      reduce_fn = [&](const uint64_t& key, std::vector<uint32_t>& ids,
                      std::vector<KV>* out) {
        EmitIdPairs(ids, options.max_posting, out, (key & 1) == 0);
      };

  auto emitted = RunMapReduce<uint32_t, uint64_t, uint32_t, KV>(
      inputs, map_fn, reduce_fn, pool);

  // --- Count per id-pair.
  std::unordered_map<uint64_t, OverlapCounts> counts;
  counts.reserve(emitted.size());
  for (const auto& [packed, is_pair] : emitted) {
    auto& c = counts[packed];
    if (is_pair) {
      ++c.pairs;
    } else {
      ++c.lefts;
    }
  }

  std::vector<CandidateTablePair> out;
  for (const auto& [packed, c] : counts) {
    if (c.pairs >= options.theta_overlap || c.lefts >= options.theta_overlap) {
      CandidateTablePair p;
      p.a = static_cast<uint32_t>(packed >> 32);
      p.b = static_cast<uint32_t>(packed & 0xffffffffu);
      p.shared_pairs = c.pairs;
      p.shared_lefts = c.lefts;
      out.push_back(p);
    }
  }
  // Deterministic order for reproducibility.
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);
  });
  return out;
}

}  // namespace ms
