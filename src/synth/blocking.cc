#include "synth/blocking.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "common/flat_hash.h"
#include "common/hashing.h"
#include "common/timer.h"
#include "mr/mapreduce.h"

namespace ms {
namespace {

struct OverlapCounts {
  uint32_t pairs = 0;
  uint32_t lefts = 0;
};

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Blocking key spaces shared by both implementations: full value pairs get
// tag bit 0 (feeds shared_pairs / w+), left values get tag bit 1 (feeds
// shared_lefts / w-).
void EmitBlockingKeys(const BinaryTable& b, uint32_t id,
                      Emitter<uint64_t, uint32_t>& em) {
  for (const auto& p : b.pairs()) {
    em.Emit(HashIdPair(p.left, p.right) << 1, id);
  }
  for (ValueId l : b.LeftValues()) {
    em.Emit((Mix64(l) << 1) | 1, id);
  }
}

// Appends all co-occurring (i < j) id pairs from one posting list
// (reference implementation only). Dropped ids go to `tainted` under
// `tainted_mu` so the reference matches the production per-pair exactness.
void EmitIdPairs(std::vector<uint32_t>& ids, size_t max_posting,
                 std::vector<std::pair<uint64_t, bool>>* out, bool is_pair,
                 std::mutex& tainted_mu, std::vector<uint32_t>* tainted) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.size() > max_posting) {
    std::lock_guard<std::mutex> lock(tainted_mu);
    tainted->insert(tainted->end(), ids.begin() + max_posting, ids.end());
    ids.resize(max_posting);
  }
  for (size_t x = 0; x < ids.size(); ++x) {
    for (size_t y = x + 1; y < ids.size(); ++y) {
      out->push_back({(static_cast<uint64_t>(ids[x]) << 32) | ids[y], is_pair});
    }
  }
}

std::vector<CandidateTablePair> CollectAndSort(
    std::vector<std::vector<CandidateTablePair>>& per_shard) {
  std::vector<CandidateTablePair> out;
  size_t total = 0;
  for (const auto& s : per_shard) total += s.size();
  out.reserve(total);
  for (auto& s : per_shard) {
    out.insert(out.end(), s.begin(), s.end());
  }
  // Deterministic order for reproducibility.
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);
  });
  return out;
}

}  // namespace

std::vector<CandidateTablePair> GenerateCandidatePairs(
    const std::vector<BinaryTable>& candidates, const BlockingOptions& options,
    ThreadPool* pool, BlockingStats* stats) {
  if (candidates.empty()) return {};
  Timer timer;

  // --- Map + shuffle: hash-partition (blocking key -> candidate id), so
  // every posting list lives wholly inside one partition.
  std::vector<uint32_t> inputs(candidates.size());
  for (uint32_t i = 0; i < candidates.size(); ++i) inputs[i] = i;
  std::function<void(const uint32_t&, Emitter<uint64_t, uint32_t>&)> map_fn =
      [&](const uint32_t& id, Emitter<uint64_t, uint32_t>& em) {
        EmitBlockingKeys(candidates[id], id, em);
      };
  auto parts = RunMapShuffle<uint32_t, uint64_t, uint32_t>(inputs, map_fn, pool);
  if (stats) stats->map_shuffle_seconds = timer.ElapsedSeconds();

  // --- Streaming count: sort each partition by key, walk posting-list runs,
  // and stream the co-occurring id pairs directly into per-partition flat
  // count maps sharded by the packed id pair. Nothing quadratic is ever
  // stored; each id pair costs one hash-map increment.
  timer.Restart();
  const size_t workers = pool ? pool->num_threads() : 1;
  const bool parallel = pool && workers > 1;
  const size_t num_shards = NextPow2(workers);
  const uint64_t shard_mask = num_shards - 1;

  // One count-map group per partition when counting runs in parallel;
  // serially, all partitions share one group so the merge below is a no-op.
  const size_t num_groups = parallel ? parts.size() : 1;
  std::vector<std::vector<FlatMap64<OverlapCounts>>> counts(num_groups);
  for (auto& c : counts) c.resize(num_shards);
  std::vector<size_t> part_keys(parts.size(), 0);
  std::vector<size_t> part_dropped(parts.size(), 0);
  // Candidate ids dropped from a truncated posting list, per partition.
  // Only pairs touching one of these can have understated counts; everyone
  // else keeps per-pair count exactness (counts_exact) even when some hot
  // key somewhere truncated.
  std::vector<std::vector<uint32_t>> part_tainted(parts.size());

  auto for_each_run = [](const std::vector<std::pair<uint64_t, uint32_t>>& part,
                         auto&& fn) {
    size_t i = 0;
    while (i < part.size()) {
      const uint64_t key = part[i].first;
      size_t j = i;
      while (j < part.size() && part[j].first == key) ++j;
      fn(key, i, j);
      i = j;
    }
  };

  auto count_partition = [&](size_t p) {
    auto& part = parts[p];
    if (part.empty()) return;
    auto& shards = counts[parallel ? p : 0];
    std::vector<uint32_t> ids;
    for_each_run(part, [&](uint64_t key, size_t begin, size_t end) {
      ids.clear();
      for (size_t i = begin; i < end; ++i) {
        // Runs are sorted by id, so de-dup is an adjacency check.
        if (ids.empty() || ids.back() != part[i].second) {
          ids.push_back(part[i].second);
        }
      }
      ++part_keys[p];
      if (ids.size() > options.max_posting) {
        // Deterministic truncation (lowest ids kept), but accounted for.
        part_dropped[p] += ids.size() - options.max_posting;
        part_tainted[p].insert(part_tainted[p].end(),
                               ids.begin() + options.max_posting, ids.end());
        ids.resize(options.max_posting);
      }
      const bool is_pair = (key & 1) == 0;
      for (size_t x = 0; x < ids.size(); ++x) {
        const uint64_t hi = static_cast<uint64_t>(ids[x]) << 32;
        for (size_t y = x + 1; y < ids.size(); ++y) {
          const uint64_t packed = hi | ids[y];
          // High mix bits pick the shard; FlatMap64 slots use the low bits.
          auto& c = shards[(Mix64(packed) >> 32) & shard_mask][packed];
          if (is_pair) {
            ++c.pairs;
          } else {
            ++c.lefts;
          }
        }
      }
    });
  };
  if (parallel) {
    // Each partition task sorts its own buffer; count maps are per group.
    pool->ParallelFor(parts.size(), [&](size_t p) {
      std::sort(parts[p].begin(), parts[p].end());
      count_partition(p);
    });
  } else {
    // Serial: all partitions share one map group. Growth-by-doubling beats
    // an upfront reservation here — increment counts overestimate distinct
    // id pairs several-fold, and an oversized map trades amortized rehash
    // for a cache miss on every increment (measurably worse).
    for (size_t p = 0; p < parts.size(); ++p) {
      std::sort(parts[p].begin(), parts[p].end());
      count_partition(p);
    }
  }
  if (stats) stats->count_seconds = timer.ElapsedSeconds();

  // --- Merge the per-partition taint lists into one bitmap: a pair's
  // counts are exact iff neither endpoint was ever dropped from a truncated
  // list (a pair only loses count from a list both appear in when one of
  // them sits in the dropped tail).
  std::vector<uint8_t> tainted;
  size_t num_tainted = 0;
  for (const auto& t : part_tainted) {
    for (uint32_t id : t) {
      if (tainted.empty()) tainted.assign(candidates.size(), 0);
      if (!tainted[id]) {
        tainted[id] = 1;
        ++num_tainted;
      }
    }
  }

  // --- Reduce: merge each shard across partition groups (parallel over
  // shards), apply the θ_overlap threshold, and emit surviving pairs. With
  // one group (serial counting) the "merge" reads the counts in place.
  timer.Restart();
  std::vector<std::vector<CandidateTablePair>> survivors(num_shards);
  auto emit_survivor = [&](std::vector<CandidateTablePair>& out,
                           uint64_t packed, const OverlapCounts& c) {
    if (c.pairs >= options.theta_overlap || c.lefts >= options.theta_overlap) {
      CandidateTablePair p;
      p.a = static_cast<uint32_t>(packed >> 32);
      p.b = static_cast<uint32_t>(packed & 0xffffffffu);
      p.shared_pairs = c.pairs;
      p.shared_lefts = c.lefts;
      p.counts_exact = tainted.empty() || (!tainted[p.a] && !tainted[p.b]);
      out.push_back(p);
    }
  };
  auto reduce_shard = [&](size_t s) {
    auto& out = survivors[s];
    if (num_groups == 1) {
      counts[0][s].ForEach([&](uint64_t packed, const OverlapCounts& c) {
        emit_survivor(out, packed, c);
      });
      return;
    }
    size_t expected = 0;
    for (size_t g = 0; g < num_groups; ++g) expected += counts[g][s].size();
    if (expected == 0) return;
    FlatMap64<OverlapCounts> merged(expected);
    for (size_t g = 0; g < num_groups; ++g) {
      counts[g][s].ForEach([&](uint64_t packed, const OverlapCounts& c) {
        auto& m = merged[packed];
        m.pairs += c.pairs;
        m.lefts += c.lefts;
      });
    }
    merged.ForEach([&](uint64_t packed, const OverlapCounts& c) {
      emit_survivor(out, packed, c);
    });
  };
  if (parallel && num_shards > 1) {
    pool->ParallelFor(num_shards, reduce_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) reduce_shard(s);
  }

  auto out = CollectAndSort(survivors);
  if (stats) {
    stats->reduce_seconds = timer.ElapsedSeconds();
    for (size_t p = 0; p < parts.size(); ++p) {
      stats->keys += part_keys[p];
      stats->dropped_postings += part_dropped[p];
    }
    stats->tainted_candidates = num_tainted;
    stats->exact_counts = stats->dropped_postings == 0;
    stats->tainted = std::move(tainted);
  }
  return out;
}

Status BlockingOptions::Validate() const {
  if (theta_overlap == 0) {
    return Status::InvalidArgument(
        "blocking.theta_overlap must be >= 1: 0 would emit every candidate "
        "pair and defeat blocking entirely");
  }
  if (max_posting < 2) {
    return Status::InvalidArgument(
        "blocking.max_posting must be >= 2: shorter posting lists can never "
        "produce a co-occurrence, so no pair would ever be scored");
  }
  return Status::OK();
}

std::vector<CandidateTablePair> GenerateDeltaCandidatePairs(
    const std::vector<BinaryTable>& candidates, uint32_t first_new,
    const BlockingOptions& options, ThreadPool* pool,
    std::vector<uint8_t>* tainted, DeltaBlockingStats* stats) {
  if (first_new >= candidates.size()) return {};
  std::vector<uint8_t> local_tainted;
  if (tainted == nullptr) tainted = &local_tainted;
  if (!tainted->empty()) tainted->resize(candidates.size(), 0);

  // --- Delta key set: every blocking key any appended candidate holds.
  // FlatMap64 reserves key 0 as its empty sentinel, so keys are stored
  // shifted by one (the pipeline already tolerates 64-bit key-hash
  // collisions, which an unrepresentable key 2^64-1 would amount to).
  FlatMap64<char> delta_keys;
  {
    Emitter<uint64_t, uint32_t> collector(1);
    for (uint32_t id = first_new; id < candidates.size(); ++id) {
      EmitBlockingKeys(candidates[id], id, collector);
    }
    for (const auto& [key, unused] : collector.buffers()[0]) {
      delta_keys[key + 1] = 1;
    }
  }

  // --- Map + shuffle over ALL candidates, filtered to delta-relevant keys:
  // existing candidates contribute their postings for exactly the keys the
  // appended candidates touch, nothing else. This is the only full-corpus
  // scan the delta pass pays, and it is linear.
  std::vector<uint32_t> inputs(candidates.size());
  for (uint32_t i = 0; i < candidates.size(); ++i) inputs[i] = i;
  std::function<void(const uint32_t&, Emitter<uint64_t, uint32_t>&)> map_fn =
      [&](const uint32_t& id, Emitter<uint64_t, uint32_t>& em) {
        Emitter<uint64_t, uint32_t> probe(1);
        EmitBlockingKeys(candidates[id], id, probe);
        for (const auto& [key, emitted_id] : probe.buffers()[0]) {
          if (delta_keys.Find(key + 1) != nullptr) em.Emit(key, emitted_id);
        }
      };
  auto parts = RunMapShuffle<uint32_t, uint64_t, uint32_t>(inputs, map_fn, pool);

  // --- Streaming count, restricted to pairs with at least one appended id.
  // Truncation follows union semantics exactly: appended ids sort after all
  // existing ids, so the kept prefix of every list starts with the base
  // run's kept old ids — old-old counts and old-candidate taint can never
  // change, which is why they are not recomputed here.
  const size_t workers = pool ? pool->num_threads() : 1;
  const bool parallel = pool && workers > 1;
  const size_t num_shards = NextPow2(workers);
  const uint64_t shard_mask = num_shards - 1;
  const size_t num_groups = parallel ? parts.size() : 1;
  std::vector<std::vector<FlatMap64<OverlapCounts>>> counts(num_groups);
  for (auto& c : counts) c.resize(num_shards);
  std::vector<size_t> part_new_keys(parts.size(), 0);
  std::vector<size_t> part_scanned(parts.size(), 0);
  std::vector<size_t> part_dropped_delta(parts.size(), 0);
  std::vector<std::vector<uint32_t>> part_tainted(parts.size());

  auto count_partition = [&](size_t p) {
    auto& part = parts[p];
    if (part.empty()) return;
    auto& shards = counts[parallel ? p : 0];
    std::vector<uint32_t> ids;
    size_t i = 0;
    while (i < part.size()) {
      const uint64_t key = part[i].first;
      size_t j = i;
      ids.clear();
      for (; j < part.size() && part[j].first == key; ++j) {
        if (ids.empty() || ids.back() != part[j].second) {
          ids.push_back(part[j].second);
        }
      }
      i = j;
      ++part_scanned[p];
      // Ids are sorted, so the base run's posting for this key is the
      // old-id prefix.
      const size_t old_len = static_cast<size_t>(
          std::lower_bound(ids.begin(), ids.end(), first_new) - ids.begin());
      if (old_len == 0) ++part_new_keys[p];
      const size_t base_dropped =
          old_len > options.max_posting ? old_len - options.max_posting : 0;
      const size_t union_dropped =
          ids.size() > options.max_posting ? ids.size() - options.max_posting
                                           : 0;
      part_dropped_delta[p] += union_dropped - base_dropped;
      if (ids.size() > options.max_posting) {
        // The dropped tail can include old ids (already tainted in the base
        // run — re-adding is idempotent) and appended ids (newly tainted).
        part_tainted[p].insert(part_tainted[p].end(),
                               ids.begin() + options.max_posting, ids.end());
        ids.resize(options.max_posting);
      }
      const bool is_pair = (key & 1) == 0;
      // Only pairs touching an appended id: a < b and appended ids are the
      // largest, so restricting b to the appended suffix of the kept list
      // covers exactly (old x new) and (new x new).
      const size_t first_new_pos = std::min(old_len, ids.size());
      for (size_t x = 0; x < ids.size(); ++x) {
        const uint64_t hi = static_cast<uint64_t>(ids[x]) << 32;
        for (size_t y = std::max(x + 1, first_new_pos); y < ids.size(); ++y) {
          const uint64_t packed = hi | ids[y];
          auto& c = shards[(Mix64(packed) >> 32) & shard_mask][packed];
          if (is_pair) {
            ++c.pairs;
          } else {
            ++c.lefts;
          }
        }
      }
    }
  };
  if (parallel) {
    pool->ParallelFor(parts.size(), [&](size_t p) {
      std::sort(parts[p].begin(), parts[p].end());
      count_partition(p);
    });
  } else {
    for (size_t p = 0; p < parts.size(); ++p) {
      std::sort(parts[p].begin(), parts[p].end());
      count_partition(p);
    }
  }

  // --- Fold the delta taint into the caller's union bitmap.
  for (const auto& t : part_tainted) {
    for (uint32_t id : t) {
      if (tainted->empty()) tainted->assign(candidates.size(), 0);
      (*tainted)[id] = 1;
    }
  }

  // --- Reduce: merge shards across groups, threshold, emit delta pairs.
  std::vector<std::vector<CandidateTablePair>> survivors(num_shards);
  auto emit_survivor = [&](std::vector<CandidateTablePair>& out,
                           uint64_t packed, const OverlapCounts& c) {
    if (c.pairs >= options.theta_overlap || c.lefts >= options.theta_overlap) {
      CandidateTablePair p;
      p.a = static_cast<uint32_t>(packed >> 32);
      p.b = static_cast<uint32_t>(packed & 0xffffffffu);
      p.shared_pairs = c.pairs;
      p.shared_lefts = c.lefts;
      p.counts_exact =
          tainted->empty() || (!(*tainted)[p.a] && !(*tainted)[p.b]);
      out.push_back(p);
    }
  };
  auto reduce_shard = [&](size_t s) {
    auto& out = survivors[s];
    if (num_groups == 1) {
      counts[0][s].ForEach([&](uint64_t packed, const OverlapCounts& c) {
        emit_survivor(out, packed, c);
      });
      return;
    }
    size_t expected = 0;
    for (size_t g = 0; g < num_groups; ++g) expected += counts[g][s].size();
    if (expected == 0) return;
    FlatMap64<OverlapCounts> merged(expected);
    for (size_t g = 0; g < num_groups; ++g) {
      counts[g][s].ForEach([&](uint64_t packed, const OverlapCounts& c) {
        auto& m = merged[packed];
        m.pairs += c.pairs;
        m.lefts += c.lefts;
      });
    }
    merged.ForEach([&](uint64_t packed, const OverlapCounts& c) {
      emit_survivor(out, packed, c);
    });
  };
  if (parallel && num_shards > 1) {
    pool->ParallelFor(num_shards, reduce_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) reduce_shard(s);
  }

  auto out = CollectAndSort(survivors);
  if (stats) {
    for (size_t p = 0; p < parts.size(); ++p) {
      stats->new_keys += part_new_keys[p];
      stats->scanned_keys += part_scanned[p];
      stats->dropped_postings += part_dropped_delta[p];
    }
  }
  return out;
}

std::vector<CandidateTablePair> GenerateCandidatePairsReference(
    const std::vector<BinaryTable>& candidates, const BlockingOptions& options,
    ThreadPool* pool) {
  // --- MapReduce round: key = hashed value pair (or hashed left value with
  // a tag bit), value = candidate id. Reduce emits co-occurring id pairs.
  std::vector<uint32_t> inputs(candidates.size());
  for (uint32_t i = 0; i < candidates.size(); ++i) inputs[i] = i;

  using KV = std::pair<uint64_t, bool>;  // (packed id pair, is_pair_key)
  std::mutex tainted_mu;
  std::vector<uint32_t> tainted_ids;
  std::function<void(const uint32_t&, Emitter<uint64_t, uint32_t>&)> map_fn =
      [&](const uint32_t& id, Emitter<uint64_t, uint32_t>& em) {
        EmitBlockingKeys(candidates[id], id, em);
      };
  std::function<void(const uint64_t&, std::vector<uint32_t>&,
                     std::vector<KV>*)>
      reduce_fn = [&](const uint64_t& key, std::vector<uint32_t>& ids,
                      std::vector<KV>* out) {
        EmitIdPairs(ids, options.max_posting, out, (key & 1) == 0,
                    tainted_mu, &tainted_ids);
      };

  auto emitted = RunMapReduce<uint32_t, uint64_t, uint32_t, KV>(
      inputs, map_fn, reduce_fn, pool);

  // --- Count per id-pair.
  std::unordered_map<uint64_t, OverlapCounts> counts;
  counts.reserve(emitted.size());
  for (const auto& [packed, is_pair] : emitted) {
    auto& c = counts[packed];
    if (is_pair) {
      ++c.pairs;
    } else {
      ++c.lefts;
    }
  }

  std::vector<uint8_t> tainted;
  if (!tainted_ids.empty()) {
    tainted.assign(candidates.size(), 0);
    for (uint32_t id : tainted_ids) tainted[id] = 1;
  }

  std::vector<CandidateTablePair> out;
  for (const auto& [packed, c] : counts) {
    if (c.pairs >= options.theta_overlap || c.lefts >= options.theta_overlap) {
      CandidateTablePair p;
      p.a = static_cast<uint32_t>(packed >> 32);
      p.b = static_cast<uint32_t>(packed & 0xffffffffu);
      p.shared_pairs = c.pairs;
      p.shared_lefts = c.lefts;
      p.counts_exact = tainted.empty() || (!tainted[p.a] && !tainted[p.b]);
      out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);
  });
  return out;
}

}  // namespace ms
