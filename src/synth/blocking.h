// Inverted-index blocking (Section 4.1 "Efficiency"): instead of scoring all
// O(N^2) candidate-table pairs, group tables that share value pairs (for w+)
// or left-hand values (for w-) and only score pairs within a group with at
// least θ_overlap shared items.
//
// The production path is a sharded streaming design: one map+shuffle round
// hash-partitions (item-hash -> table-id) postings, then each partition is
// sort-grouped and its co-occurring id pairs are streamed straight into
// hash-sharded flat count maps keyed by the packed id pair. The quadratic
// id-pair stream is never materialized and the final count/threshold pass is
// parallel over shards. `GenerateCandidatePairsReference` keeps the original
// emit-everything-then-count implementation for equivalence tests and
// benchmarking.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "table/binary_table.h"

namespace ms {

struct BlockingOptions {
  /// Minimum shared value pairs for a pair to be scored for w+ and minimum
  /// shared left values for w- (θ_overlap in Section 5.4).
  size_t theta_overlap = 2;
  /// Posting lists longer than this are truncated: extremely common values
  /// ("usa", "total") would otherwise create quadratic hot keys. Truncation
  /// is deterministic (lowest candidate ids win) and the number of dropped
  /// postings is reported in BlockingStats.
  size_t max_posting = 256;

  /// InvalidArgument when θ_overlap is 0 (every id pair would survive —
  /// the quadratic blow-up blocking exists to prevent) or max_posting < 2
  /// (no posting list could ever emit a co-occurrence).
  Status Validate() const;

  bool operator==(const BlockingOptions&) const = default;
};

/// A pair of candidate tables that blocking selected for exact scoring.
struct CandidateTablePair {
  uint32_t a = 0;
  uint32_t b = 0;             ///< a < b
  uint32_t shared_pairs = 0;  ///< co-occurring (left,right) value pairs
  uint32_t shared_lefts = 0;  ///< co-occurring left values
  /// True when this pair's counts are provably the true co-occurrence
  /// cardinalities: neither a nor b was ever dropped from a truncated
  /// posting list, so no list containing both could have lost either of
  /// them. Scoring uses this to skip the exact pair-list merge per pair
  /// (CompatibilityOptions::reuse_blocking_counts) instead of requiring the
  /// whole run to be truncation-free.
  bool counts_exact = false;
};

/// Observability for the blocking stage (feeds PipelineStats).
struct BlockingStats {
  double map_shuffle_seconds = 0.0;  ///< map + hash-partition phase
  double count_seconds = 0.0;        ///< sort-group + sharded counting
  double reduce_seconds = 0.0;       ///< shard merge + threshold + sort
  size_t keys = 0;                   ///< distinct blocking keys seen
  /// Postings dropped by the max_posting cap. The cap keeps lowest candidate
  /// ids, so high-id candidates silently lose pairs; this counter makes that
  /// bias observable instead of silent.
  size_t dropped_postings = 0;
  /// Candidates dropped from at least one truncated posting list. Only
  /// pairs touching one of these have potentially understated counts; all
  /// other pairs keep CandidateTablePair::counts_exact even in truncated
  /// runs (previously one dropped posting anywhere disabled count reuse
  /// globally).
  size_t tainted_candidates = 0;
  /// True when no posting list was truncated, i.e. every returned
  /// shared_pairs / shared_lefts is the true co-occurrence cardinality.
  /// Kept as the whole-run summary; per-pair reuse is driven by
  /// CandidateTablePair::counts_exact.
  bool exact_counts = false;
  /// Per-candidate taint bitmap (empty when no posting list was truncated):
  /// tainted[id] == 1 iff candidate `id` was dropped from at least one
  /// truncated posting list. This is the state incremental blocking needs:
  /// appended candidates sort after every existing id, so truncation keeps
  /// the same old-id prefix and an old candidate's taint can never change —
  /// the union run's bitmap is this one plus whatever the delta pass taints.
  /// Persisted with the BlockedPairs artifact so restore-then-append works.
  std::vector<uint8_t> tainted;
};

/// Runs blocking over all candidates. Returned pairs satisfy
/// shared_pairs >= θ_overlap or shared_lefts >= θ_overlap, sorted by (a, b).
std::vector<CandidateTablePair> GenerateCandidatePairs(
    const std::vector<BinaryTable>& candidates,
    const BlockingOptions& options = {}, ThreadPool* pool = nullptr,
    BlockingStats* stats = nullptr);

/// The seed implementation (materialize every co-occurring id pair, then
/// count in one hash map). Kept as the equivalence oracle for tests and as
/// the baseline for bench_micro/bench_pr1; do not use on large inputs.
std::vector<CandidateTablePair> GenerateCandidatePairsReference(
    const std::vector<BinaryTable>& candidates,
    const BlockingOptions& options = {}, ThreadPool* pool = nullptr);

/// Accounting for one delta-blocking pass (feeds the merged BlockingStats).
struct DeltaBlockingStats {
  /// Blocking keys introduced by the appended candidates (present in no
  /// existing candidate); the union run's key count is base + this.
  size_t new_keys = 0;
  /// Additional postings dropped by max_posting truncation versus the base
  /// run; the union run's dropped_postings is base + this.
  size_t dropped_postings = 0;
  /// Delta-relevant keys processed (keys any appended candidate holds).
  size_t scanned_keys = 0;
};

/// Incremental blocking for appended candidates: returns exactly the pairs
/// of a full GenerateCandidatePairs run over `candidates` that involve at
/// least one id >= `first_new` — the only pairs the append created. Pairs
/// between two existing candidates are untouched by appends (appended ids
/// sort after all existing ids, so truncation keeps the identical old-id
/// prefix of every posting list), which is what makes merging this output
/// into a base run's pairs byte-equivalent to re-blocking from scratch.
///
/// Only keys held by an appended candidate are counted: existing candidates
/// are scanned once (linear) to contribute their postings for those keys,
/// and the quadratic counting runs over the delta-relevant keys alone.
///
/// `tainted` is the union-run taint bitmap, in/out: pass the base run's
/// bitmap (resized to candidates.size(); empty stays empty until a
/// truncation happens) and the delta pass adds the ids it drops. Returned
/// pairs' counts_exact is computed against the updated bitmap.
std::vector<CandidateTablePair> GenerateDeltaCandidatePairs(
    const std::vector<BinaryTable>& candidates, uint32_t first_new,
    const BlockingOptions& options = {}, ThreadPool* pool = nullptr,
    std::vector<uint8_t>* tainted = nullptr,
    DeltaBlockingStats* stats = nullptr);

}  // namespace ms
