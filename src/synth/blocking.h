// Inverted-index blocking (Section 4.1 "Efficiency"): instead of scoring all
// O(N^2) candidate-table pairs, group tables that share value pairs (for w+)
// or left-hand values (for w-) and only score pairs within a group with at
// least θ_overlap shared items. Implemented as one MapReduce round: map each
// table to (item-hash -> table-id), reduce emits co-occurring id pairs,
// which are then counted.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "table/binary_table.h"

namespace ms {

struct BlockingOptions {
  /// Minimum shared value pairs for a pair to be scored for w+ and minimum
  /// shared left values for w- (θ_overlap in Section 5.4).
  size_t theta_overlap = 2;
  /// Posting lists longer than this are truncated: extremely common values
  /// ("usa", "total") would otherwise create quadratic hot keys.
  size_t max_posting = 256;
};

/// A pair of candidate tables that blocking selected for exact scoring.
struct CandidateTablePair {
  uint32_t a = 0;
  uint32_t b = 0;             ///< a < b
  uint32_t shared_pairs = 0;  ///< co-occurring (left,right) value pairs
  uint32_t shared_lefts = 0;  ///< co-occurring left values
};

/// Runs blocking over all candidates. Returned pairs satisfy
/// shared_pairs >= θ_overlap or shared_lefts >= θ_overlap.
std::vector<CandidateTablePair> GenerateCandidatePairs(
    const std::vector<BinaryTable>& candidates,
    const BlockingOptions& options = {}, ThreadPool* pool = nullptr);

}  // namespace ms
