#include "synth/compatibility.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace ms {

Status CompatibilityOptions::Validate() const {
  MS_RETURN_IF_ERROR(edit.Validate());
  if (synonym_snapshot != nullptr) {
    if (synonyms == nullptr) {
      return Status::InvalidArgument(
          "compat.synonym_snapshot set without compat.synonyms; a snapshot "
          "is a view of a dictionary, not a replacement for one");
    }
    if (synonym_snapshot->source_version() != synonyms->version()) {
      return Status::FailedPrecondition(
          "compat.synonym_snapshot is stale (dictionary version " +
          std::to_string(synonyms->version()) + ", snapshot version " +
          std::to_string(synonym_snapshot->source_version()) +
          "); re-take it with SynonymDictionary::Snapshot()");
    }
  }
  return Status::OK();
}

bool ValuesMatch(ValueId a, ValueId b, const StringPool& pool,
                 const CompatibilityOptions& opts) {
  if (a == b) return true;
  if (AreSynonymsVia(opts.synonym_snapshot, opts.synonyms, a, b)) return true;
  if (!opts.approximate_matching) return false;
  return ApproxMatch(pool.Get(a), pool.Get(b), opts.edit);
}

namespace {

/// Greedy one-to-one matching of a's pairs against b's pairs. Exact matches
/// are resolved with a sorted merge first; only the residue pays the
/// quadratic approximate pass (candidate tables are small). The matcher
/// caches each qa value's pattern bitmasks, so one left residue value is
/// scored against every b residue with a single mask build.
size_t CountPairOverlap(const BinaryTable& a, const BinaryTable& b,
                        BatchApproxMatcher& matcher, bool exact_only) {
  const auto& pa = a.pairs();
  const auto& pb = b.pairs();
  size_t exact = 0;
  // Reusable scratch: one allocation per thread, not three per scored pair.
  static thread_local std::vector<ValuePair> rest_a, rest_b;
  rest_a.clear();
  rest_b.clear();
  size_t i = 0, j = 0;
  while (i < pa.size() && j < pb.size()) {
    if (pa[i] < pb[j]) {
      rest_a.push_back(pa[i++]);
    } else if (pb[j] < pa[i]) {
      rest_b.push_back(pb[j++]);
    } else {
      ++exact;
      ++i;
      ++j;
    }
  }
  for (; i < pa.size(); ++i) rest_a.push_back(pa[i]);
  for (; j < pb.size(); ++j) rest_b.push_back(pb[j]);

  if (exact_only) return exact;
  if (rest_a.empty() || rest_b.empty()) return exact;

  // The greedy matching below is order-sensitive when a residue value
  // could pair with several counterparts, and pair lists arrive sorted by
  // ValueId — i.e. by string-pool *interning order*, which is a corpus
  // construction history, not a property of the tables. Canonicalize to
  // value content so two corpora holding the same tables score
  // identically no matter how their pools were grown (the incremental
  // path's pool retains removed tables' values; a cold rebuild's does
  // not).
  const StringPool& cpool = matcher.pool();
  const auto by_content = [&](const ValuePair& x, const ValuePair& y) {
    return std::make_pair(cpool.Get(x.left), cpool.Get(x.right)) <
           std::make_pair(cpool.Get(y.left), cpool.Get(y.right));
  };
  std::sort(rest_a.begin(), rest_a.end(), by_content);
  std::sort(rest_b.begin(), rest_b.end(), by_content);

  // Approximate residue matching (greedy, each b-pair used once).
  static thread_local std::vector<bool> used;
  used.assign(rest_b.size(), false);
  size_t approx = 0;
  for (const auto& qa : rest_a) {
    for (size_t k = 0; k < rest_b.size(); ++k) {
      if (used[k]) continue;
      const auto& qb = rest_b[k];
      if (matcher.Match(qa.left, qb.left) &&
          matcher.Match(qa.right, qb.right)) {
        used[k] = true;
        ++approx;
        break;
      }
    }
  }
  return exact + approx;
}

/// One left-run of a sorted pair list: pairs [begin, end) share `left`.
struct LeftRun {
  ValueId left;
  uint32_t begin;
  uint32_t end;
};

void CollectLeftRuns(const std::vector<ValuePair>& pairs,
                     std::vector<LeftRun>* runs) {
  runs->clear();
  uint32_t i = 0;
  const uint32_t n = static_cast<uint32_t>(pairs.size());
  while (i < n) {
    uint32_t e = i;
    const ValueId l = pairs[i].left;
    while (e < n && pairs[e].left == l) ++e;
    runs->push_back({l, i, e});
    i = e;
  }
}

/// Counts conflicting left values: a's left matches some b's left but their
/// right values differ (and are not synonyms / approximate matches). The
/// predicate per a-run is purely existential over b's runs, so b's run list
/// is built once and each a-left is scored against every b-left with cached
/// pattern masks instead of re-walking b's pair list per run.
size_t CountConflicts(const BinaryTable& a, const BinaryTable& b,
                      BatchApproxMatcher& matcher) {
  const auto& pa = a.pairs();
  const auto& pb = b.pairs();
  // Reusable scratch: one allocation per thread, not two per scored pair.
  static thread_local std::vector<LeftRun> runs_a, runs_b;
  CollectLeftRuns(pa, &runs_a);
  CollectLeftRuns(pb, &runs_b);

  size_t conflicts = 0;
  for (const auto& ra : runs_a) {
    bool any_left_match = false;
    bool any_right_conflict = false;
    for (const auto& rb : runs_b) {
      if (!matcher.Match(ra.left, rb.left)) continue;
      any_left_match = true;
      // Conflict if some right of a's run fails to match some right of
      // b's run (paper: ∃ r != r').
      for (uint32_t x = ra.begin; x < ra.end && !any_right_conflict; ++x) {
        for (uint32_t y = rb.begin; y < rb.end; ++y) {
          if (!matcher.Match(pa[x].right, pb[y].right)) {
            any_right_conflict = true;
            break;
          }
        }
      }
      if (any_right_conflict) break;
    }
    if (any_left_match && any_right_conflict) ++conflicts;
  }
  return conflicts;
}

PairScores FinishScores(PairScores s, const BinaryTable& a,
                        const BinaryTable& b) {
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double ov = static_cast<double>(s.overlap);
  const double cf = static_cast<double>(s.conflicts);
  s.w_pos = std::max(ov / na, ov / nb);
  s.w_neg = -std::max(cf / na, cf / nb);
  return s;
}

}  // namespace

PairScores ComputeCompatibility(const BinaryTable& a, const BinaryTable& b,
                                const StringPool& pool,
                                const CompatibilityOptions& opts) {
  BatchApproxMatcher matcher(pool, opts.edit, opts.approximate_matching,
                             opts.synonyms, opts.synonym_snapshot);
  return ComputeCompatibility(a, b, pool, opts, &matcher);
}

PairScores ComputeCompatibility(const BinaryTable& a, const BinaryTable& b,
                                const StringPool& pool,
                                const CompatibilityOptions& opts,
                                BatchApproxMatcher* matcher,
                                const BlockingHint* hint,
                                ScoringStats* stats) {
  // Ids resolve against the matcher's pool; a mismatched pool would yield
  // plausible but wrong scores with nothing else flagging it.
  assert(&matcher->pool() == &pool);
  (void)pool;
  PairScores s;
  if (hint) {
    s.shared_pairs = hint->shared_pairs;
    s.shared_lefts = hint->shared_lefts;
  }
  if (a.empty() || b.empty()) return s;

  const bool exact_only = !opts.approximate_matching && !opts.synonyms;
  const bool trust_hint = opts.reuse_blocking_counts && hint && hint->exact;

  // Overlap. Under exact-only matching, |B ∩ B'| is precisely blocking's
  // shared-pair co-occurrence count, so an exact hint replaces the merge.
  if (exact_only && trust_hint) {
    s.overlap = hint->shared_pairs;
    if (stats) ++stats->overlap_merges_skipped;
  } else {
    s.overlap = CountPairOverlap(a, b, *matcher, exact_only);
  }

  // Conflicts always need the left-run scan: blocking's left counts cannot
  // prove the conflict set empty for any pair that survived blocking (an
  // untruncated shared value pair implies a shared left, so every exact-
  // hinted survivor has shared_lefts >= 1).
  s.conflicts = CountConflicts(a, b, *matcher);
  return FinishScores(s, a, b);
}

// --------------------------------------------------------------- reference
// The seed implementation, verbatim modulo naming: per-call ValuesMatch
// (which itself honours the use_bit_parallel gate), no mask caching, no
// blocking-count reuse. tests/compatibility_test.cc and bench_pr2 hold the
// fast path to byte-identical agreement with this.

namespace {

size_t ReferenceCountPairOverlap(const BinaryTable& a, const BinaryTable& b,
                                 const StringPool& pool,
                                 const CompatibilityOptions& opts) {
  const auto& pa = a.pairs();
  const auto& pb = b.pairs();
  size_t exact = 0;
  std::vector<ValuePair> rest_a, rest_b;
  size_t i = 0, j = 0;
  while (i < pa.size() && j < pb.size()) {
    if (pa[i] < pb[j]) {
      rest_a.push_back(pa[i++]);
    } else if (pb[j] < pa[i]) {
      rest_b.push_back(pb[j++]);
    } else {
      ++exact;
      ++i;
      ++j;
    }
  }
  for (; i < pa.size(); ++i) rest_a.push_back(pa[i]);
  for (; j < pb.size(); ++j) rest_b.push_back(pb[j]);

  if (!opts.approximate_matching && !opts.synonyms) return exact;
  if (rest_a.empty() || rest_b.empty()) return exact;

  // Mirror the fast path: canonicalize residue order by value content so
  // the greedy matching is independent of pool interning history.
  const auto by_content = [&](const ValuePair& x, const ValuePair& y) {
    return std::make_pair(pool.Get(x.left), pool.Get(x.right)) <
           std::make_pair(pool.Get(y.left), pool.Get(y.right));
  };
  std::sort(rest_a.begin(), rest_a.end(), by_content);
  std::sort(rest_b.begin(), rest_b.end(), by_content);

  std::vector<bool> used(rest_b.size(), false);
  size_t approx = 0;
  for (const auto& qa : rest_a) {
    for (size_t k = 0; k < rest_b.size(); ++k) {
      if (used[k]) continue;
      const auto& qb = rest_b[k];
      if (ValuesMatch(qa.left, qb.left, pool, opts) &&
          ValuesMatch(qa.right, qb.right, pool, opts)) {
        used[k] = true;
        ++approx;
        break;
      }
    }
  }
  return exact + approx;
}

size_t ReferenceCountConflicts(const BinaryTable& a, const BinaryTable& b,
                               const StringPool& pool,
                               const CompatibilityOptions& opts) {
  const auto& pa = a.pairs();
  const auto& pb = b.pairs();
  size_t conflicts = 0;

  size_t i = 0;
  while (i < pa.size()) {
    size_t ie = i;
    const ValueId la = pa[i].left;
    while (ie < pa.size() && pa[ie].left == la) ++ie;

    bool any_left_match = false;
    bool any_right_conflict = false;
    size_t j = 0;
    while (j < pb.size()) {
      size_t je = j;
      const ValueId lb = pb[j].left;
      while (je < pb.size() && pb[je].left == lb) ++je;
      if (ValuesMatch(la, lb, pool, opts)) {
        any_left_match = true;
        for (size_t x = i; x < ie && !any_right_conflict; ++x) {
          for (size_t y = j; y < je; ++y) {
            if (!ValuesMatch(pa[x].right, pb[y].right, pool, opts)) {
              any_right_conflict = true;
              break;
            }
          }
        }
      }
      if (any_right_conflict) break;
      j = je;
    }
    if (any_left_match && any_right_conflict) ++conflicts;
    i = ie;
  }
  return conflicts;
}

}  // namespace

PairScores ComputeCompatibilityReference(const BinaryTable& a,
                                         const BinaryTable& b,
                                         const StringPool& pool,
                                         const CompatibilityOptions& opts) {
  PairScores s;
  if (a.empty() || b.empty()) return s;
  s.overlap = ReferenceCountPairOverlap(a, b, pool, opts);
  s.conflicts = ReferenceCountConflicts(a, b, pool, opts);
  return FinishScores(s, a, b);
}

}  // namespace ms
