#include "synth/compatibility.h"

#include <algorithm>
#include <vector>

namespace ms {

bool ValuesMatch(ValueId a, ValueId b, const StringPool& pool,
                 const CompatibilityOptions& opts) {
  if (a == b) return true;
  if (opts.synonyms && opts.synonyms->AreSynonyms(a, b)) return true;
  if (!opts.approximate_matching) return false;
  return ApproxMatch(pool.Get(a), pool.Get(b), opts.edit);
}

namespace {

/// Greedy one-to-one matching of a's pairs against b's pairs. Exact matches
/// are resolved with a sorted merge first; only the residue pays the
/// quadratic approximate pass (candidate tables are small).
size_t CountPairOverlap(const BinaryTable& a, const BinaryTable& b,
                        const StringPool& pool,
                        const CompatibilityOptions& opts) {
  const auto& pa = a.pairs();
  const auto& pb = b.pairs();
  size_t exact = 0;
  std::vector<ValuePair> rest_a, rest_b;
  size_t i = 0, j = 0;
  while (i < pa.size() && j < pb.size()) {
    if (pa[i] < pb[j]) {
      rest_a.push_back(pa[i++]);
    } else if (pb[j] < pa[i]) {
      rest_b.push_back(pb[j++]);
    } else {
      ++exact;
      ++i;
      ++j;
    }
  }
  for (; i < pa.size(); ++i) rest_a.push_back(pa[i]);
  for (; j < pb.size(); ++j) rest_b.push_back(pb[j]);

  if (!opts.approximate_matching && !opts.synonyms) return exact;
  if (rest_a.empty() || rest_b.empty()) return exact;

  // Approximate residue matching (greedy, each b-pair used once).
  std::vector<bool> used(rest_b.size(), false);
  size_t approx = 0;
  for (const auto& qa : rest_a) {
    for (size_t k = 0; k < rest_b.size(); ++k) {
      if (used[k]) continue;
      const auto& qb = rest_b[k];
      if (ValuesMatch(qa.left, qb.left, pool, opts) &&
          ValuesMatch(qa.right, qb.right, pool, opts)) {
        used[k] = true;
        ++approx;
        break;
      }
    }
  }
  return exact + approx;
}

/// Counts conflicting left values: a's left matches some b's left but their
/// right values differ (and are not synonyms / approximate matches).
size_t CountConflicts(const BinaryTable& a, const BinaryTable& b,
                      const StringPool& pool,
                      const CompatibilityOptions& opts) {
  const auto& pa = a.pairs();
  const auto& pb = b.pairs();
  size_t conflicts = 0;

  // Walk left-runs of a; for each, find matching left-runs of b.
  size_t i = 0;
  while (i < pa.size()) {
    size_t ie = i;
    const ValueId la = pa[i].left;
    while (ie < pa.size() && pa[ie].left == la) ++ie;

    bool any_left_match = false;
    bool any_right_conflict = false;
    size_t j = 0;
    while (j < pb.size()) {
      size_t je = j;
      const ValueId lb = pb[j].left;
      while (je < pb.size() && pb[je].left == lb) ++je;
      if (ValuesMatch(la, lb, pool, opts)) {
        any_left_match = true;
        // Conflict if some right of a's run fails to match some right of
        // b's run (paper: ∃ r != r').
        for (size_t x = i; x < ie && !any_right_conflict; ++x) {
          for (size_t y = j; y < je; ++y) {
            if (!ValuesMatch(pa[x].right, pb[y].right, pool, opts)) {
              any_right_conflict = true;
              break;
            }
          }
        }
      }
      if (any_right_conflict) break;
      j = je;
    }
    if (any_left_match && any_right_conflict) ++conflicts;
    i = ie;
  }
  return conflicts;
}

}  // namespace

PairScores ComputeCompatibility(const BinaryTable& a, const BinaryTable& b,
                                const StringPool& pool,
                                const CompatibilityOptions& opts) {
  PairScores s;
  if (a.empty() || b.empty()) return s;
  s.overlap = CountPairOverlap(a, b, pool, opts);
  s.conflicts = CountConflicts(a, b, pool, opts);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double ov = static_cast<double>(s.overlap);
  const double cf = static_cast<double>(s.conflicts);
  s.w_pos = std::max(ov / na, ov / nb);
  s.w_neg = -std::max(cf / na, cf / nb);
  return s;
}

}  // namespace ms
