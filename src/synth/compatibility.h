// Pair-wise table compatibility (Section 4.1):
//   w+(B, B') = max{ |B∩B'|/|B| , |B∩B'|/|B'| }     (Eq. 3, max-containment)
//   w-(B, B') = -max{ |F(B,B')|/|B| , |F(B,B')|/|B'| }  (Eq. 4)
// where F is the conflict set (same left, different right). Value matching
// is exact on normalized strings, then approximate via banded edit distance
// with a fractional threshold, then synonym-dictionary assisted.
#pragma once

#include "table/binary_table.h"
#include "table/string_pool.h"
#include "text/edit_distance.h"
#include "text/synonyms.h"

namespace ms {

struct CompatibilityOptions {
  /// Enables edit-distance matching of near-identical values (Example 8).
  bool approximate_matching = true;
  EditDistanceOptions edit;
  /// Optional synonym feed; synonymous rights never conflict.
  const SynonymDictionary* synonyms = nullptr;
};

/// Raw counts plus the two scores for one table pair.
struct PairScores {
  double w_pos = 0.0;   ///< in [0, 1]
  double w_neg = 0.0;   ///< in [-1, 0]
  size_t overlap = 0;   ///< |B ∩ B'| under the configured matching
  size_t conflicts = 0; ///< |F(B, B')|
};

/// True when two values match under the configured predicate.
bool ValuesMatch(ValueId a, ValueId b, const StringPool& pool,
                 const CompatibilityOptions& opts);

/// Computes both scores for a pair of candidate tables.
PairScores ComputeCompatibility(const BinaryTable& a, const BinaryTable& b,
                                const StringPool& pool,
                                const CompatibilityOptions& opts = {});

}  // namespace ms
