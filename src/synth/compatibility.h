// Pair-wise table compatibility (Section 4.1):
//   w+(B, B') = max{ |B∩B'|/|B| , |B∩B'|/|B'| }     (Eq. 3, max-containment)
//   w-(B, B') = -max{ |F(B,B')|/|B| , |F(B,B')|/|B'| }  (Eq. 4)
// where F is the conflict set (same left, different right). Value matching
// is exact on normalized strings, then approximate via bit-parallel Myers
// edit distance with a fractional threshold (scalar banded DP behind the
// EditDistanceOptions::use_bit_parallel gate), then synonym-dictionary
// assisted.
//
// The production entry point is the extended ComputeCompatibility overload:
// it scores through a caller-owned BatchApproxMatcher (pattern bitmasks
// cached across the whole candidate loop) and can reuse the shared_pairs /
// shared_lefts counts the blocking stage already computed instead of
// re-intersecting the sorted pair lists. ComputeCompatibilityReference
// keeps the seed scalar implementation as the equivalence oracle.
#pragma once

#include "common/status.h"
#include "table/binary_table.h"
#include "table/string_pool.h"
#include "text/edit_distance.h"
#include "text/myers.h"
#include "text/synonyms.h"

namespace ms {

struct CompatibilityOptions {
  /// Enables edit-distance matching of near-identical values (Example 8).
  bool approximate_matching = true;
  EditDistanceOptions edit;
  /// Optional synonym feed; synonymous rights never conflict.
  const SynonymDictionary* synonyms = nullptr;
  /// Optional immutable snapshot of `synonyms`. When set, every synonym
  /// check on the scoring hot path goes through the snapshot (two lock-free
  /// hash probes) instead of the dictionary's mutex + union-find walk.
  /// Results are identical as long as the snapshot reflects the current
  /// dictionary state; SynthesisSession maintains this automatically.
  const SynonymSnapshot* synonym_snapshot = nullptr;
  /// Reuse the blocking stage's co-occurrence counts (BlockingHint) to skip
  /// the exact pair-list merge / conflict scan where they are provably
  /// equivalent. Only fires for hints marked exact (the pair's counts were
  /// not affected by posting truncation).
  bool reuse_blocking_counts = true;

  /// InvalidArgument on malformed edit-distance thresholds, or when a
  /// snapshot is supplied without (or stale against) its dictionary.
  Status Validate() const;

  /// Pointer equality for the synonym feed — callers tracking dictionary
  /// *contents* must compare SynonymDictionary::version() themselves
  /// (MappingService::Resynthesize does).
  bool operator==(const CompatibilityOptions&) const = default;
};

/// Raw counts plus the two scores for one table pair.
struct PairScores {
  double w_pos = 0.0;   ///< in [0, 1]
  double w_neg = 0.0;   ///< in [-1, 0]
  size_t overlap = 0;   ///< |B ∩ B'| under the configured matching
  size_t conflicts = 0; ///< |F(B, B')|
  /// Blocking's co-occurrence counts for this pair, threaded through so
  /// downstream consumers see what blocking knew (0 when scored without a
  /// hint). `shared_pairs` counts exactly shared (left, right) pairs,
  /// `shared_lefts` exactly shared left values.
  uint32_t shared_pairs = 0;
  uint32_t shared_lefts = 0;
};

/// The blocking stage's per-pair knowledge, forwarded to scoring. `exact`
/// is true when no posting list was truncated in the blocking run, i.e. the
/// counts are the true co-occurrence cardinalities (modulo 64-bit key-hash
/// collisions, which blocking itself already relies on being absent).
struct BlockingHint {
  uint32_t shared_pairs = 0;
  uint32_t shared_lefts = 0;
  bool exact = false;
};

/// Scoring-stage observability: kernel mix from the batch matcher plus the
/// blocking-count reuse fast-path hits. Feeds PipelineStats.
struct ScoringStats {
  MatcherStats matcher;
  size_t overlap_merges_skipped = 0;  ///< overlap taken from BlockingHint

  void Add(const ScoringStats& o) {
    matcher.Add(o.matcher);
    overlap_merges_skipped += o.overlap_merges_skipped;
  }
};

/// True when two values match under the configured predicate.
bool ValuesMatch(ValueId a, ValueId b, const StringPool& pool,
                 const CompatibilityOptions& opts);

/// Computes both scores for a pair of candidate tables. Convenience form:
/// builds a one-call matcher internally.
PairScores ComputeCompatibility(const BinaryTable& a, const BinaryTable& b,
                                const StringPool& pool,
                                const CompatibilityOptions& opts = {});

/// Hot-path form: scores through a caller-owned matcher (whose cached
/// pattern masks survive across calls) and optionally reuses blocking's
/// counts. `matcher` must have been constructed from the same pool and the
/// same matching configuration as `opts`. Matcher kernel counters accumulate
/// inside `matcher`; only the fast-path skip counters are added to `stats`
/// here (callers merge matcher->stats() once at the end of their loop).
PairScores ComputeCompatibility(const BinaryTable& a, const BinaryTable& b,
                                const StringPool& pool,
                                const CompatibilityOptions& opts,
                                BatchApproxMatcher* matcher,
                                const BlockingHint* hint = nullptr,
                                ScoringStats* stats = nullptr);

/// The seed scalar implementation (per-call ValuesMatch, no mask caching,
/// no blocking reuse). Kept as the differential-test oracle and the
/// baseline for bench_pr2; identical results to the fast path by
/// construction.
PairScores ComputeCompatibilityReference(const BinaryTable& a,
                                         const BinaryTable& b,
                                         const StringPool& pool,
                                         const CompatibilityOptions& opts = {});

}  // namespace ms
