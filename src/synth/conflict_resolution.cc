#include "synth/conflict_resolution.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace ms {
namespace {

bool RightsConflict(ValueId r1, ValueId r2,
                    const ConflictResolutionOptions& options) {
  if (r1 == r2) return false;
  return !AreSynonymsVia(options.synonym_snapshot, options.synonyms, r1, r2);
}

/// Grouping of every (table, pair) instance by left value.
struct LeftGroup {
  // (table index, right value); one entry per kept table containing left.
  std::vector<std::pair<size_t, ValueId>> rights;
};

}  // namespace

ConflictResolutionResult ResolveConflicts(
    const std::vector<const BinaryTable*>& tables,
    const ConflictResolutionOptions& options) {
  ConflictResolutionResult result;
  const size_t n = tables.size();
  std::vector<bool> removed(n, false);

  for (;;) {
    ++result.iterations;
    // Rebuild left-value groups over the surviving tables (partitions are
    // small; the paper maintains incremental heaps, we favor clarity).
    std::unordered_map<ValueId, LeftGroup> groups;
    for (size_t t = 0; t < n; ++t) {
      if (removed[t]) continue;
      for (const auto& p : tables[t]->pairs()) {
        groups[p.left].rights.push_back({t, p.right});
      }
    }

    // cntV((l,r)) = number of value-pair instances conflicting with (l,r);
    // cntB(t) = max over t's pairs. (Algorithm 4 lines 3-7.)
    std::vector<size_t> cnt_b(n, 0);
    bool any_conflict = false;
    for (auto& [left, group] : groups) {
      auto& rs = group.rights;
      if (rs.size() < 2) continue;
      for (size_t i = 0; i < rs.size(); ++i) {
        size_t conflicts = 0;
        for (size_t j = 0; j < rs.size(); ++j) {
          if (i == j) continue;
          if (RightsConflict(rs[i].second, rs[j].second, options)) ++conflicts;
        }
        if (conflicts > 0) {
          any_conflict = true;
          cnt_b[rs[i].first] = std::max(cnt_b[rs[i].first], conflicts);
        }
      }
    }
    if (!any_conflict) break;

    // Remove the table with the most-conflicting value pair (line 8-9).
    size_t worst = 0;
    size_t worst_cnt = 0;
    for (size_t t = 0; t < n; ++t) {
      if (removed[t]) continue;
      if (cnt_b[t] > worst_cnt ||
          (cnt_b[t] == worst_cnt && worst_cnt > 0 &&
           tables[t]->size() < tables[worst]->size())) {
        worst = t;
        worst_cnt = cnt_b[t];
      }
    }
    removed[worst] = true;
    ++result.tables_removed;
  }

  for (size_t t = 0; t < n; ++t) {
    if (!removed[t]) result.kept.push_back(t);
  }
  return result;
}

bool IsConflictFree(const std::vector<const BinaryTable*>& tables,
                    const std::vector<size_t>& kept,
                    const ConflictResolutionOptions& options) {
  std::unordered_map<ValueId, std::vector<ValueId>> rights_by_left;
  for (size_t t : kept) {
    for (const auto& p : tables[t]->pairs()) {
      rights_by_left[p.left].push_back(p.right);
    }
  }
  for (const auto& [left, rights] : rights_by_left) {
    for (size_t i = 0; i < rights.size(); ++i) {
      for (size_t j = i + 1; j < rights.size(); ++j) {
        if (RightsConflict(rights[i], rights[j], options)) return false;
      }
    }
  }
  return true;
}

std::vector<ValuePair> MajorityVotePairs(
    const std::vector<const BinaryTable*>& tables,
    const ConflictResolutionOptions& options) {
  (void)options;
  // support[left][right] = number of tables containing (left, right).
  std::unordered_map<ValueId, std::map<ValueId, size_t>> support;
  for (const auto* t : tables) {
    for (const auto& p : t->pairs()) {
      support[p.left][p.right] += 1;
    }
  }
  std::vector<ValuePair> out;
  out.reserve(support.size());
  for (const auto& [left, rights] : support) {
    ValueId best = kInvalidValueId;
    size_t best_count = 0;
    for (const auto& [right, count] : rights) {
      if (count > best_count) {  // std::map order => smallest id wins ties
        best = right;
        best_count = count;
      }
    }
    out.push_back({left, best});
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ms
