// Step 3: conflict resolution inside a synthesized partition (Problem 17,
// Algorithm 4). A partition's tables may disagree on some left value (same
// left, different rights — extraction errors or dirty sources like the
// chemical-symbol example in Figure 4). Since Problem 17 (max value pairs,
// no conflicting table pair kept) is NP-hard, Algorithm 4 greedily removes
// the table containing the value pair that conflicts with the most other
// value pairs, until the partition is conflict-free.
//
// A majority-voting alternative is provided for the Section 5.6 comparison.
#pragma once

#include <cstddef>
#include <vector>

#include "synth/compatibility.h"
#include "table/binary_table.h"

namespace ms {

struct ConflictResolutionOptions {
  /// Rights that are synonyms are not conflicts (Section 4.2).
  const SynonymDictionary* synonyms = nullptr;
  /// Optional immutable snapshot of `synonyms` (see CompatibilityOptions);
  /// preferred over the dictionary when set — resolution runs in parallel
  /// across partitions and the snapshot needs no locking.
  const SynonymSnapshot* synonym_snapshot = nullptr;
};

/// Result of resolving one partition.
struct ConflictResolutionResult {
  /// Indices (into the input vector) of tables kept; conflict-free.
  std::vector<size_t> kept;
  size_t tables_removed = 0;
  size_t iterations = 0;
};

/// Algorithm 4 over the partition's tables.
ConflictResolutionResult ResolveConflicts(
    const std::vector<const BinaryTable*>& tables,
    const ConflictResolutionOptions& options = {});

/// True when no pair of tables in `tables` (restricted to `kept` indices)
/// has a non-empty conflict set — the invariant Algorithm 4 guarantees.
bool IsConflictFree(const std::vector<const BinaryTable*>& tables,
                    const std::vector<size_t>& kept,
                    const ConflictResolutionOptions& options = {});

/// Majority-voting alternative: per left value keep the right value backed
/// by the most tables (ties broken by smaller ValueId). Returns the cleaned
/// set of pairs directly rather than a table subset.
std::vector<ValuePair> MajorityVotePairs(
    const std::vector<const BinaryTable*>& tables,
    const ConflictResolutionOptions& options = {});

}  // namespace ms
