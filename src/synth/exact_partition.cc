#include "synth/exact_partition.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace ms {
namespace {

/// Dense weight matrices for O(1) pair lookups during enumeration.
struct Weights {
  size_t n;
  std::vector<double> pos;  // theta_edge-floored positive weights
  std::vector<double> neg;

  double& P(size_t i, size_t j) { return pos[i * n + j]; }
  double& N(size_t i, size_t j) { return neg[i * n + j]; }
};

class Enumerator {
 public:
  Enumerator(Weights w, double tau) : w_(std::move(w)), tau_(tau) {
    assignment_.assign(w_.n, 0);
    best_assignment_.assign(w_.n, 0);
  }

  void Run() {
    if (w_.n == 0) return;
    Recurse(0, 0, 0.0);
  }

  double best_objective() const { return best_; }
  const std::vector<uint32_t>& best_assignment() const {
    return best_assignment_;
  }
  size_t enumerated() const { return enumerated_; }

 private:
  /// Assigns vertex v given `blocks` blocks already in use. Canonical
  /// enumeration: vertex v may open block `blocks` or join any existing
  /// one, which visits every set partition exactly once.
  void Recurse(size_t v, uint32_t blocks, double objective) {
    if (v == w_.n) {
      ++enumerated_;
      if (objective > best_) {
        best_ = objective;
        best_assignment_ = assignment_;
      }
      return;
    }
    for (uint32_t b = 0; b <= blocks && b < w_.n; ++b) {
      // Gain and feasibility of putting v into block b.
      double gain = 0.0;
      bool feasible = true;
      for (size_t u = 0; u < v; ++u) {
        if (assignment_[u] != b) continue;
        if (w_.N(u, v) < tau_) {
          feasible = false;
          break;
        }
        gain += w_.P(u, v);
      }
      if (!feasible) continue;
      assignment_[v] = b;
      Recurse(v + 1, b == blocks ? blocks + 1 : blocks, objective + gain);
    }
  }

  Weights w_;
  double tau_;
  std::vector<uint32_t> assignment_;
  std::vector<uint32_t> best_assignment_;
  double best_ = -1.0;
  size_t enumerated_ = 0;
};

}  // namespace

ExactPartitionResult ExactPartition(const CompatibilityGraph& graph,
                                    const PartitionerOptions& options,
                                    size_t max_vertices) {
  const size_t n = graph.num_vertices();
  assert(n <= max_vertices && "ExactPartition is exponential; graph too big");
  (void)max_vertices;

  Weights w;
  w.n = n;
  w.pos.assign(n * n, 0.0);
  w.neg.assign(n * n, 0.0);
  for (const auto& e : graph.edges()) {
    const double pos = e.w_pos >= options.theta_edge ? e.w_pos : 0.0;
    const double neg = options.use_negative_signals ? e.w_neg : 0.0;
    // Parallel edges accumulate positives and keep the worst negative,
    // matching the greedy partitioner's aggregation semantics.
    w.P(e.u, e.v) += pos;
    w.P(e.v, e.u) = w.P(e.u, e.v);
    w.N(e.u, e.v) = std::min(w.N(e.u, e.v), neg);
    w.N(e.v, e.u) = w.N(e.u, e.v);
  }

  Enumerator enumerator(std::move(w), options.tau);
  enumerator.Run();

  ExactPartitionResult result;
  result.objective = n == 0 ? 0.0 : enumerator.best_objective();
  result.partitions_enumerated = enumerator.enumerated();
  result.partition.partition_of = enumerator.best_assignment();
  uint32_t max_block = 0;
  for (uint32_t b : result.partition.partition_of) {
    max_block = std::max(max_block, b);
  }
  result.partition.num_partitions =
      result.partition.partition_of.empty() ? 0 : max_block + 1;
  return result;
}

}  // namespace ms
