// Exact solver for the Table-Synthesis optimization (Problem 11) on small
// graphs. The problem is NP-hard in general (Theorem 13; reduction from
// multi-cut), and the paper's LP-relaxation route (Appendix D) is
// impractical at scale, so production uses the greedy Algorithm 3. This
// exhaustive solver exists to *validate* the greedy: tests and the ablation
// bench compare greedy objectives against the true optimum on graphs small
// enough to enumerate (the optimality gap observed is the empirical
// counterpart of the O(log N) approximation discussion).
#pragma once

#include "synth/partitioner.h"

namespace ms {

struct ExactPartitionResult {
  PartitionResult partition;
  double objective = 0.0;
  size_t partitions_enumerated = 0;
};

/// Enumerates all vertex partitions (with hard-constraint pruning) and
/// returns one maximizing Σ_P w+(P) subject to w−(P) = 0 (Equations 5-8).
/// Exponential (Bell-number) time: callers must keep
/// graph.num_vertices() <= max_vertices (default guards mistakes).
ExactPartitionResult ExactPartition(const CompatibilityGraph& graph,
                                    const PartitionerOptions& options = {},
                                    size_t max_vertices = 14);

}  // namespace ms
