#include "synth/expansion.h"

#include <algorithm>

namespace ms {

ExpansionStats ExpandMapping(SynthesizedMapping* mapping,
                             const std::vector<BinaryTable>& trusted_sources,
                             const StringPool& pool,
                             const ExpansionOptions& options) {
  ExpansionStats stats;
  // One matcher across all sources: the mapping side's pattern masks are
  // built once and reused for every trusted-source comparison.
  BatchApproxMatcher matcher(pool, options.compat.edit,
                             options.compat.approximate_matching,
                             options.compat.synonyms);
  for (const auto& src : trusted_sources) {
    ++stats.sources_considered;
    if (src.empty() || mapping->merged.empty()) continue;
    PairScores s = ComputeCompatibility(mapping->merged, src, pool,
                                        options.compat, &matcher);
    // Containment of the core within the trusted source: the source should
    // confirm a large fraction of what synthesis already established.
    const double core_containment =
        static_cast<double>(s.overlap) /
        static_cast<double>(mapping->merged.size());
    const double conflict_ratio =
        static_cast<double>(s.conflicts) /
        static_cast<double>(mapping->merged.size());
    if (core_containment < options.min_core_containment) continue;
    if (conflict_ratio > options.max_conflict_ratio) continue;

    const size_t before = mapping->merged.size();
    std::vector<ValuePair> all = mapping->merged.pairs();
    // Only add source pairs whose left value is not already mapped — the
    // core's assignments win on disagreement (it was conflict-resolved).
    auto lefts = mapping->merged.LeftValues();
    for (const auto& p : src.pairs()) {
      if (!std::binary_search(lefts.begin(), lefts.end(), p.left)) {
        all.push_back(p);
      }
    }
    mapping->merged = BinaryTable::FromPairs(std::move(all));
    stats.pairs_added += mapping->merged.size() - before;
    ++stats.sources_merged;
  }
  return stats;
}

}  // namespace ms
