// Optional table expansion (Appendix I): synthesized mappings form robust
// "cores" that can be extended with instances from trustworthy external
// sources (data.gov-style feeds / spreadsheet files) that web tables rarely
// enumerate fully (e.g. the long tail of airports). A trusted relation is
// merged into a core when it agrees strongly with the core and introduces
// few conflicts.
#pragma once

#include <vector>

#include "synth/compatibility.h"
#include "synth/mapping.h"

namespace ms {

struct ExpansionOptions {
  ExpansionOptions() {
    // Trusted feeds are clean and canonical; exact matching avoids the
    // edit-distance false positives that long structured names produce
    // ("tokyo haneda airport" vs "tokyo narita airport" is within the
    // fractional threshold but is a genuine conflict, not a variant).
    compat.approximate_matching = false;
  }
  /// Minimum containment of the core's pairs inside the trusted relation
  /// (how much of what we already know the source confirms).
  double min_core_containment = 0.5;
  /// Maximum tolerated conflict fraction (conflicts / core size).
  double max_conflict_ratio = 0.02;
  CompatibilityOptions compat;
};

struct ExpansionStats {
  size_t sources_considered = 0;
  size_t sources_merged = 0;
  size_t pairs_added = 0;
};

/// Expands `mapping` in place using any qualifying trusted relations.
ExpansionStats ExpandMapping(SynthesizedMapping* mapping,
                             const std::vector<BinaryTable>& trusted_sources,
                             const StringPool& pool,
                             const ExpansionOptions& options = {});

}  // namespace ms
