#include "synth/mapping.h"

#include <algorithm>
#include <unordered_set>

namespace ms {

SynthesizedMapping BuildMapping(const std::vector<const BinaryTable*>& tables,
                                const std::vector<size_t>& kept) {
  SynthesizedMapping m;
  std::vector<ValuePair> all;
  std::unordered_set<std::string> domains;
  std::unordered_map<std::string, size_t> left_names, right_names;

  for (const auto* t : tables) m.member_tables.push_back(t->id);
  for (size_t idx : kept) {
    const BinaryTable* t = tables[idx];
    m.kept_tables.push_back(t->id);
    all.insert(all.end(), t->pairs().begin(), t->pairs().end());
    if (!t->domain.empty()) domains.insert(t->domain);
    if (!t->left_name.empty()) left_names[t->left_name] += 1;
    if (!t->right_name.empty()) right_names[t->right_name] += 1;
  }
  m.merged = BinaryTable::FromPairs(std::move(all));
  m.num_domains = domains.size();

  auto most_frequent = [](const std::unordered_map<std::string, size_t>& mp) {
    std::string best;
    size_t best_count = 0;
    for (const auto& [name, count] : mp) {
      if (count > best_count || (count == best_count && name < best)) {
        best = name;
        best_count = count;
      }
    }
    return best;
  };
  m.left_label = most_frequent(left_names);
  m.right_label = most_frequent(right_names);
  return m;
}

bool PopularityGreater(const SynthesizedMapping& a,
                       const SynthesizedMapping& b) {
  if (a.num_domains != b.num_domains) {
    return a.num_domains > b.num_domains;
  }
  return a.size() > b.size();
}

std::vector<SynthesizedMapping> FilterByPopularity(
    std::vector<SynthesizedMapping> mappings, size_t min_domains,
    size_t min_pairs) {
  std::vector<SynthesizedMapping> out;
  out.reserve(mappings.size());
  for (auto& m : mappings) {
    if (m.num_domains >= min_domains && m.size() >= min_pairs) {
      out.push_back(std::move(m));
    }
  }
  // Rank by popularity: domains desc, then size desc.
  std::sort(out.begin(), out.end(), PopularityGreater);
  return out;
}

}  // namespace ms
