// Synthesized mapping relationships: the final output of the pipeline. One
// mapping is the union of the value pairs of the (conflict-resolved) tables
// in one partition, with provenance statistics used for curation ranking
// (Section 4.3: number of contributing web domains / raw tables correlates
// with mapping importance).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "table/binary_table.h"
#include "table/string_pool.h"

namespace ms {

/// One synthesized mapping relationship, ready for human curation.
struct SynthesizedMapping {
  /// Union of all kept tables' pairs (sorted, distinct).
  BinaryTable merged;
  /// Candidate-table ids in the original partition.
  std::vector<BinaryTableId> member_tables;
  /// Subset surviving conflict resolution.
  std::vector<BinaryTableId> kept_tables;
  /// Distinct web domains contributing to kept tables (curation signal).
  size_t num_domains = 0;
  /// Most frequent (left_name, right_name) headers among kept tables; a
  /// cheap human-readable label such as "country -> code".
  std::string left_label;
  std::string right_label;

  size_t size() const { return merged.size(); }

  /// Distinct left-hand entities (synonym-free count approximation).
  size_t NumLeftValues() const { return merged.LeftValues().size(); }
  size_t NumRightValues() const { return merged.RightValues().size(); }

  /// Synonym fan-in: average number of left mentions per right value; > 1
  /// indicates the synonym coverage of Table 6 (many names -> one code).
  double LeftPerRight() const {
    size_t r = NumRightValues();
    return r == 0 ? 0.0
                  : static_cast<double>(NumLeftValues()) /
                        static_cast<double>(r);
  }
};

/// Builds one mapping from a partition. `tables` are the partition members;
/// `kept` indexes into `tables` (conflict-resolution survivors).
SynthesizedMapping BuildMapping(const std::vector<const BinaryTable*>& tables,
                                const std::vector<size_t>& kept);

/// The curation ranking FilterByPopularity sorts by (domains desc, then
/// size desc). Exposed as the single definition of the output order:
/// incremental appends merge carried and freshly resolved mappings and
/// must re-rank with exactly this comparator to stay equivalent to a cold
/// rebuild.
bool PopularityGreater(const SynthesizedMapping& a,
                       const SynthesizedMapping& b);

/// Curation-oriented filtering: keep mappings contributed by at least
/// `min_domains` distinct domains and at least `min_pairs` value pairs
/// (Section 4.3 uses >= 8 independent web domains).
std::vector<SynthesizedMapping> FilterByPopularity(
    std::vector<SynthesizedMapping> mappings, size_t min_domains,
    size_t min_pairs);

}  // namespace ms
