#include "synth/mapping_io.h"

#include "persist/mapping_text.h"

namespace ms {

Status WriteMappingsTsv(const std::vector<SynthesizedMapping>& mappings,
                        const StringPool& pool, std::ostream& out) {
  return persist::WriteMappingsTsv(mappings, pool, out);
}

Status ReadMappingsTsv(std::istream& in, StringPool* pool,
                       std::vector<SynthesizedMapping>* mappings) {
  return persist::ReadMappingsTsv(in, pool, mappings);
}

Status SaveMappings(const std::vector<SynthesizedMapping>& mappings,
                    const StringPool& pool, const std::string& path) {
  return persist::SaveMappingsTsv(mappings, pool, path);
}

Status LoadMappings(const std::string& path, StringPool* pool,
                    std::vector<SynthesizedMapping>* mappings) {
  return persist::LoadMappingsTsv(path, pool, mappings);
}

}  // namespace ms
