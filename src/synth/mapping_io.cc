#include "synth/mapping_io.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"

namespace ms {

Status WriteMappingsTsv(const std::vector<SynthesizedMapping>& mappings,
                        const StringPool& pool, std::ostream& out) {
  for (const auto& m : mappings) {
    // Labels may contain spaces; they are the last two space-separated
    // fields' problem otherwise, so tab-separate the header fields.
    out << "#mapping\t" << (m.left_label.empty() ? "-" : m.left_label)
        << '\t' << (m.right_label.empty() ? "-" : m.right_label) << '\t'
        << m.num_domains << '\t' << m.kept_tables.size() << '\t'
        << m.member_tables.size() << '\n';
    for (const auto& p : m.merged.pairs()) {
      out << pool.Get(p.left) << '\t' << pool.Get(p.right) << '\n';
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("stream write failed");
  return Status::OK();
}

Status ReadMappingsTsv(std::istream& in, StringPool* pool,
                       std::vector<SynthesizedMapping>* mappings) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = Split(line, '\t');
    if (fields.size() != 6 || fields[0] != "#mapping") {
      return Status::InvalidArgument("expected '#mapping' header, got: " +
                                     line);
    }
    SynthesizedMapping m;
    m.left_label = fields[1] == "-" ? "" : fields[1];
    m.right_label = fields[2] == "-" ? "" : fields[2];
    m.num_domains = static_cast<size_t>(std::stoull(fields[3]));
    const size_t kept = static_cast<size_t>(std::stoull(fields[4]));
    const size_t members = static_cast<size_t>(std::stoull(fields[5]));
    // Table ids are provenance counts only once serialized.
    m.kept_tables.resize(kept);
    m.member_tables.resize(members);

    std::vector<ValuePair> pairs;
    while (std::getline(in, line) && !line.empty()) {
      auto cells = Split(line, '\t');
      if (cells.size() != 2) {
        return Status::InvalidArgument("expected 2 cells, got: " + line);
      }
      pairs.push_back({pool->Intern(cells[0]), pool->Intern(cells[1])});
    }
    m.merged = BinaryTable::FromPairs(std::move(pairs));
    mappings->push_back(std::move(m));
  }
  return Status::OK();
}

Status SaveMappings(const std::vector<SynthesizedMapping>& mappings,
                    const StringPool& pool, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  return WriteMappingsTsv(mappings, pool, out);
}

Status LoadMappings(const std::string& path, StringPool* pool,
                    std::vector<SynthesizedMapping>* mappings) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  return ReadMappingsTsv(in, pool, mappings);
}

}  // namespace ms
