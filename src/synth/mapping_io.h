// Compatibility wrapper over persist/mapping_text.h, kept so existing
// includes and call sites keep compiling. The persistence layer
// (src/persist/) now owns all mapping I/O:
//   - human-readable curation TSV     -> persist/mapping_text.h (this API)
//   - binary checksummed snapshots    -> persist/artifact_codec.h
//   - mmap-backed corpus store        -> persist/corpus_store.h
// New code should include the persist headers directly; see docs/api.md
// for the migration table.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "synth/mapping.h"
#include "table/string_pool.h"

namespace ms {

Status WriteMappingsTsv(const std::vector<SynthesizedMapping>& mappings,
                        const StringPool& pool, std::ostream& out);

/// Reads mappings written by WriteMappingsTsv, interning values into
/// `pool`. Pair provenance ids are restored; table contents are not (they
/// live in the corpus, not the mapping file).
Status ReadMappingsTsv(std::istream& in, StringPool* pool,
                       std::vector<SynthesizedMapping>* mappings);

Status SaveMappings(const std::vector<SynthesizedMapping>& mappings,
                    const StringPool& pool, const std::string& path);
Status LoadMappings(const std::string& path, StringPool* pool,
                    std::vector<SynthesizedMapping>* mappings);

}  // namespace ms
