// Persistence for synthesized mappings: the curation handoff artifact. A
// mapping file is what a human curator reviews and what the application
// layer (MappingStore) ships with — the paper's "materialized as tables ...
// easy to index" story. Line-oriented TSV:
//
//   #mapping <left_label> <right_label> <num_domains> <kept> <members>
//   left<TAB>right
//   ...
//   (blank line)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "synth/mapping.h"
#include "table/string_pool.h"

namespace ms {

Status WriteMappingsTsv(const std::vector<SynthesizedMapping>& mappings,
                        const StringPool& pool, std::ostream& out);

/// Reads mappings written by WriteMappingsTsv, interning values into
/// `pool`. Pair provenance ids are restored; table contents are not (they
/// live in the corpus, not the mapping file).
Status ReadMappingsTsv(std::istream& in, StringPool* pool,
                       std::vector<SynthesizedMapping>* mappings);

Status SaveMappings(const std::vector<SynthesizedMapping>& mappings,
                    const StringPool& pool, const std::string& path);
Status LoadMappings(const std::string& path, StringPool* pool,
                    std::vector<SynthesizedMapping>* mappings);

}  // namespace ms
