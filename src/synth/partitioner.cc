#include "synth/partitioner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "graph/union_find.h"

namespace ms {

Status PartitionerOptions::Validate() const {
  if (!std::isfinite(tau) || tau < -1.0 || tau > 0.0) {
    return Status::InvalidArgument(
        "partitioner.tau must be in [-1, 0] (w- range), got " +
        std::to_string(tau));
  }
  if (!std::isfinite(theta_edge) || theta_edge < 0.0 || theta_edge > 1.0) {
    return Status::InvalidArgument(
        "partitioner.theta_edge must be in [0, 1] (w+ range), got " +
        std::to_string(theta_edge));
  }
  return Status::OK();
}
namespace {

struct EdgeWeights {
  double w_pos = 0.0;
  double w_neg = 0.0;
};

struct HeapEntry {
  double w_pos;
  uint32_t a;  // partition roots at push time
  uint32_t b;

  bool operator<(const HeapEntry& other) const {
    // std::priority_queue is a max-heap on operator<.
    if (w_pos != other.w_pos) return w_pos < other.w_pos;
    // Tie-break deterministically.
    if (a != other.a) return a > other.a;
    return b > other.b;
  }
};

}  // namespace

std::vector<std::vector<VertexId>> PartitionResult::Groups() const {
  std::vector<std::vector<VertexId>> groups(num_partitions);
  for (VertexId v = 0; v < partition_of.size(); ++v) {
    groups[partition_of[v]].push_back(v);
  }
  return groups;
}

PartitionResult GreedyPartition(const CompatibilityGraph& graph,
                                const PartitionerOptions& options) {
  const size_t n = graph.num_vertices();
  UnionFind uf(n);

  // Partition-level adjacency: root -> (neighbor root -> weights).
  std::vector<std::unordered_map<uint32_t, EdgeWeights>> adj(n);
  std::priority_queue<HeapEntry> heap;

  auto effective_neg = [&](double w_neg) {
    return options.use_negative_signals ? w_neg : 0.0;
  };

  for (const auto& e : graph.edges()) {
    const double pos = e.w_pos >= options.theta_edge ? e.w_pos : 0.0;
    const double neg = effective_neg(e.w_neg);
    if (pos == 0.0 && neg == 0.0) continue;
    auto& wa = adj[e.u][e.v];
    wa.w_pos += pos;
    wa.w_neg = std::min(wa.w_neg, neg);
    auto& wb = adj[e.v][e.u];
    wb.w_pos += pos;
    wb.w_neg = std::min(wb.w_neg, neg);
  }
  for (uint32_t u = 0; u < n; ++u) {
    for (const auto& [v, w] : adj[u]) {
      if (u < v && w.w_pos > 0.0 && w.w_neg >= options.tau) {
        heap.push({w.w_pos, u, v});
      }
    }
  }

  size_t merges = 0;
  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    uint32_t ra = uf.Find(top.a);
    uint32_t rb = uf.Find(top.b);
    if (ra == rb) continue;  // already merged (stale entry)
    // Validate against current adjacency (entry may be stale).
    auto it = adj[ra].find(rb);
    if (it == adj[ra].end()) continue;
    const EdgeWeights cur = it->second;
    if (cur.w_pos != top.w_pos || top.a != ra || top.b != rb) {
      continue;  // superseded by a newer entry
    }
    if (cur.w_pos <= 0.0 || cur.w_neg < options.tau) continue;

    // Merge rb into ra (small-to-large on adjacency size); ra stays root so
    // all adjacency maps remain keyed by live roots.
    if (adj[ra].size() < adj[rb].size()) std::swap(ra, rb);
    uf.UnionInto(rb, ra);
    ++merges;

    adj[ra].erase(rb);
    adj[rb].erase(ra);
    for (const auto& [nb, w] : adj[rb]) {
      adj[nb].erase(rb);
      auto& merged = adj[ra][nb];
      merged.w_pos += w.w_pos;
      // Fresh entries default to w_neg = 0 and weights are <= 0, so a plain
      // min implements Algorithm 3's w-(Pi, P') = min{w-(Pi,P1), w-(Pi,P2)}.
      merged.w_neg = std::min(merged.w_neg, w.w_neg);
      auto& back = adj[nb][ra];
      back.w_pos = merged.w_pos;
      back.w_neg = merged.w_neg;
    }
    adj[rb].clear();

    for (const auto& [nb, w] : adj[ra]) {
      if (w.w_pos > 0.0 && w.w_neg >= options.tau) {
        heap.push({w.w_pos, std::min(ra, nb), std::max(ra, nb)});
      }
    }
  }

  PartitionResult result;
  result.partition_of.resize(n);
  std::unordered_map<uint32_t, uint32_t> dense;
  for (uint32_t v = 0; v < n; ++v) {
    uint32_t r = uf.Find(v);
    auto [it, inserted] = dense.emplace(r, static_cast<uint32_t>(dense.size()));
    result.partition_of[v] = it->second;
  }
  result.num_partitions = dense.size();
  result.merges_performed = merges;
  return result;
}

double PartitionObjective(const CompatibilityGraph& graph,
                          const PartitionResult& result,
                          const PartitionerOptions& options) {
  double total = 0.0;
  for (const auto& e : graph.edges()) {
    if (result.partition_of[e.u] != result.partition_of[e.v]) continue;
    if (e.w_pos >= options.theta_edge) total += e.w_pos;
  }
  return total;
}

bool SatisfiesNegativeConstraint(const CompatibilityGraph& graph,
                                 const PartitionResult& result, double tau) {
  for (const auto& e : graph.edges()) {
    if (result.partition_of[e.u] == result.partition_of[e.v] &&
        e.w_neg < tau) {
      return false;
    }
  }
  return true;
}

}  // namespace ms
