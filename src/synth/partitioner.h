// Greedy table-synthesis partitioner (Problem 11, Algorithm 3).
//
// Starts with every candidate table as its own partition, then repeatedly
// merges the pair of partitions with the largest aggregated positive weight
// whose aggregated negative weight does not violate the hard constraint
// (w- >= τ). Aggregation on merge follows Algorithm 3 exactly:
//   w+(Pi, P') = w+(Pi, P1) + w+(Pi, P2)
//   w-(Pi, P') = min{ w-(Pi, P1), w-(Pi, P2) }
// Terminates when no merge candidate remains, guaranteeing the invariant
// that no partition contains an edge with w- < τ.
#pragma once

#include <vector>

#include "common/status.h"
#include "graph/weighted_graph.h"

namespace ms {

struct PartitionerOptions {
  /// Hard-constraint threshold τ (Section 4.2; paper uses -0.2, peak -0.05).
  double tau = -0.2;
  /// Positive edges below θ_edge are treated as weight 0 (Section 5.4). The
  /// paper reports θ_edge = 0.85 on its 100M-table crawl; our synthetic
  /// corpus has less per-relation redundancy, so containment between random
  /// table fragments is lower and 0.5 is the sweet spot (see
  /// bench_sensitivity for the sweep).
  double theta_edge = 0.5;
  /// Ignore negative signals entirely (the SynthesisPos ablation).
  bool use_negative_signals = true;

  /// InvalidArgument when τ is outside [-1, 0] (w- lives in [-1, 0], so any
  /// other τ makes the hard constraint vacuous or unsatisfiable) or θ_edge
  /// is outside [0, 1] (w+ lives in [0, 1]).
  Status Validate() const;
};

/// Result: vertex -> partition id (dense from 0).
struct PartitionResult {
  std::vector<uint32_t> partition_of;
  size_t num_partitions = 0;
  size_t merges_performed = 0;

  std::vector<std::vector<VertexId>> Groups() const;
};

/// Runs Algorithm 3 on the full graph.
PartitionResult GreedyPartition(const CompatibilityGraph& graph,
                                const PartitionerOptions& options = {});

/// Objective value Σ_P w+(P): sum of intra-partition positive edge weights
/// (after θ_edge flooring). Used by optimization tests/benchmarks.
double PartitionObjective(const CompatibilityGraph& graph,
                          const PartitionResult& result,
                          const PartitionerOptions& options = {});

/// True iff no partition contains an edge with w- < τ (Eq. 6 constraint).
bool SatisfiesNegativeConstraint(const CompatibilityGraph& graph,
                                 const PartitionResult& result, double tau);

}  // namespace ms
