#include "synth/pipeline.h"

#include "common/logging.h"

namespace ms {
namespace {

/// Legacy contract: no error channel. Misconfigurations that the session
/// rejects surface as a logged error + empty result instead of undefined
/// behavior.
SynthesisResult UnwrapOrEmpty(Result<SynthesisResult> r, const char* what) {
  if (r.ok()) return std::move(r).value();
  MS_LOG(Error) << what << " failed: " << r.status().ToString();
  return SynthesisResult{};
}

}  // namespace

SynthesisPipeline::SynthesisPipeline(SynthesisOptions options)
    : session_(std::make_unique<SynthesisSession>(std::move(options))) {}

SynthesisResult SynthesisPipeline::Run(const TableCorpus& corpus) {
  return UnwrapOrEmpty(session_->Run(corpus), "SynthesisPipeline::Run");
}

SynthesisResult SynthesisPipeline::RunOnCandidates(
    const std::vector<BinaryTable>& candidates, const StringPool& pool) {
  return UnwrapOrEmpty(session_->RunOnCandidates(candidates, pool),
                       "SynthesisPipeline::RunOnCandidates");
}

}  // namespace ms
