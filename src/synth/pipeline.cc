#include "synth/pipeline.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/logging.h"
#include "common/timer.h"
#include "graph/connected_components.h"
#include "stats/inverted_index.h"

namespace ms {

CompatibilityGraph BuildCompatibilityGraph(
    const std::vector<BinaryTable>& candidates, const StringPool& pool,
    const BlockingOptions& blocking, const CompatibilityOptions& compat,
    ThreadPool* pool_threads, PipelineStats* stats) {
  Timer timer;
  BlockingStats bstats;
  auto pairs =
      GenerateCandidatePairs(candidates, blocking, pool_threads, &bstats);
  if (stats) {
    stats->blocking_seconds = timer.ElapsedSeconds();
    stats->candidate_pairs = pairs.size();
    stats->blocking_map_shuffle_seconds = bstats.map_shuffle_seconds;
    stats->blocking_count_seconds = bstats.count_seconds;
    stats->blocking_reduce_seconds = bstats.reduce_seconds;
    stats->blocking_keys = bstats.keys;
    stats->blocking_dropped_postings = bstats.dropped_postings;
  }

  timer.Restart();
  CompatibilityGraph graph(candidates.size());
  std::vector<PairScores> scores(pairs.size());

  // Pairs arrive sorted by (a, b), so consecutive pairs share table a and —
  // more importantly — value strings. Scoring in chunks with one
  // BatchApproxMatcher per chunk lets every pattern bitmask build amortize
  // across the whole chunk, and the blocking hints let exact-matching
  // configurations skip the pair-list merge entirely.
  constexpr size_t kScoringChunk = 256;
  const size_t num_chunks = (pairs.size() + kScoringChunk - 1) / kScoringChunk;
  std::vector<ScoringStats> chunk_stats(num_chunks);
  auto score_chunk = [&](size_t c) {
    const size_t begin = c * kScoringChunk;
    const size_t end = std::min(begin + kScoringChunk, pairs.size());
    BatchApproxMatcher matcher(pool, compat.edit, compat.approximate_matching,
                               compat.synonyms);
    ScoringStats& st = chunk_stats[c];
    for (size_t i = begin; i < end; ++i) {
      const BlockingHint hint{pairs[i].shared_pairs, pairs[i].shared_lefts,
                              bstats.exact_counts};
      scores[i] = ComputeCompatibility(candidates[pairs[i].a],
                                       candidates[pairs[i].b], pool, compat,
                                       &matcher, &hint, &st);
    }
    st.matcher.Add(matcher.stats());
  };
  if (pool_threads) {
    pool_threads->ParallelFor(num_chunks, score_chunk);
  } else {
    for (size_t c = 0; c < num_chunks; ++c) score_chunk(c);
  }
  if (stats) {
    for (const auto& st : chunk_stats) stats->scoring.Add(st);
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (scores[i].w_pos > 0.0 || scores[i].w_neg < 0.0) {
      graph.AddEdge(pairs[i].a, pairs[i].b, scores[i].w_pos, scores[i].w_neg);
    }
  }
  graph.Finalize();
  if (stats) {
    stats->scoring_seconds = timer.ElapsedSeconds();
    stats->graph_edges = graph.num_edges();
  }
  return graph;
}

SynthesisPipeline::SynthesisPipeline(SynthesisOptions options)
    : options_(std::move(options)) {
  size_t n = options_.num_threads;
  threads_ = std::make_unique<ThreadPool>(n);
}

SynthesisResult SynthesisPipeline::Run(const TableCorpus& corpus) {
  Timer total;
  Timer step;
  ColumnInvertedIndex index;
  index.Build(corpus, threads_.get());
  const double index_s = step.ElapsedSeconds();

  step.Restart();
  ExtractionResult extracted =
      ExtractCandidates(corpus, index, options_.extraction, threads_.get());
  const double extract_s = step.ElapsedSeconds();

  SynthesisResult result =
      RunOnCandidates(extracted.candidates, corpus.pool());
  result.stats.index_seconds = index_s;
  result.stats.extract_seconds = extract_s;
  result.stats.extraction = extracted.stats;
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

SynthesisResult SynthesisPipeline::RunOnCandidates(
    const std::vector<BinaryTable>& candidates, const StringPool& pool) {
  SynthesisResult result;
  result.stats.candidates = candidates.size();
  Timer total;

  CompatibilityGraph graph =
      BuildCompatibilityGraph(candidates, pool, options_.blocking,
                              options_.compat, threads_.get(), &result.stats);

  // --- Partitioning (Algorithm 3), optionally per positive component
  // (Appendix F divide-and-conquer).
  Timer step;
  PartitionResult partition;
  if (options_.divide_and_conquer) {
    auto comp = ConnectedComponentsBfs(graph, options_.partitioner.theta_edge);
    auto groups = GroupByComponent(comp);
    result.stats.components = groups.size();

    partition.partition_of.assign(graph.num_vertices(), 0);
    std::atomic<uint32_t> next_partition{0};
    std::mutex mu;

    auto run_component = [&](size_t gi) {
      const auto& members = groups[gi];
      if (members.size() == 1) {
        uint32_t pid = next_partition.fetch_add(1);
        partition.partition_of[members[0]] = pid;
        return;
      }
      // Build the local subgraph.
      std::vector<uint32_t> local_of(graph.num_vertices(), UINT32_MAX);
      for (uint32_t i = 0; i < members.size(); ++i) local_of[members[i]] = i;
      CompatibilityGraph sub(members.size());
      for (VertexId v : members) {
        for (uint32_t e : graph.IncidentEdges(v)) {
          const auto& edge = graph.edges()[e];
          if (edge.u != v) continue;  // visit each edge once (u < v)
          if (local_of[edge.v] == UINT32_MAX) continue;
          sub.AddEdge(local_of[edge.u], local_of[edge.v], edge.w_pos,
                      edge.w_neg);
        }
      }
      sub.Finalize();
      PartitionResult local = GreedyPartition(sub, options_.partitioner);
      uint32_t base = next_partition.fetch_add(
          static_cast<uint32_t>(local.num_partitions));
      for (uint32_t i = 0; i < members.size(); ++i) {
        partition.partition_of[members[i]] = base + local.partition_of[i];
      }
      std::lock_guard<std::mutex> lock(mu);
      partition.merges_performed += local.merges_performed;
    };
    threads_->ParallelFor(groups.size(), run_component);
    partition.num_partitions = next_partition.load();
  } else {
    partition = GreedyPartition(graph, options_.partitioner);
  }
  result.stats.partition_seconds = step.ElapsedSeconds();
  result.stats.partitions = partition.num_partitions;

  // --- Conflict resolution + mapping assembly.
  step.Restart();
  auto groups = partition.Groups();
  std::vector<SynthesizedMapping> mappings(groups.size());
  auto resolve_one = [&](size_t gi) {
    std::vector<const BinaryTable*> tables;
    tables.reserve(groups[gi].size());
    for (VertexId v : groups[gi]) tables.push_back(&candidates[v]);

    if (options_.use_majority_voting) {
      std::vector<size_t> all(tables.size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = i;
      SynthesizedMapping m = BuildMapping(tables, all);
      m.merged =
          BinaryTable::FromPairs(MajorityVotePairs(tables, options_.conflict));
      mappings[gi] = std::move(m);
    } else if (options_.resolve_conflicts) {
      auto resolved = ResolveConflicts(tables, options_.conflict);
      mappings[gi] = BuildMapping(tables, resolved.kept);
    } else {
      std::vector<size_t> all(tables.size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = i;
      mappings[gi] = BuildMapping(tables, all);
    }
  };
  threads_->ParallelFor(groups.size(), resolve_one);
  result.stats.resolve_seconds = step.ElapsedSeconds();

  result.mappings = FilterByPopularity(std::move(mappings),
                                       options_.min_domains,
                                       options_.min_pairs);
  result.stats.mappings = result.mappings.size();
  result.stats.total_seconds = total.ElapsedSeconds();
  MS_LOG(Info) << "synthesis: " << result.stats.candidates << " candidates, "
               << result.stats.graph_edges << " edges, "
               << result.stats.partitions << " partitions, "
               << result.stats.mappings << " mappings";
  return result;
}

}  // namespace ms
