// Legacy monolithic entry point to the synthesis pipeline (Figure 1). Since
// the staged-API redesign, SynthesisPipeline is a thin wrapper over a
// SynthesisSession (synth/session.h): Run() / RunOnCandidates() execute the
// identical staged chain in one call and return identical mappings.
//
// New code — anything that re-synthesizes with tweaked options, serves
// repeated queries, or needs error reporting — should hold a
// SynthesisSession directly: the session returns Status/Result instead of
// silently yielding empty results, and keeps warm state (thread pool,
// matcher caches, synonym snapshot) across runs. SynthesisOptions,
// PipelineStats, SynthesisResult, and BuildCompatibilityGraph now live in
// synth/session.h and are re-exported here for source compatibility.
#pragma once

#include "synth/session.h"

namespace ms {

class SynthesisPipeline {
 public:
  explicit SynthesisPipeline(SynthesisOptions options = {});

  /// Full run: extraction from a raw corpus, then synthesis. On failure
  /// (invalid options) logs and returns an empty result — use the session
  /// API for error propagation.
  SynthesisResult Run(const TableCorpus& corpus);

  /// Synthesis only, for pre-extracted candidates (ids must be dense 0..n-1).
  SynthesisResult RunOnCandidates(const std::vector<BinaryTable>& candidates,
                                  const StringPool& pool);

  const SynthesisOptions& options() const { return session_->options(); }

  /// The wrapped session, for callers migrating incrementally.
  SynthesisSession& session() { return *session_; }

 private:
  std::unique_ptr<SynthesisSession> session_;
};

}  // namespace ms
