// End-to-end synthesis pipeline (Figure 1): candidate extraction -> blocking
// -> pair scoring -> divide-and-conquer greedy partitioning -> conflict
// resolution -> curation filtering. This is the library's primary entry
// point; all Figure 7/8/9 benchmarks drive it.
#pragma once

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "extract/candidate_extraction.h"
#include "graph/weighted_graph.h"
#include "synth/blocking.h"
#include "synth/compatibility.h"
#include "synth/conflict_resolution.h"
#include "synth/mapping.h"
#include "synth/partitioner.h"
#include "table/corpus.h"

namespace ms {

struct SynthesisOptions {
  ExtractionOptions extraction;
  BlockingOptions blocking;
  CompatibilityOptions compat;
  PartitionerOptions partitioner;
  ConflictResolutionOptions conflict;

  /// Run Algorithm 4 after partitioning (Section 5.6 ablates this).
  bool resolve_conflicts = true;
  /// Use majority voting instead of Algorithm 4 (Section 5.6 comparison).
  bool use_majority_voting = false;
  /// Split the graph into positively-connected components first and
  /// partition each independently (Appendix F). Off = one global run.
  bool divide_and_conquer = true;

  /// Curation filter (Section 4.3: the paper keeps mappings from >= 8
  /// independent domains; defaults here suit laptop-scale corpora).
  size_t min_domains = 2;
  size_t min_pairs = 4;

  /// Worker threads (0 = hardware concurrency).
  size_t num_threads = 0;
};

/// Wall-clock and cardinality accounting for each pipeline step; feeds the
/// runtime/scalability figures.
struct PipelineStats {
  double index_seconds = 0.0;
  double extract_seconds = 0.0;
  double blocking_seconds = 0.0;
  double scoring_seconds = 0.0;
  double partition_seconds = 0.0;
  double resolve_seconds = 0.0;
  double total_seconds = 0.0;

  /// Blocking-internal phase breakdown (sums to ~blocking_seconds); makes
  /// the sharded-blocking speedup observable per phase.
  double blocking_map_shuffle_seconds = 0.0;  ///< map + hash partition
  double blocking_count_seconds = 0.0;        ///< sort-group + shard counting
  double blocking_reduce_seconds = 0.0;       ///< shard merge + threshold

  /// Scoring-stage breakdown: bit-parallel kernel mix (Myers64 vs blocked
  /// vs scalar fallback), pattern-mask cache effectiveness, and how many
  /// pair merges / conflict scans the blocking-count reuse eliminated.
  ScoringStats scoring;

  size_t candidates = 0;
  size_t candidate_pairs = 0;  ///< pairs surviving blocking
  size_t blocking_keys = 0;    ///< distinct blocking keys
  /// Postings dropped by BlockingOptions::max_posting truncation; non-zero
  /// means high-id candidates silently lost potential pairs.
  size_t blocking_dropped_postings = 0;
  size_t graph_edges = 0;      ///< pairs with non-zero w+ or w-
  size_t components = 0;
  size_t partitions = 0;
  size_t mappings = 0;         ///< after curation filter
  ExtractionStats extraction;  ///< includes normalize-cache hit/miss counts
};

struct SynthesisResult {
  std::vector<SynthesizedMapping> mappings;
  PipelineStats stats;
};

/// Builds the full compatibility graph for a candidate set: blocking, then
/// exact w+/w- scoring of every surviving pair (parallel). Exposed so the
/// SchemaCC / Correlation baselines run on the identical graph.
CompatibilityGraph BuildCompatibilityGraph(
    const std::vector<BinaryTable>& candidates, const StringPool& pool,
    const BlockingOptions& blocking, const CompatibilityOptions& compat,
    ThreadPool* pool_threads = nullptr, PipelineStats* stats = nullptr);

class SynthesisPipeline {
 public:
  explicit SynthesisPipeline(SynthesisOptions options = {});

  /// Full run: extraction from a raw corpus, then synthesis.
  SynthesisResult Run(const TableCorpus& corpus);

  /// Synthesis only, for pre-extracted candidates (ids must be dense 0..n-1).
  SynthesisResult RunOnCandidates(const std::vector<BinaryTable>& candidates,
                                  const StringPool& pool);

  const SynthesisOptions& options() const { return options_; }

 private:
  SynthesisOptions options_;
  std::unique_ptr<ThreadPool> threads_;
};

}  // namespace ms
