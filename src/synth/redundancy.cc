#include "synth/redundancy.h"

#include <algorithm>

#include "graph/union_find.h"

namespace ms {

RedundancyStats ConsolidateRedundantMappings(
    std::vector<SynthesizedMapping>* mappings, const StringPool& pool,
    const RedundancyOptions& options) {
  RedundancyStats stats;
  stats.clusters_in = mappings->size();
  const size_t n = mappings->size();
  if (n < 2) {
    stats.clusters_out = n;
    return stats;
  }

  // Pairwise consolidation decisions aggregated transitively via
  // union-find. Mapping counts are small post-curation-filter (hundreds),
  // so the quadratic scan with cheap size-based pre-screens is fine. One
  // matcher spans the whole scan: merged mappings share value strings
  // heavily, so pattern masks amortize across all n(n-1)/2 scorings.
  BatchApproxMatcher matcher(pool, options.compat.edit,
                             options.compat.approximate_matching,
                             options.compat.synonyms);
  UnionFind uf(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const BinaryTable& a = (*mappings)[i].merged;
      const BinaryTable& b = (*mappings)[j].merged;
      if (a.empty() || b.empty()) continue;
      PairScores s = ComputeCompatibility(a, b, pool, options.compat,
                                          &matcher);
      if (s.conflicts > options.max_conflicts) continue;
      if (s.w_pos < options.min_containment) continue;
      uf.Union(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
    }
  }

  if (uf.NumSets() == n) {
    stats.clusters_out = n;
    return stats;
  }

  // Rebuild: group members by root, keep input (popularity) order.
  std::vector<SynthesizedMapping> out;
  std::vector<bool> emitted(n, false);
  for (size_t i = 0; i < n; ++i) {
    uint32_t root = uf.Find(static_cast<uint32_t>(i));
    if (emitted[root]) continue;
    emitted[root] = true;
    // Collect the group.
    SynthesizedMapping merged = std::move((*mappings)[i]);
    std::vector<ValuePair> pairs = merged.merged.pairs();
    for (size_t j = i + 1; j < n; ++j) {
      if (uf.Find(static_cast<uint32_t>(j)) != root) continue;
      ++stats.merges;
      SynthesizedMapping& other = (*mappings)[j];
      pairs.insert(pairs.end(), other.merged.pairs().begin(),
                   other.merged.pairs().end());
      merged.member_tables.insert(merged.member_tables.end(),
                                  other.member_tables.begin(),
                                  other.member_tables.end());
      merged.kept_tables.insert(merged.kept_tables.end(),
                                other.kept_tables.begin(),
                                other.kept_tables.end());
      merged.num_domains += other.num_domains;  // upper bound; curator cue
    }
    merged.merged = BinaryTable::FromPairs(std::move(pairs));
    out.push_back(std::move(merged));
  }
  *mappings = std::move(out);
  stats.clusters_out = mappings->size();
  return stats;
}

}  // namespace ms
