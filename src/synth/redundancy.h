// Redundant-cluster consolidation — the paper's Appendix K observation:
// "in some cases [Synthesis] still produces many somewhat redundant
// clusters for the same relationship because inconsistency in value
// representations often lead to incompatible clusters that cannot be
// merged. Optimizing redundancy to further reduce human efforts is a useful
// area for future research." This module implements that post-processing
// step: synthesized mappings whose merged relations are mutually consistent
// (no conflicts) and strongly overlapping are consolidated, shrinking the
// curation queue without sacrificing the hard w− constraint (consolidation
// never joins conflicting clusters).
#pragma once

#include <vector>

#include "synth/compatibility.h"
#include "synth/mapping.h"

namespace ms {

struct RedundancyOptions {
  /// Minimum max-containment between two merged relations to consolidate.
  double min_containment = 0.5;
  /// Consolidation requires a conflict-free union: any conflict blocks it.
  size_t max_conflicts = 0;
  CompatibilityOptions compat;
};

struct RedundancyStats {
  size_t clusters_in = 0;
  size_t clusters_out = 0;
  size_t merges = 0;
};

/// Consolidates redundant mappings in place (popularity stats are summed,
/// provenance lists concatenated). Order of survivors preserves the input's
/// popularity ranking.
RedundancyStats ConsolidateRedundantMappings(
    std::vector<SynthesizedMapping>* mappings, const StringPool& pool,
    const RedundancyOptions& options = {});

}  // namespace ms
