#include "synth/session.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>

#include "common/hashing.h"
#include "common/logging.h"
#include "common/timer.h"
#include "graph/connected_components.h"
#include "persist/artifact_codec.h"
#include "persist/wire.h"
#include "stats/inverted_index.h"
#include "table/tsv.h"

namespace ms {

Status SynthesisOptions::Validate() const {
  MS_RETURN_IF_ERROR(extraction.Validate());
  MS_RETURN_IF_ERROR(blocking.Validate());
  MS_RETURN_IF_ERROR(compat.Validate());
  MS_RETURN_IF_ERROR(partitioner.Validate());
  if (min_pairs == 0) {
    return Status::InvalidArgument(
        "min_pairs must be >= 1: a zero-pair curation floor keeps empty "
        "mappings whose popularity ratios divide by zero");
  }
  if (min_domains == 0) {
    return Status::InvalidArgument(
        "min_domains must be >= 1: every mapping is contributed by at "
        "least one domain, so 0 expresses nothing and usually means an "
        "uninitialized config");
  }
  // A count beyond any real machine is an overflow/typo (e.g. a size_t
  // underflow producing 2^64 - 1), not a parallelism request; ThreadPool
  // would try to spawn that many workers and take the process down.
  constexpr size_t kMaxThreads = 4096;
  if (num_threads > kMaxThreads) {
    return Status::InvalidArgument(
        "num_threads = " + std::to_string(num_threads) +
        " exceeds the sanity cap of " + std::to_string(kMaxThreads) +
        " (0 means hardware concurrency)");
  }
  return Status::OK();
}

uint64_t OptionsFingerprint(const SynthesisOptions& o) {
  // Serialize every result-affecting knob through the persist wire encoding
  // (stable little-endian bytes) and FNV-hash the stream. Field order is
  // part of snapshot compatibility: changing it orphans old snapshots with
  // FailedPrecondition, which is exactly what a semantics change should do.
  persist::WireWriter w;
  w.F64(o.extraction.coherence_threshold);
  w.F64(o.extraction.fd_theta);
  w.U64(o.extraction.min_pairs);
  w.U64(o.extraction.max_columns);
  w.Bool(o.extraction.drop_numeric_left);
  w.U64(o.extraction.coherence.max_sampled_values);
  w.U64(o.extraction.coherence.sample_seed);
  w.U64(o.extraction.coherence.min_value_support);
  w.Bool(o.extraction.normalize.lowercase);
  w.Bool(o.extraction.normalize.strip_punctuation);
  w.Bool(o.extraction.normalize.collapse_whitespace);
  w.Bool(o.extraction.normalize.strip_footnote_marks);
  w.U64(o.blocking.theta_overlap);
  w.U64(o.blocking.max_posting);
  w.Bool(o.compat.approximate_matching);
  w.F64(o.compat.edit.fractional);
  w.U64(o.compat.edit.cap);
  // Synonym feeds can't be persisted (caller-owned), but artifact contents
  // depend on theirs: fingerprint presence + content version so a restart
  // with a drifted dictionary refuses the stale graph.
  w.Bool(o.compat.synonyms != nullptr);
  w.U64(o.compat.synonyms ? o.compat.synonyms->version() : 0);
  w.F64(o.partitioner.tau);
  w.F64(o.partitioner.theta_edge);
  w.Bool(o.partitioner.use_negative_signals);
  w.Bool(o.conflict.synonyms != nullptr);
  w.U64(o.conflict.synonyms ? o.conflict.synonyms->version() : 0);
  w.Bool(o.resolve_conflicts);
  w.Bool(o.use_majority_voting);
  w.Bool(o.divide_and_conquer);
  w.U64(o.min_domains);
  w.U64(o.min_pairs);
  return Fnv1a64(w.bytes());
}

namespace {

/// The shared scoring core: chunked scoring of `pairs` into a finalized
/// graph. `worker_matcher` (optional) supplies a persistent per-worker
/// matcher — the session's warm path; when absent, each chunk builds a
/// short-lived matcher exactly like the pre-session pipeline, so both paths
/// stay byte-identical by construction.
CompatibilityGraph ScorePairsCore(
    const std::vector<BinaryTable>& candidates, const StringPool& pool,
    const std::vector<CandidateTablePair>& pairs,
    const CompatibilityOptions& compat, ThreadPool* threads,
    const std::function<BatchApproxMatcher*()>& worker_matcher,
    ScoringStats* scoring_out) {
  CompatibilityGraph graph(candidates.size());
  std::vector<PairScores> scores(pairs.size());

  // Pairs arrive sorted by (a, b), so consecutive pairs share table a and —
  // more importantly — value strings. Scoring in chunks through a matcher
  // lets every pattern bitmask build amortize across the chunk (and, for
  // session-owned matchers, across the whole run and every later run),
  // and the per-pair blocking hints let exactly-counted pairs skip the
  // pair-list merge entirely.
  constexpr size_t kScoringChunk = 256;
  const size_t num_chunks = (pairs.size() + kScoringChunk - 1) / kScoringChunk;
  std::vector<ScoringStats> chunk_stats(num_chunks);
  auto score_chunk = [&](size_t c) {
    const size_t begin = c * kScoringChunk;
    const size_t end = std::min(begin + kScoringChunk, pairs.size());
    BatchApproxMatcher* matcher =
        worker_matcher ? worker_matcher() : nullptr;
    std::unique_ptr<BatchApproxMatcher> local;
    if (matcher == nullptr) {
      local = std::make_unique<BatchApproxMatcher>(
          pool, compat.edit, compat.approximate_matching, compat.synonyms,
          compat.synonym_snapshot);
      matcher = local.get();
    }
    ScoringStats& st = chunk_stats[c];
    for (size_t i = begin; i < end; ++i) {
      const BlockingHint hint{pairs[i].shared_pairs, pairs[i].shared_lefts,
                              pairs[i].counts_exact};
      scores[i] = ComputeCompatibility(candidates[pairs[i].a],
                                       candidates[pairs[i].b], pool, compat,
                                       matcher, &hint, &st);
    }
    // Short-lived matchers surrender their kernel counters here; persistent
    // ones accumulate and are drained once per run by the session.
    if (local) st.matcher.Add(local->stats());
  };
  if (threads) {
    threads->ParallelFor(num_chunks, score_chunk);
  } else {
    for (size_t c = 0; c < num_chunks; ++c) score_chunk(c);
  }
  if (scoring_out) {
    for (const auto& st : chunk_stats) scoring_out->Add(st);
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (scores[i].w_pos > 0.0 || scores[i].w_neg < 0.0) {
      graph.AddEdge(pairs[i].a, pairs[i].b, scores[i].w_pos, scores[i].w_neg);
    }
  }
  graph.Finalize();
  return graph;
}

void FillBlockingStats(const BlockingStats& bstats, size_t num_pairs,
                       double seconds, PipelineStats* stats) {
  stats->blocking_seconds = seconds;
  stats->candidate_pairs = num_pairs;
  stats->blocking_map_shuffle_seconds = bstats.map_shuffle_seconds;
  stats->blocking_count_seconds = bstats.count_seconds;
  stats->blocking_reduce_seconds = bstats.reduce_seconds;
  stats->blocking_keys = bstats.keys;
  stats->blocking_dropped_postings = bstats.dropped_postings;
  stats->blocking_tainted_candidates = bstats.tainted_candidates;
}

}  // namespace

CompatibilityGraph BuildCompatibilityGraph(
    const std::vector<BinaryTable>& candidates, const StringPool& pool,
    const BlockingOptions& blocking, const CompatibilityOptions& compat,
    ThreadPool* pool_threads, PipelineStats* stats) {
  Timer timer;
  BlockingStats bstats;
  auto pairs =
      GenerateCandidatePairs(candidates, blocking, pool_threads, &bstats);
  if (stats) {
    FillBlockingStats(bstats, pairs.size(), timer.ElapsedSeconds(), stats);
  }

  timer.Restart();
  ScoringStats scoring;
  CompatibilityGraph graph = ScorePairsCore(candidates, pool, pairs, compat,
                                            pool_threads, nullptr, &scoring);
  if (stats) {
    stats->scoring.Add(scoring);
    stats->scoring_seconds = timer.ElapsedSeconds();
    stats->graph_edges = graph.num_edges();
  }
  return graph;
}

// ------------------------------------------------------------------ session

/// Per-worker persistent matchers: slot i belongs to pool worker i, the
/// extra last slot to the submitting thread (serial runs). Cache contents
/// never affect scores, so reuse across runs changes speed only.
struct SynthesisSession::MatcherSlots {
  const StringPool* pool = nullptr;
  double fractional = 0.0;
  size_t cap = 0;
  std::vector<std::unique_ptr<BatchApproxMatcher>> slots;
};

SynthesisSession::SynthesisSession(SynthesisOptions options)
    : options_(std::move(options)) {
  init_status_ = options_.Validate();
  if (init_status_.ok()) {
    threads_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

SynthesisSession::~SynthesisSession() = default;

Status SynthesisSession::UpdateOptions(SynthesisOptions options) {
  MS_RETURN_IF_ERROR(options.Validate());
  const bool threads_changed =
      options.num_threads != options_.num_threads || threads_ == nullptr;
  if (options.compat.synonyms != options_.compat.synonyms) {
    snapshot_valid_ = false;
  }
  options_ = std::move(options);
  init_status_ = Status::OK();
  if (threads_changed) {
    matchers_.reset();  // slots are sized to the pool
    threads_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return Status::OK();
}

Status SynthesisSession::ReadyToRun() const {
  if (!init_status_.ok()) return init_status_;
  return Status::OK();
}

Status SynthesisSession::CheckSameSession(const char* stage,
                                          const void* session) const {
  if (session != this) {
    return Status::FailedPrecondition(
        std::string(stage) +
        ": artifact was produced by a different SynthesisSession");
  }
  return Status::OK();
}

Status SynthesisSession::CheckLineage(const char* stage, const void* session,
                                      uint64_t got_candidates_id,
                                      uint64_t want_candidates_id) const {
  MS_RETURN_IF_ERROR(CheckSameSession(stage, session));
  if (got_candidates_id != want_candidates_id) {
    return Status::FailedPrecondition(
        std::string(stage) +
        ": artifact lineage mismatch — the artifacts come from different "
        "candidate sets (ids " + std::to_string(got_candidates_id) + " vs " +
        std::to_string(want_candidates_id) + ")");
  }
  return Status::OK();
}

const SynonymSnapshot* SynthesisSession::RefreshSnapshot(
    const SynonymDictionary* dict) {
  const uint64_t v = dict->version();
  if (!snapshot_valid_ || synonym_snapshot_.source_version() != v) {
    synonym_snapshot_ = dict->Snapshot();
    snapshot_valid_ = true;
    ++session_stats_.snapshot_rebuilds;
  }
  return &synonym_snapshot_;
}

CompatibilityOptions SynthesisSession::EffectiveCompat() {
  CompatibilityOptions eff = options_.compat;
  if (eff.synonyms != nullptr && eff.synonym_snapshot == nullptr) {
    eff.synonym_snapshot = RefreshSnapshot(eff.synonyms);
  }
  return eff;
}

ConflictResolutionOptions SynthesisSession::EffectiveConflict() {
  ConflictResolutionOptions eff = options_.conflict;
  // Reuse the scoring snapshot when conflict resolution reads the same
  // dictionary (the common wiring); a different dictionary keeps the locked
  // path rather than risking a view of the wrong feed.
  if (eff.synonyms != nullptr && eff.synonym_snapshot == nullptr &&
      eff.synonyms == options_.compat.synonyms) {
    eff.synonym_snapshot = RefreshSnapshot(eff.synonyms);
  }
  return eff;
}

Result<CandidateSet> SynthesisSession::ExtractCandidates(
    const TableCorpus& corpus) {
  MS_RETURN_IF_ERROR(ReadyToRun());
  CandidateSet out;
  Timer step;
  ColumnInvertedIndex index;
  index.Build(corpus, threads_.get());
  out.stats.index_seconds = step.ElapsedSeconds();

  step.Restart();
  ExtractionResult extracted = ::ms::ExtractCandidates(
      corpus, index, options_.extraction, threads_.get());
  out.stats.extract_seconds = step.ElapsedSeconds();
  out.stats.extraction = extracted.stats;
  out.owned = std::move(extracted.candidates);
  out.stats.candidates = out.owned.size();
  out.pool = &corpus.pool();
  out.artifact_id = NextArtifactId();
  out.session = this;
  ++session_stats_.extract_runs;
  return out;
}

Result<CandidateSet> SynthesisSession::AdoptCandidates(
    const std::vector<BinaryTable>& candidates, const StringPool& pool) {
  MS_RETURN_IF_ERROR(ReadyToRun());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].id != static_cast<BinaryTableId>(i)) {
      return Status::InvalidArgument(
          "AdoptCandidates: candidate ids must be dense 0..n-1 (candidate " +
          std::to_string(i) + " has id " + std::to_string(candidates[i].id) +
          "); provenance and graph vertices index by id");
    }
  }
  CandidateSet out;
  out.borrowed = &candidates;
  out.pool = &pool;
  out.stats.candidates = candidates.size();
  out.artifact_id = NextArtifactId();
  out.session = this;
  ++session_stats_.adopt_runs;
  return out;
}

Result<BlockedPairs> SynthesisSession::BlockPairs(
    const CandidateSet& candidates) {
  MS_RETURN_IF_ERROR(ReadyToRun());
  MS_RETURN_IF_ERROR(CheckSameSession("BlockPairs", candidates.session));
  BlockedPairs out;
  Timer timer;
  out.pairs = GenerateCandidatePairs(candidates.tables(), options_.blocking,
                                     threads_.get(), &out.blocking);
  out.stats = candidates.stats;
  FillBlockingStats(out.blocking, out.pairs.size(), timer.ElapsedSeconds(),
                    &out.stats);
  out.artifact_id = NextArtifactId();
  out.candidates_id = candidates.artifact_id;
  out.session = this;
  ++session_stats_.blocking_runs;
  return out;
}

Result<ScoredGraph> SynthesisSession::ScorePairs(
    const CandidateSet& candidates, const BlockedPairs& blocked) {
  MS_RETURN_IF_ERROR(ReadyToRun());
  // Both artifacts must come from this session — artifact ids are only
  // unique within one session's counter, so the id comparison below is
  // meaningless across sessions.
  MS_RETURN_IF_ERROR(CheckSameSession("ScorePairs", candidates.session));
  MS_RETURN_IF_ERROR(CheckLineage("ScorePairs", blocked.session,
                                  blocked.candidates_id,
                                  candidates.artifact_id));
  const CompatibilityOptions eff = EffectiveCompat();

  // (Re)build or re-point the per-worker matchers. Everything cached in a
  // matcher depends only on the pool contents and edit.fractional, so a
  // re-score under tweaked thresholds starts with every mask it ever built.
  const size_t num_slots = threads_->num_threads() + 1;
  const bool warm = matchers_ != nullptr &&
                    matchers_->pool == candidates.pool &&
                    matchers_->slots.size() == num_slots &&
                    matchers_->fractional == eff.edit.fractional &&
                    matchers_->cap == options_.matcher_cache_cap;
  if (!warm) {
    matchers_ = std::make_unique<MatcherSlots>();
    matchers_->pool = candidates.pool;
    matchers_->fractional = eff.edit.fractional;
    matchers_->cap = options_.matcher_cache_cap;
    matchers_->slots.resize(num_slots);
    for (auto& slot : matchers_->slots) {
      slot = std::make_unique<BatchApproxMatcher>(
          *candidates.pool, eff.edit, eff.approximate_matching, eff.synonyms,
          eff.synonym_snapshot, options_.matcher_cache_cap);
    }
  } else {
    ++session_stats_.warm_scoring_runs;
    for (auto& slot : matchers_->slots) {
      slot->Reconfigure(eff.edit, eff.approximate_matching, eff.synonyms,
                        eff.synonym_snapshot);
    }
  }
  for (auto& slot : matchers_->slots) slot->ResetStats();

  auto worker_matcher = [this, num_slots]() -> BatchApproxMatcher* {
    size_t wi = ThreadPool::CurrentWorkerIndex();
    if (wi == ThreadPool::kNotAWorker || wi + 1 >= num_slots) {
      wi = num_slots - 1;
    }
    return matchers_->slots[wi].get();
  };

  ScoredGraph out;
  Timer timer;
  ScoringStats scoring;
  out.graph = ScorePairsCore(candidates.tables(), *candidates.pool,
                             blocked.pairs, eff, threads_.get(),
                             worker_matcher, &scoring);
  for (const auto& slot : matchers_->slots) {
    scoring.matcher.Add(slot->stats());
  }
  out.stats = blocked.stats;  // blocking never fills scoring, so this run's
  out.stats.scoring.Add(scoring);  // counters land on a clean slate
  out.stats.scoring_seconds = timer.ElapsedSeconds();
  out.stats.graph_edges = out.graph.num_edges();
  out.artifact_id = NextArtifactId();
  out.candidates_id = candidates.artifact_id;
  out.session = this;
  ++session_stats_.scoring_runs;
  return out;
}

Result<Partitions> SynthesisSession::Partition(const ScoredGraph& sg) {
  MS_RETURN_IF_ERROR(ReadyToRun());
  MS_RETURN_IF_ERROR(CheckSameSession("Partition", sg.session));
  const CompatibilityGraph& graph = sg.graph;
  Partitions out;
  out.stats = sg.stats;

  // Algorithm 3, optionally per positive component (Appendix F
  // divide-and-conquer).
  Timer step;
  PartitionResult partition;
  if (options_.divide_and_conquer) {
    auto comp = ConnectedComponentsBfs(graph, options_.partitioner.theta_edge);
    auto groups = GroupByComponent(comp);
    out.stats.components = groups.size();

    // One global vertex -> component-local-index table, filled in a single
    // O(V) pass: component member lists are disjoint, so per-component
    // O(V) scratch vectors (the previous shape) would cost O(V·C) total.
    // Cross-component edges (positive weight below θ_edge) are filtered by
    // comparing component ids, which local_of alone can no longer express.
    std::vector<uint32_t> local_of(graph.num_vertices(), 0);
    for (const auto& members : groups) {
      for (uint32_t i = 0; i < members.size(); ++i) local_of[members[i]] = i;
    }

    partition.partition_of.assign(graph.num_vertices(), 0);
    std::atomic<uint32_t> next_partition{0};
    std::mutex mu;

    auto run_component = [&](size_t gi) {
      const auto& members = groups[gi];
      if (members.size() == 1) {
        uint32_t pid = next_partition.fetch_add(1);
        partition.partition_of[members[0]] = pid;
        return;
      }
      // Build the local subgraph.
      CompatibilityGraph sub(members.size());
      for (VertexId v : members) {
        for (uint32_t e : graph.IncidentEdges(v)) {
          const auto& edge = graph.edges()[e];
          if (edge.u != v) continue;  // visit each edge once (u < v)
          if (comp[edge.v] != comp[v]) continue;
          sub.AddEdge(local_of[edge.u], local_of[edge.v], edge.w_pos,
                      edge.w_neg);
        }
      }
      sub.Finalize();
      PartitionResult local = GreedyPartition(sub, options_.partitioner);
      uint32_t base = next_partition.fetch_add(
          static_cast<uint32_t>(local.num_partitions));
      for (uint32_t i = 0; i < members.size(); ++i) {
        partition.partition_of[members[i]] = base + local.partition_of[i];
      }
      std::lock_guard<std::mutex> lock(mu);
      partition.merges_performed += local.merges_performed;
    };
    threads_->ParallelFor(groups.size(), run_component);
    partition.num_partitions = next_partition.load();
  } else {
    partition = GreedyPartition(graph, options_.partitioner);
  }
  out.stats.partition_seconds = step.ElapsedSeconds();
  out.stats.partitions = partition.num_partitions;
  out.partition = std::move(partition);
  out.artifact_id = NextArtifactId();
  out.candidates_id = sg.candidates_id;
  out.graph_id = sg.artifact_id;
  out.session = this;
  ++session_stats_.partition_runs;
  return out;
}

Result<SynthesisResult> SynthesisSession::Resolve(
    const CandidateSet& candidates, const ScoredGraph& graph,
    const Partitions& partitions) {
  MS_RETURN_IF_ERROR(ReadyToRun());
  MS_RETURN_IF_ERROR(CheckSameSession("Resolve", candidates.session));
  MS_RETURN_IF_ERROR(CheckLineage("Resolve", graph.session,
                                  graph.candidates_id,
                                  candidates.artifact_id));
  MS_RETURN_IF_ERROR(CheckLineage("Resolve", partitions.session,
                                  partitions.candidates_id,
                                  candidates.artifact_id));
  // The partitions must come from *this* graph, not just the same
  // candidate set: the same candidates scored under different options
  // yield different graphs, and mixing them would pair one graph's stats
  // with another's partitioning.
  if (partitions.graph_id != graph.artifact_id) {
    return Status::FailedPrecondition(
        "Resolve: partitions were computed from a different ScoredGraph "
        "(ids " + std::to_string(partitions.graph_id) + " vs " +
        std::to_string(graph.artifact_id) + ")");
  }
  const std::vector<BinaryTable>& cands = candidates.tables();
  const ConflictResolutionOptions conflict = EffectiveConflict();

  SynthesisResult result;
  result.stats = partitions.stats;

  // Conflict resolution + mapping assembly.
  Timer step;
  auto groups = partitions.partition.Groups();
  std::vector<SynthesizedMapping> mappings(groups.size());
  auto resolve_one = [&](size_t gi) {
    std::vector<const BinaryTable*> tables;
    tables.reserve(groups[gi].size());
    for (VertexId v : groups[gi]) tables.push_back(&cands[v]);

    if (options_.use_majority_voting) {
      std::vector<size_t> all(tables.size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = i;
      SynthesizedMapping m = BuildMapping(tables, all);
      m.merged = BinaryTable::FromPairs(MajorityVotePairs(tables, conflict));
      mappings[gi] = std::move(m);
    } else if (options_.resolve_conflicts) {
      auto resolved = ResolveConflicts(tables, conflict);
      mappings[gi] = BuildMapping(tables, resolved.kept);
    } else {
      std::vector<size_t> all(tables.size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = i;
      mappings[gi] = BuildMapping(tables, all);
    }
  };
  threads_->ParallelFor(groups.size(), resolve_one);
  result.stats.resolve_seconds = step.ElapsedSeconds();

  result.mappings = FilterByPopularity(std::move(mappings),
                                       options_.min_domains,
                                       options_.min_pairs);
  result.stats.mappings = result.mappings.size();
  result.stats.total_seconds =
      result.stats.index_seconds + result.stats.extract_seconds +
      result.stats.blocking_seconds + result.stats.scoring_seconds +
      result.stats.partition_seconds + result.stats.resolve_seconds;
  ++session_stats_.resolve_runs;
  MS_LOG(Info) << "synthesis: " << result.stats.candidates << " candidates, "
               << result.stats.graph_edges << " edges, "
               << result.stats.partitions << " partitions, "
               << result.stats.mappings << " mappings";
  return result;
}

// --------------------------------------------------------------- persistence

Status SynthesisSession::SaveSnapshot(const std::string& path,
                                      const CandidateSet& candidates,
                                      const BlockedPairs* blocked,
                                      const ScoredGraph* scored,
                                      const SynthesisResult* result) {
  MS_RETURN_IF_ERROR(ReadyToRun());
  MS_RETURN_IF_ERROR(CheckSameSession("SaveSnapshot", candidates.session));
  if (blocked != nullptr) {
    MS_RETURN_IF_ERROR(CheckLineage("SaveSnapshot", blocked->session,
                                    blocked->candidates_id,
                                    candidates.artifact_id));
  }
  if (scored != nullptr) {
    MS_RETURN_IF_ERROR(CheckLineage("SaveSnapshot", scored->session,
                                    scored->candidates_id,
                                    candidates.artifact_id));
  }
  MS_RETURN_IF_ERROR(persist::SaveSessionSnapshot(
      path, OptionsFingerprint(options_), candidates, blocked, scored,
      result));
  ++session_stats_.snapshot_saves;
  return Status::OK();
}

Result<SessionSnapshot> SynthesisSession::RestoreSnapshot(
    const std::string& path) {
  MS_RETURN_IF_ERROR(ReadyToRun());
  Result<SessionSnapshot> loaded =
      persist::LoadSessionSnapshot(path, OptionsFingerprint(options_));
  if (!loaded.ok()) return loaded.status();
  SessionSnapshot snap = std::move(loaded).value();

  // Stamp the artifacts as this session's. Saved lineage ids are kept
  // verbatim (they round-trip) unless they would collide with ids this
  // session already issued — then the whole restored family is rebased by a
  // constant offset, preserving every internal candidates/graph link.
  uint64_t min_id = snap.candidates->artifact_id;
  uint64_t max_id = snap.candidates->artifact_id;
  auto track = [&](uint64_t id) {
    min_id = std::min(min_id, id);
    max_id = std::max(max_id, id);
  };
  if (snap.blocked) track(snap.blocked->artifact_id);
  if (snap.scored) track(snap.scored->artifact_id);
  const uint64_t shift = min_id < next_artifact_id_
                             ? next_artifact_id_ - min_id
                             : 0;
  snap.candidates->session = this;
  snap.candidates->artifact_id += shift;
  if (snap.blocked) {
    snap.blocked->session = this;
    snap.blocked->artifact_id += shift;
    snap.blocked->candidates_id += shift;
  }
  if (snap.scored) {
    snap.scored->session = this;
    snap.scored->artifact_id += shift;
    snap.scored->candidates_id += shift;
  }
  next_artifact_id_ = std::max(next_artifact_id_, max_id + shift + 1);
  ++session_stats_.snapshot_restores;
  return snap;
}

// ---------------------------------------------------------------- composites

Result<SynthesisResult> SynthesisSession::Run(const TableCorpus& corpus) {
  Timer total;
  Result<CandidateSet> cands = ExtractCandidates(corpus);
  if (!cands.ok()) return cands.status();
  Result<SynthesisResult> r = FinishFromCandidates(cands.value());
  if (!r.ok()) return r.status();
  SynthesisResult out = std::move(r).value();
  out.stats.total_seconds = total.ElapsedSeconds();
  return out;
}

Result<SynthesisResult> SynthesisSession::RunOnCandidates(
    const std::vector<BinaryTable>& candidates, const StringPool& pool) {
  Timer total;
  Result<CandidateSet> cands = AdoptCandidates(candidates, pool);
  if (!cands.ok()) return cands.status();
  Result<SynthesisResult> r = FinishFromCandidates(cands.value());
  if (!r.ok()) return r.status();
  SynthesisResult out = std::move(r).value();
  out.stats.total_seconds = total.ElapsedSeconds();
  return out;
}

Result<SynthesisResult> SynthesisSession::RunOnCorpusFile(
    const std::string& path, TableCorpus* corpus) {
  if (corpus == nullptr) {
    return Status::InvalidArgument(
        "RunOnCorpusFile: corpus out-parameter is null (the caller owns the "
        "corpus because mappings reference its string pool)");
  }
  MS_RETURN_IF_ERROR(ReadyToRun());
  MS_RETURN_IF_ERROR(LoadCorpus(path, corpus));
  return Run(*corpus);
}

Result<SynthesisResult> SynthesisSession::FinishFromCandidates(
    const CandidateSet& candidates) {
  Result<BlockedPairs> blocked = BlockPairs(candidates);
  if (!blocked.ok()) return blocked.status();
  return FinishFromBlocked(candidates, blocked.value());
}

Result<SynthesisResult> SynthesisSession::FinishFromBlocked(
    const CandidateSet& candidates, const BlockedPairs& blocked) {
  Result<ScoredGraph> graph = ScorePairs(candidates, blocked);
  if (!graph.ok()) return graph.status();
  Result<Partitions> parts = Partition(graph.value());
  if (!parts.ok()) return parts.status();
  return Resolve(candidates, graph.value(), parts.value());
}

}  // namespace ms
